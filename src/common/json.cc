#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace gpumech
{

std::string
jsonEscape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          case '\r':
            r += "\\r";
            break;
          case '\b':
            r += "\\b";
            break;
          case '\f':
            r += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

void
JsonWriter::openObject()
{
    out << "{";
    needComma.push_back(false);
    kinds.push_back('o');
}

void
JsonWriter::comma()
{
    if (needComma.back())
        out << ",";
    needComma.back() = true;
}

void
JsonWriter::requireObject(const char *what) const
{
    if (kinds.back() != 'o')
        panic(msg("JsonWriter::", what,
                  " inside an array (use element writers)"));
}

void
JsonWriter::requireArray(const char *what) const
{
    if (kinds.back() != 'a')
        panic(msg("JsonWriter::", what, " outside an open array"));
}

std::string
JsonWriter::escape(const std::string &s)
{
    return jsonEscape(s);
}

void
JsonWriter::beginObject(const std::string &key)
{
    requireObject("beginObject");
    comma();
    out << "\"" << escape(key) << "\":";
    openObject();
}

void
JsonWriter::endObject()
{
    if (needComma.size() <= 1)
        panic("JsonWriter::endObject with no open nested object");
    if (kinds.back() != 'o')
        panic("JsonWriter::endObject would close an array");
    out << "}";
    needComma.pop_back();
    kinds.pop_back();
}

void
JsonWriter::beginArray(const std::string &key)
{
    requireObject("beginArray");
    comma();
    out << "\"" << escape(key) << "\":[";
    needComma.push_back(false);
    kinds.push_back('a');
}

void
JsonWriter::endArray()
{
    if (needComma.size() <= 1 || kinds.back() != 'a')
        panic("JsonWriter::endArray with no open array");
    out << "]";
    needComma.pop_back();
    kinds.pop_back();
}

void
JsonWriter::beginArrayObject()
{
    requireArray("beginArrayObject");
    comma();
    openObject();
}

void
JsonWriter::element(const std::string &value)
{
    requireArray("element");
    comma();
    out << "\"" << escape(value) << "\"";
}

void
JsonWriter::element(double value)
{
    requireArray("element");
    comma();
    if (!std::isfinite(value)) {
        out << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out << buf;
}

void
JsonWriter::element(std::uint64_t value)
{
    requireArray("element");
    comma();
    out << value;
}

void
JsonWriter::field(const std::string &key, const std::string &value)
{
    requireObject("field");
    comma();
    out << "\"" << escape(key) << "\":\"" << escape(value) << "\"";
}

void
JsonWriter::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
JsonWriter::field(const std::string &key, double value)
{
    requireObject("field");
    comma();
    if (!std::isfinite(value)) {
        out << "\"" << escape(key) << "\":null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out << "\"" << escape(key) << "\":" << buf;
}

void
JsonWriter::field(const std::string &key, std::uint64_t value)
{
    requireObject("field");
    comma();
    out << "\"" << escape(key) << "\":" << value;
}

void
JsonWriter::field(const std::string &key, bool value)
{
    requireObject("field");
    comma();
    out << "\"" << escape(key) << "\":" << (value ? "true" : "false");
}

std::string
JsonWriter::finish()
{
    if (finished)
        panic("JsonWriter::finish called twice");
    if (needComma.size() != 1)
        panic("JsonWriter::finish with open nested objects");
    finished = true;
    out << "}";
    return out.str();
}

} // namespace gpumech
