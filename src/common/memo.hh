/**
 * @file
 * Keyed memoization cache for expensive pipeline inputs.
 *
 * MemoCache maps a string key to an immutable, shared value computed
 * at most once per key. Concurrent lookups of the same key block on a
 * per-entry once-flag, so parallel sweep points that share inputs
 * (trace, collector result, profiler) never duplicate the computation.
 *
 * Values are deterministic functions of their key by contract, so a
 * cache hit is bit-identical to recomputing — the determinism
 * guarantee the parallel harness tests assert.
 */

#ifndef GPUMECH_COMMON_MEMO_HH
#define GPUMECH_COMMON_MEMO_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace gpumech
{

/** Thread-safe compute-once cache keyed by string. */
template <typename Value>
class MemoCache
{
  public:
    /**
     * Return the cached value for @p key, computing it via
     * @p compute() (returning Value by value) on first use. If
     * compute throws, nothing is cached and the exception propagates.
     */
    template <typename Fn>
    std::shared_ptr<const Value>
    getOrCompute(const std::string &key, Fn &&compute)
    {
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(mu);
            auto it = entries.find(key);
            if (it != entries.end()) {
                ++hitCount;
                entry = it->second;
            } else {
                ++missCount;
                entry = std::make_shared<Entry>();
                entries.emplace(key, entry);
            }
        }
        std::call_once(entry->once, [&] {
            entry->value =
                std::make_shared<const Value>(compute());
        });
        return entry->value;
    }

    /** Seed the cache with a precomputed value (no-op if present). */
    void
    put(const std::string &key, std::shared_ptr<const Value> value)
    {
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(mu);
            auto it = entries.find(key);
            if (it != entries.end()) {
                entry = it->second;
            } else {
                entry = std::make_shared<Entry>();
                entries.emplace(key, entry);
            }
        }
        std::call_once(entry->once,
                       [&] { entry->value = std::move(value); });
    }

    /** Lookups that found an existing entry. */
    std::size_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return hitCount;
    }

    /** Lookups that created a new entry. */
    std::size_t
    misses() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return missCount;
    }

    /** Number of cached entries. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return entries.size();
    }

    /** Drop every entry and reset the hit/miss counters. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu);
        entries.clear();
        hitCount = 0;
        missCount = 0;
    }

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const Value> value;
    };

    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries;
    std::size_t hitCount = 0;
    std::size_t missCount = 0;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_MEMO_HH
