/**
 * @file
 * Minimal JSON writer for machine-readable CLI output.
 *
 * Writes flat or nested objects of numbers/strings/booleans — enough
 * for result export without pulling in a JSON library. Not a parser.
 */

#ifndef GPUMECH_COMMON_JSON_HH
#define GPUMECH_COMMON_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace gpumech
{

/** Streaming writer for one JSON object tree. */
class JsonWriter
{
  public:
    JsonWriter() { openObject(); }

    /** Begin a nested object under @p key. */
    void beginObject(const std::string &key);

    /** Close the innermost nested object. */
    void endObject();

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, bool value);

    /** Close the root object and return the document. */
    std::string finish();

  private:
    void openObject();
    void comma();
    static std::string escape(const std::string &s);

    std::ostringstream out;
    std::vector<bool> needComma; //!< per nesting level
    bool finished = false;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_JSON_HH
