/**
 * @file
 * Minimal JSON writer for machine-readable CLI output.
 *
 * Writes flat or nested objects and arrays of
 * numbers/strings/booleans — enough for result export without pulling
 * in a JSON library. Not a parser.
 */

#ifndef GPUMECH_COMMON_JSON_HH
#define GPUMECH_COMMON_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace gpumech
{

/**
 * Escape a string for embedding in a JSON string literal. Handles the
 * short escapes (`"` `\` `\n` `\t` `\r` `\b` `\f`) and emits every
 * other control character below 0x20 as `\u00XX`, so arbitrary bytes
 * (e.g. parser context captured into Status messages) cannot produce
 * invalid JSON.
 */
std::string jsonEscape(const std::string &s);

/** Streaming writer for one JSON object tree. */
class JsonWriter
{
  public:
    JsonWriter() { openObject(); }

    /** Begin a nested object under @p key. */
    void beginObject(const std::string &key);

    /** Close the innermost nested object. */
    void endObject();

    /** Begin an array under @p key. */
    void beginArray(const std::string &key);

    /** Close the innermost array. */
    void endArray();

    /** Begin an object element inside the innermost (open) array. */
    void beginArrayObject();

    // Scalar array elements; same non-finite rule as field(double).
    void element(const std::string &value);
    void element(double value);
    void element(std::uint64_t value);

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);

    /**
     * Numeric field. Non-finite values (NaN, ±inf — e.g. degenerate
     * rho→1 contention paths) are emitted as `null`: bare `nan`/`inf`
     * tokens are not JSON and break every downstream consumer.
     */
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, bool value);

    /** Close the root object and return the document. */
    std::string finish();

  private:
    void openObject();
    void comma();
    void requireObject(const char *what) const;
    void requireArray(const char *what) const;
    static std::string escape(const std::string &s);

    std::ostringstream out;
    std::vector<bool> needComma; //!< per nesting level
    std::vector<char> kinds;     //!< per level: 'o' object, 'a' array
    bool finished = false;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_JSON_HH
