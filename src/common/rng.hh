/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the workload generators flows through
 * this owned xorshift64* generator so that kernel traces are
 * bit-identical across runs and platforms; tests can therefore assert
 * on exact model outputs.
 */

#ifndef GPUMECH_COMMON_RNG_HH
#define GPUMECH_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace gpumech
{

/** Deterministic xorshift64* PRNG with convenience distributions. */
class Rng
{
  public:
    /** Seed directly; a zero seed is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Seed from a string (e.g. a kernel name) via FNV-1a. */
    static Rng
    fromString(std::string_view name)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (char c : name) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
        return Rng(h);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_RNG_HH
