#include "common/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace gpumech
{

std::string
toString(SchedulingPolicy policy)
{
    switch (policy) {
      case SchedulingPolicy::RoundRobin:
        return "RR";
      case SchedulingPolicy::GreedyThenOldest:
        return "GTO";
    }
    return "?";
}

HardwareConfig
HardwareConfig::baseline()
{
    return HardwareConfig{};
}

namespace
{

bool
isPowerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

Status
invalidField(const char *field, const std::string &why)
{
    return Status(StatusCode::InvalidArgument,
                  msg("config field ", field, ": ", why));
}

/** Positive-count check naming the field. */
Status
requirePositive(const char *field, double value)
{
    if (value > 0.0)
        return Status();
    return invalidField(field, msg("must be > 0, got ", value));
}

/**
 * One cache level's geometry, mirroring Cache's constructor
 * preconditions (which panic): power-of-two line size, whole sets.
 * Set counts need not be a power of two (Table I's L2 has 768 sets).
 */
Status
validateCache(const char *level, std::uint32_t size_bytes,
              std::uint32_t line_bytes, std::uint32_t assoc)
{
    if (!isPowerOfTwo(line_bytes)) {
        return invalidField(
            level, msg("line size must be a power of two, got ",
                       line_bytes, " (field ", level, "LineBytes)"));
    }
    if (assoc == 0) {
        return invalidField(level,
                            msg("associativity must be > 0 (field ",
                                level, "Assoc)"));
    }
    if (size_bytes == 0 || size_bytes % (line_bytes * assoc) != 0) {
        return invalidField(
            level,
            msg("size must be a positive multiple of line*assoc, got ",
                size_bytes, " (field ", level, "SizeBytes)"));
    }
    return Status();
}

} // namespace

Status
HardwareConfig::validate() const
{
    GPUMECH_TRY(requirePositive("numCores", numCores));
    GPUMECH_TRY(requirePositive("coreFreqGhz", coreFreqGhz));
    GPUMECH_TRY(requirePositive("simtWidth", simtWidth));
    GPUMECH_TRY(requirePositive("warpSize", warpSize));
    GPUMECH_TRY(requirePositive("warpsPerCore", warpsPerCore));
    GPUMECH_TRY(requirePositive("issueWidth", issueWidth));
    GPUMECH_TRY(requirePositive("issueRate", issueRate));
    GPUMECH_TRY(requirePositive("sfuLanes", sfuLanes));
    GPUMECH_TRY(requirePositive("latency.intAlu", latency.intAlu));
    GPUMECH_TRY(requirePositive("latency.fpAlu", latency.fpAlu));
    GPUMECH_TRY(requirePositive("latency.sfu", latency.sfu));
    GPUMECH_TRY(requirePositive("latency.sharedMem", latency.sharedMem));
    GPUMECH_TRY(requirePositive("latency.branch", latency.branch));
    GPUMECH_TRY(requirePositive("l1HitLatency", l1HitLatency));
    GPUMECH_TRY(requirePositive("l2HitLatency", l2HitLatency));
    GPUMECH_TRY(requirePositive("numMshrs", numMshrs));
    GPUMECH_TRY(requirePositive("dramBandwidthGBs", dramBandwidthGBs));
    GPUMECH_TRY(validateCache("l1", l1SizeBytes, l1LineBytes, l1Assoc));
    GPUMECH_TRY(validateCache("l2", l2SizeBytes, l2LineBytes, l2Assoc));
    if (replacementPolicy > 3) {
        return invalidField(
            "replacementPolicy",
            msg("must be 0 (LRU), 1 (FIFO), 2 (random) or 3 (ARC), "
                "got ", replacementPolicy));
    }
    return Status();
}

HardwareConfig
HardwareConfig::withIssueWidth(std::uint32_t width) const
{
    HardwareConfig copy = *this;
    copy.issueWidth = width;
    copy.issueRate = static_cast<double>(width);
    return copy;
}

std::string
HardwareConfig::summary() const
{
    std::ostringstream os;
    os << numCores << " cores @ " << coreFreqGhz << " GHz, "
       << warpsPerCore << " warps/core, SIMT " << simtWidth
       << ", L1 " << l1SizeBytes / 1024 << "KB/" << numMshrs << " MSHRs, "
       << "L2 " << l2SizeBytes / 1024 << "KB, DRAM "
       << dramBandwidthGBs << " GB/s, " << dramAccessLatency
       << "-cycle access";
    return os.str();
}

std::string
HardwareConfig::traceKey() const
{
    std::ostringstream os;
    // The layout token invalidates cached traces (and refuses .gmt
    // files) whose SoA layout generation predates the engine's.
    os << traceLayoutToken << '|' << numCores << '|' << warpsPerCore
       << '|' << warpSize
       << '|' << simtWidth << '|' << l1LineBytes;
    return os.str();
}

std::string
HardwareConfig::collectorKey() const
{
    std::ostringstream os;
    os << traceKey() << '|' << l1SizeBytes << '|' << l1Assoc << '|'
       << l1HitLatency << '|' << l2SizeBytes << '|' << l2LineBytes
       << '|' << l2Assoc << '|' << l2HitLatency << '|'
       << dramAccessLatency << '|' << replacementPolicy << '|'
       << latency.intAlu << '|' << latency.fpAlu << '|' << latency.sfu
       << '|' << latency.sharedMem << '|' << latency.branch;
    return os.str();
}

} // namespace gpumech
