#include "common/config.hh"

#include <sstream>

namespace gpumech
{

std::string
toString(SchedulingPolicy policy)
{
    switch (policy) {
      case SchedulingPolicy::RoundRobin:
        return "RR";
      case SchedulingPolicy::GreedyThenOldest:
        return "GTO";
    }
    return "?";
}

HardwareConfig
HardwareConfig::baseline()
{
    return HardwareConfig{};
}

HardwareConfig
HardwareConfig::withIssueWidth(std::uint32_t width) const
{
    HardwareConfig copy = *this;
    copy.issueWidth = width;
    copy.issueRate = static_cast<double>(width);
    return copy;
}

std::string
HardwareConfig::summary() const
{
    std::ostringstream os;
    os << numCores << " cores @ " << coreFreqGhz << " GHz, "
       << warpsPerCore << " warps/core, SIMT " << simtWidth
       << ", L1 " << l1SizeBytes / 1024 << "KB/" << numMshrs << " MSHRs, "
       << "L2 " << l2SizeBytes / 1024 << "KB, DRAM "
       << dramBandwidthGBs << " GB/s, " << dramAccessLatency
       << "-cycle access";
    return os.str();
}

std::string
HardwareConfig::traceKey() const
{
    std::ostringstream os;
    // "soa1" names the flat SoA trace layout; bumping it invalidates
    // cached traces whose in-memory layout predates it.
    os << "soa1|" << numCores << '|' << warpsPerCore << '|' << warpSize
       << '|' << simtWidth << '|' << l1LineBytes;
    return os.str();
}

std::string
HardwareConfig::collectorKey() const
{
    std::ostringstream os;
    os << traceKey() << '|' << l1SizeBytes << '|' << l1Assoc << '|'
       << l1HitLatency << '|' << l2SizeBytes << '|' << l2LineBytes
       << '|' << l2Assoc << '|' << l2HitLatency << '|'
       << dramAccessLatency << '|' << replacementPolicy << '|'
       << latency.intAlu << '|' << latency.fpAlu << '|' << latency.sfu
       << '|' << latency.sharedMem << '|' << latency.branch;
    return os.str();
}

} // namespace gpumech
