#include "common/trace_span.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace gpumech
{

// Defined below at namespace scope (it is the friend the header names).
struct TraceShard;

namespace
{

/** Leaked for the same teardown-ordering reason as the metrics one. */
struct TraceRegistry
{
    std::mutex mu;
    std::vector<TraceShard *> shards;
    std::vector<TraceEvent> retired; //!< events of exited threads
    std::uint32_t nextTid = 0;
};

TraceRegistry &
traceRegistry()
{
    static TraceRegistry *r = new TraceRegistry;
    return *r;
}

} // namespace

/** Per-thread event buffer; only the owning thread appends. */
struct TraceShard
{
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;

    TraceShard()
    {
        TraceRegistry &reg = traceRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        tid = reg.nextTid++;
        reg.shards.push_back(this);
    }

    ~TraceShard()
    {
        TraceRegistry &reg = traceRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.retired.insert(reg.retired.end(),
                           std::make_move_iterator(events.begin()),
                           std::make_move_iterator(events.end()));
        reg.shards.erase(std::find(reg.shards.begin(),
                                   reg.shards.end(), this));
    }
};

namespace
{

TraceShard &
localTraceShard()
{
    thread_local TraceShard shard;
    return shard;
}

} // namespace

std::atomic<bool> TraceLog::enabledFlag{false};

void
TraceLog::enable(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

void
TraceLog::clear()
{
    TraceRegistry &reg = traceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.retired.clear();
    for (TraceShard *shard : reg.shards)
        shard->events.clear();
}

void
TraceLog::record(TraceEvent event)
{
    TraceShard &shard = localTraceShard();
    event.tid = shard.tid;
    shard.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceLog::collect()
{
    TraceRegistry &reg = traceRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<TraceEvent> all = reg.retired;
    for (const TraceShard *shard : reg.shards) {
        all.insert(all.end(), shard->events.begin(),
                   shard->events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.startNs < b.startNs;
              });
    return all;
}

void
TraceLog::writeChromeTrace(std::ostream &os)
{
    // Hand-rolled because JsonWriter models one object tree, not
    // arrays; every string goes through jsonEscape so arbitrary kernel
    // names stay valid JSON.
    os << "{\"traceEvents\":[";
    bool first = true;
    char buf[64];
    for (const TraceEvent &event : collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(event.name)
           << "\",\"cat\":\"stage\",\"ph\":\"X\"";
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(event.startNs) / 1e3);
        os << ",\"ts\":" << buf;
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(event.durNs) / 1e3);
        os << ",\"dur\":" << buf;
        os << ",\"pid\":0,\"tid\":" << event.tid;
        if (!event.detail.empty()) {
            os << ",\"args\":{\"detail\":\""
               << jsonEscape(event.detail) << "\"}";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

Span::Span(const char *stage, const std::string &detail) : stage(stage)
{
    tracing = TraceLog::enabled();
    timing = Metrics::enabled();
    if (!tracing && !timing)
        return;
    if (tracing)
        this->detail = detail;
    startNs = monotonicNowNs();
}

Span::~Span()
{
    if (!tracing && !timing)
        return;
    std::uint64_t dur = monotonicNowNs() - startNs;
    if (timing) {
        // Registration is memoized by name inside Metrics; spans are
        // stage-granular (a handful per kernel), so the lookup is
        // noise next to the stage itself.
        Metrics::observe(Metrics::histogram(msg("stage.", stage,
                                                ".ms")),
                         static_cast<double>(dur) / 1e6);
    }
    if (tracing) {
        TraceEvent event;
        event.name = stage;
        event.detail = std::move(detail);
        event.startNs = startNs;
        event.durNs = dur;
        TraceLog::record(std::move(event));
    }
}

} // namespace gpumech
