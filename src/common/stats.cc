#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gpumech
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_total = 0.0;
    for (double x : xs)
        log_total += std::log(x);
    return std::exp(log_total / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
    auto lo_idx = static_cast<std::size_t>(rank);
    std::size_t hi_idx = std::min(lo_idx + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo_idx);
    return xs[lo_idx] * (1.0 - frac) + xs[hi_idx] * frac;
}

double
relativeError(double predicted, double reference)
{
    if (reference == 0.0) {
        return predicted == 0.0 ? 0.0
                                : std::numeric_limits<double>::infinity();
    }
    return std::abs(predicted - reference) / std::abs(reference);
}

double
signedRelativeError(double predicted, double reference)
{
    if (reference == 0.0) {
        return predicted == 0.0 ? 0.0
                                : std::numeric_limits<double>::infinity();
    }
    return (predicted - reference) / std::abs(reference);
}

double
fractionBelow(const std::vector<double> &xs, double threshold)
{
    if (xs.empty())
        return 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x < threshold)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(xs.size());
}

void
Summary::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    total += x;
    ++n;
}

} // namespace gpumech
