/**
 * @file
 * Minimal JSON parser for the serving front end.
 *
 * JsonWriter (json.hh) covers the write side; this is the read side:
 * a strict recursive-descent parser producing an immutable JsonValue
 * tree. It exists so the `gpumech_serve` daemon can accept JSON-lines
 * requests without pulling in a JSON library, and it follows the
 * repo-wide error contract: malformed input returns a Status (with the
 * 0-based byte offset of the offending character in the message)
 * instead of dying, so one bad request line degrades to one error
 * response.
 *
 * Supported: objects, arrays, strings (with \uXXXX escapes, encoded
 * to UTF-8; surrogate pairs are combined), numbers (as double),
 * true/false/null. Strictness: no trailing garbage, no comments, no
 * trailing commas, nesting capped at jsonMaxDepth.
 */

#ifndef GPUMECH_COMMON_JSON_VALUE_HH
#define GPUMECH_COMMON_JSON_VALUE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace gpumech
{

/** Nesting cap: parse depth beyond this is a ParseError. */
inline constexpr std::size_t jsonMaxDepth = 64;

/** One parsed JSON value (object members keep document order). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Scalar accessors; panic on kind mismatch (check first). */
    bool boolean() const;
    double number() const;
    const std::string &string() const;

    /** Array elements; panic when not an array. */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order; panic when not an object. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * Member lookup; nullptr when absent or not an object. Duplicate
     * keys resolve to the first occurrence.
     */
    const JsonValue *find(const std::string &key) const;

    // --- typed convenience lookups for flat request objects ---

    /** String member, or @p fallback when absent/null. Non-string
     *  members return an InvalidArgument Status. */
    Result<std::string> getString(const std::string &key,
                                  const std::string &fallback = "") const;

    /** Numeric member as double, or @p fallback when absent/null. */
    Result<double> getNumber(const std::string &key,
                             double fallback) const;

    /** Boolean member, or @p fallback when absent/null. */
    Result<bool> getBool(const std::string &key, bool fallback) const;

    // --- construction (parser + tests) ---
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> arrayItems;
    std::vector<std::pair<std::string, JsonValue>> objectMembers;
};

/**
 * Parse one complete JSON document. The whole input must be consumed
 * (modulo surrounding whitespace); anything else is a ParseError whose
 * message carries the byte offset.
 */
Result<JsonValue> parseJson(const std::string &text);

} // namespace gpumech

#endif // GPUMECH_COMMON_JSON_VALUE_HH
