#include "common/status.hh"

#include "common/logging.hh"

namespace gpumech
{

std::string
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid_argument";
      case StatusCode::NotFound:
        return "not_found";
      case StatusCode::ParseError:
        return "parse_error";
      case StatusCode::TruncatedInput:
        return "truncated_input";
      case StatusCode::Overflow:
        return "overflow";
      case StatusCode::OutOfRange:
        return "out_of_range";
      case StatusCode::DuplicateHeader:
        return "duplicate_header";
      case StatusCode::FailedValidation:
        return "failed_validation";
      case StatusCode::VersionMismatch:
        return "version_mismatch";
      case StatusCode::ChecksumMismatch:
        return "checksum_mismatch";
      case StatusCode::DeadlineExceeded:
        return "deadline_exceeded";
      case StatusCode::FaultInjected:
        return "fault_injected";
      case StatusCode::ResourceExhausted:
        return "resource_exhausted";
      case StatusCode::Internal:
        return "internal";
    }
    return "?";
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(statusCode, msg(context, ": ", text));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return msg(gpumech::toString(statusCode), ": ", text);
}

void
Status::orDie() const
{
    if (!ok())
        fatal(toString());
}

} // namespace gpumech
