#include "common/args.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace gpumech
{

ArgParser::ArgParser(int argc, const char *const *argv)
{
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i)
        tokens.emplace_back(argv[i]);
    parse(tokens);
}

ArgParser::ArgParser(const std::vector<std::string> &tokens)
{
    parse(tokens);
}

void
ArgParser::parse(const std::vector<std::string> &tokens)
{
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (tok.rfind("--", 0) != 0) {
            positionals.push_back(tok);
            continue;
        }
        std::string body = tok.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // "--key value" when the next token is not an option;
        // otherwise a bare flag.
        if (i + 1 < tokens.size() &&
            tokens[i + 1].rfind("--", 0) != 0) {
            options[body] = tokens[i + 1];
            ++i;
        } else {
            options[body] = "";
        }
    }
}

std::string
ArgParser::positional(std::size_t i, const std::string &fallback) const
{
    return i < positionals.size() ? positionals[i] : fallback;
}

bool
ArgParser::has(const std::string &name) const
{
    return options.find(name) != options.end();
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback)
    const
{
    auto it = options.find(name);
    if (it == options.end() || it->second.empty())
        return fallback;
    return it->second;
}

std::uint32_t
ArgParser::getUint(const std::string &name, std::uint32_t fallback) const
{
    auto it = options.find(name);
    if (it == options.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        fatal(msg("--", name, " expects an integer, got '", it->second,
                  "'"));
    return static_cast<std::uint32_t>(v);
}

Result<std::uint32_t>
ArgParser::getPositiveUint(const std::string &name,
                           std::uint32_t fallback) const
{
    auto it = options.find(name);
    if (it == options.end() || it->second.empty())
        return fallback;
    const std::string &value = it->second;
    Status bad(StatusCode::InvalidArgument,
               msg("--", name, " expects a positive integer, got '",
                   value, "'"));
    if (value.find_first_not_of("0123456789") != std::string::npos)
        return bad;
    // All digits; overflow is the only remaining failure mode.
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        v > 0xffffffffull) {
        return Status(StatusCode::InvalidArgument,
                      msg("--", name, " value '", value,
                          "' exceeds the 32-bit range"));
    }
    if (v == 0)
        return bad;
    return static_cast<std::uint32_t>(v);
}

Result<double>
ArgParser::getDouble(const std::string &name, double fallback) const
{
    auto it = options.find(name);
    if (it == options.end() || it->second.empty())
        return fallback;
    const std::string &value = it->second;
    // strtod skips leading whitespace; a shell-quoted "--bw ' 8'" is
    // still a malformed value here, matching getPositiveUint.
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (std::isspace(static_cast<unsigned char>(value[0])) ||
        end == nullptr || *end != '\0' || end == value.c_str()) {
        return Status(StatusCode::InvalidArgument,
                      msg("--", name, " expects a number, got '",
                          value, "'"));
    }
    if (!std::isfinite(v)) {
        return Status(StatusCode::InvalidArgument,
                      msg("--", name, " must be finite, got '", value,
                          "'"));
    }
    return v;
}

} // namespace gpumech
