#include "common/mmap_file.hh"

#include <cstdio>
#include <utility>

#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define GPUMECH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GPUMECH_HAVE_MMAP 0
#endif

namespace gpumech
{

MmapFile::~MmapFile()
{
    release();
}

MmapFile::MmapFile(MmapFile &&other) noexcept
    : bytes(other.bytes), byteSize(other.byteSize),
      isMapped(other.isMapped), fallback(std::move(other.fallback))
{
    other.bytes = nullptr;
    other.byteSize = 0;
    other.isMapped = false;
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        release();
        bytes = other.bytes;
        byteSize = other.byteSize;
        isMapped = other.isMapped;
        fallback = std::move(other.fallback);
        other.bytes = nullptr;
        other.byteSize = 0;
        other.isMapped = false;
    }
    return *this;
}

void
MmapFile::release()
{
#if GPUMECH_HAVE_MMAP
    if (isMapped && bytes != nullptr)
        ::munmap(const_cast<std::uint8_t *>(bytes), byteSize);
#endif
    bytes = nullptr;
    byteSize = 0;
    isMapped = false;
    fallback.clear();
}

namespace
{

/** stdio fallback: read the whole file into @p buffer. */
Status
readWhole(const std::string &path, std::vector<std::uint8_t> &buffer)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) {
        return Status(StatusCode::NotFound,
                      msg("cannot open '", path, "' for reading"));
    }
    buffer.clear();
    std::uint8_t chunk[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), fp)) > 0)
        buffer.insert(buffer.end(), chunk, chunk + got);
    bool failed = std::ferror(fp) != 0;
    std::fclose(fp);
    if (failed) {
        return Status(StatusCode::Internal,
                      msg("read error on '", path, "'"));
    }
    return Status();
}

} // namespace

Result<MmapFile>
MmapFile::open(const std::string &path)
{
    MmapFile file;
#if GPUMECH_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Status(StatusCode::NotFound,
                      msg("cannot open '", path, "' for reading"));
    }
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
        st.st_size > 0) {
        void *addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr != MAP_FAILED) {
            ::close(fd);
            file.bytes = static_cast<const std::uint8_t *>(addr);
            file.byteSize = static_cast<std::size_t>(st.st_size);
            file.isMapped = true;
            return file;
        }
    }
    // Not a regular file, empty, or mmap refused: fall back below.
    ::close(fd);
#endif
    GPUMECH_TRY(readWhole(path, file.fallback));
    file.bytes = file.fallback.data();
    file.byteSize = file.fallback.size();
    file.isMapped = false;
    return file;
}

} // namespace gpumech
