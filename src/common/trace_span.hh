/**
 * @file
 * RAII stage tracing with Chrome trace-event export.
 *
 * A Span marks one pipeline stage of one kernel (parse / collect /
 * profile / cache / contention / oracle) on the executing thread.
 * Completed spans are buffered in thread-local shards and exported as
 * Chrome trace-event JSON ("X" complete events, microsecond
 * timestamps) — load the file in Perfetto (ui.perfetto.dev) or
 * chrome://tracing to see per-kernel, per-stage wall time across the
 * worker pool.
 *
 * Cost model mirrors common/metrics.hh: constructing a Span while
 * tracing and metrics are both disabled is one relaxed load + branch
 * (no clock read, no allocation). When metrics are enabled a span also
 * feeds the "stage.<name>.ms" histogram, so --metrics alone yields
 * stage attribution without paying for event buffering.
 *
 * Spans never touch model state: enabling or disabling tracing cannot
 * change any model output (bit-identical by construction).
 */

#ifndef GPUMECH_COMMON_TRACE_SPAN_HH
#define GPUMECH_COMMON_TRACE_SPAN_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gpumech
{

/** One completed span (Chrome trace "X" event). */
struct TraceEvent
{
    std::string name;     //!< stage name ("collect", ...)
    std::string detail;   //!< kernel name or other context; may be ""
    std::uint64_t startNs; //!< monotonicNowNs() at span open
    std::uint64_t durNs;   //!< span duration
    std::uint32_t tid;     //!< small sequential thread id
};

/** Process-wide trace-event collector (all members static). */
class TraceLog
{
  public:
    static bool enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Turn event buffering on/off (does not clear recorded events). */
    static void enable(bool on);

    /** Drop every buffered event. */
    static void clear();

    /**
     * Merged copy of every buffered event, sorted by (tid, start).
     * Like Metrics::snapshot(), call after parallel work returns.
     */
    static std::vector<TraceEvent> collect();

    /**
     * Write the buffered events as a Chrome trace-event JSON document:
     * {"traceEvents":[...],"displayTimeUnit":"ms"}. Timestamps are
     * microseconds from process start. Loadable in Perfetto.
     */
    static void writeChromeTrace(std::ostream &os);

  private:
    friend class Span;
    friend struct TraceShard;

    static void record(TraceEvent event);

    static std::atomic<bool> enabledFlag;
};

/**
 * RAII stage span. Records a TraceEvent when tracing is enabled and
 * observes the "stage.<name>.ms" histogram when metrics are enabled;
 * a no-op (one branch) when both are off.
 *
 * @p stage must be a string literal (stored by pointer until close);
 * @p detail is copied only when the span is live.
 */
class Span
{
  public:
    explicit Span(const char *stage, const std::string &detail = "");
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *stage;
    std::string detail;
    std::uint64_t startNs = 0;
    bool tracing = false;
    bool timing = false;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_TRACE_SPAN_HH
