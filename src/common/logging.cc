#include "common/logging.hh"

#include <cstdio>
#include <mutex>

namespace gpumech
{

namespace
{

/**
 * Serializes message emission. Each message is assembled into one
 * buffer and written with a single fwrite under this mutex, so lines
 * from parallel evaluateSuite workers can never interleave mid-line
 * (the old per-call fprintf gave no such guarantee once --jobs > 1).
 */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
inform(const std::string &msg)
{
    emitLine("info: ", msg);
}

void
warn(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
fatal(const std::string &msg)
{
    emitLine("fatal: ", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    emitLine("panic: ", msg);
    std::abort();
}

} // namespace gpumech
