/**
 * @file
 * Read-only memory-mapped file with a buffered-read fallback.
 *
 * The binary trace loader wants the whole file as one contiguous byte
 * range so section payloads can be copied column-at-a-time (or, for
 * text traces, scanned in place) without a read-loop into an
 * intermediate buffer. On POSIX systems the range is an mmap of the
 * page cache — opening costs two syscalls and no copy; elsewhere (or
 * when mmap fails, e.g. on a pipe or an empty file) the file is read
 * into an owned buffer and the interface is unchanged.
 *
 * Errors are returned as Status (NotFound for a missing path,
 * Internal for I/O failures), matching the trace-loading paths that
 * consume this wrapper.
 */

#ifndef GPUMECH_COMMON_MMAP_FILE_HH
#define GPUMECH_COMMON_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace gpumech
{

/** Move-only view of one whole file (mapped or buffered). */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile();

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;
    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /**
     * Open @p path read-only and map (or read) its full contents.
     * NotFound when the path does not exist or cannot be opened;
     * Internal for read failures after open.
     */
    static Result<MmapFile> open(const std::string &path);

    const std::uint8_t *data() const { return bytes; }
    std::size_t size() const { return byteSize; }

    /** True when backed by an actual mmap (false: owned buffer). */
    bool mapped() const { return isMapped; }

  private:
    void release();

    const std::uint8_t *bytes = nullptr;
    std::size_t byteSize = 0;
    bool isMapped = false;
    std::vector<std::uint8_t> fallback; //!< owns bytes when !isMapped
};

} // namespace gpumech

#endif // GPUMECH_COMMON_MMAP_FILE_HH
