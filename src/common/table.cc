#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "common/logging.hh"

namespace gpumech
{

Table::Table(std::vector<std::string> header)
    : head(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != head.size()) {
        panic(msg("table row width ", row.size(),
                  " != header width ", head.size()));
    }
    body.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit_row(head);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : body)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(head);
    for (const auto &row : body)
        emit_row(row);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
printBarChart(std::ostream &os, const std::string &title,
              const std::vector<std::string> &labels,
              const std::vector<double> &values, int width)
{
    if (labels.size() != values.size())
        panic("bar chart labels/values size mismatch");
    os << title << "\n";
    double max_v = 0.0;
    std::size_t max_label = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        max_v = std::max(max_v, values[i]);
        max_label = std::max(max_label, labels[i].size());
    }
    for (std::size_t i = 0; i < labels.size(); ++i) {
        int bar = max_v > 0.0
            ? static_cast<int>(std::lround(values[i] / max_v * width))
            : 0;
        os << "  " << std::left
           << std::setw(static_cast<int>(max_label)) << labels[i] << " |"
           << std::string(static_cast<std::size_t>(bar), '#') << " "
           << fmtDouble(values[i], 3) << "\n";
    }
}

void
printGroupedBarChart(std::ostream &os, const std::string &title,
                     const std::vector<std::string> &labels,
                     const std::vector<std::string> &series,
                     const std::vector<std::vector<double>> &values,
                     int width)
{
    if (labels.size() != values.size())
        panic("grouped bar chart labels/values size mismatch");
    os << title << "\n";
    double max_v = 0.0;
    std::size_t max_series = 0;
    for (const auto &group : values) {
        if (group.size() != series.size())
            panic("grouped bar chart series size mismatch");
        for (double v : group)
            max_v = std::max(max_v, v);
    }
    for (const auto &s : series)
        max_series = std::max(max_series, s.size());

    for (std::size_t g = 0; g < labels.size(); ++g) {
        os << "  " << labels[g] << "\n";
        for (std::size_t s = 0; s < series.size(); ++s) {
            int bar = max_v > 0.0
                ? static_cast<int>(
                      std::lround(values[g][s] / max_v * width))
                : 0;
            os << "    " << std::left
               << std::setw(static_cast<int>(max_series)) << series[s]
               << " |" << std::string(static_cast<std::size_t>(bar), '#')
               << " " << fmtDouble(values[g][s], 3) << "\n";
        }
    }
}

} // namespace gpumech
