/**
 * @file
 * Hardware configuration of the modeled GPU (paper Table I) plus the
 * sweep values used in the evaluation section.
 */

#ifndef GPUMECH_COMMON_CONFIG_HH
#define GPUMECH_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/status.hh"

namespace gpumech
{

/**
 * Generation token of the flat SoA trace layout. Appears in
 * HardwareConfig::traceKey() (so the InputCache never serves a trace
 * whose in-memory layout predates the current engine) and in the .gmt
 * binary trace header (so an on-disk trace packed under a different
 * layout generation is refused at load rather than misdecoded). Bump
 * when the SoA schema changes.
 */
inline constexpr char traceLayoutToken[] = "soa1";

/** Warp scheduling policies modeled by GPUMech (Section IV-A). */
enum class SchedulingPolicy
{
    RoundRobin,      //!< issue one instruction per warp in turn
    GreedyThenOldest //!< greedy on the current warp, then oldest ready
};

/** Human-readable policy name ("RR" / "GTO"). */
std::string toString(SchedulingPolicy policy);

/**
 * Static instruction latencies in core cycles, "modeled according to
 * the CUDA manual" (Table I: normal FP instructions are 25 cycles).
 */
struct LatencyTable
{
    std::uint32_t intAlu = 20;    //!< integer ALU operation
    std::uint32_t fpAlu = 25;     //!< normal floating-point operation
    std::uint32_t sfu = 40;       //!< special function unit (sin, rsqrt..)
    std::uint32_t sharedMem = 30; //!< 16KB software-managed cache access
    std::uint32_t branch = 20;    //!< branch / control instruction
};

/**
 * The modeled machine (paper Table I).
 *
 * All latencies are in core cycles at coreFreqGhz. The same structure
 * configures the detailed timing simulator (the oracle), the
 * functional cache simulation in the input collector, and the
 * analytical models, so a sweep point changes every component
 * coherently.
 */
struct HardwareConfig
{
    // --- organization ---
    std::uint32_t numCores = 16;      //!< number of SM cores
    double coreFreqGhz = 1.0;         //!< core clock
    std::uint32_t simtWidth = 32;     //!< SIMT lanes
    std::uint32_t warpSize = 32;      //!< threads per warp
    std::uint32_t warpsPerCore = 32;  //!< max threads 1024 / warp size 32
    std::uint32_t issueWidth = 1;     //!< warp-instructions per cycle
    double issueRate = 1.0;           //!< sustained issue rate (inst/cyc)

    // --- instruction latencies ---
    LatencyTable latency;

    /**
     * Special-function-unit lanes per core. The paper assumes a
     * balanced design where normal-operation resources never contend
     * (Section IV-B), which corresponds to sfuLanes == warpSize (one
     * cycle of SFU occupancy per warp instruction). Setting fewer
     * lanes makes an SFU warp-instruction occupy the unit for
     * warpSize / sfuLanes cycles — the structural contention the
     * paper's future-work note proposes to model.
     */
    std::uint32_t sfuLanes = 32;

    /** Cycles one SFU warp-instruction occupies the SFU. */
    std::uint32_t
    sfuOccupancyCycles() const
    {
        return (warpSize + sfuLanes - 1) / sfuLanes;
    }

    // --- L1 data cache (per core) ---
    std::uint32_t l1SizeBytes = 32 * 1024;
    std::uint32_t l1LineBytes = 128;
    std::uint32_t l1Assoc = 8;
    std::uint32_t l1HitLatency = 25;   //!< cycles, total from issue
    std::uint32_t numMshrs = 32;       //!< L1 MSHR entries per core

    /**
     * Cache replacement policy index, shared by L1 and L2:
     * 0 = LRU (default), 1 = FIFO, 2 = pseudo-random, 3 = ARC
     * (adaptive replacement). Kept as an integer here to avoid a
     * header cycle with mem/cache.hh; the hierarchy translates it.
     */
    std::uint32_t replacementPolicy = 0;

    // --- L2 cache (shared) ---
    std::uint32_t l2SizeBytes = 768 * 1024;
    std::uint32_t l2LineBytes = 128;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2HitLatency = 120;  //!< cycles, includes NoC

    // --- DRAM ---
    double dramBandwidthGBs = 192.0;   //!< aggregate bandwidth
    std::uint32_t dramAccessLatency = 300; //!< cycles beyond an L2 hit

    /** Latency of an access that misses L2 (120 + 300 = 420 cycles). */
    std::uint32_t
    l2MissLatency() const
    {
        return l2HitLatency + dramAccessLatency;
    }

    /**
     * DRAM service time per cache line in core cycles:
     * freq * lineSize / bandwidth (Eq. 22's "s").
     */
    double
    dramServiceCycles() const
    {
        return coreFreqGhz * 1e9 * l2LineBytes / (dramBandwidthGBs * 1e9);
    }

    /** Table I baseline configuration. */
    static HardwareConfig baseline();

    /**
     * Range-check every field against the domains the models and the
     * timing simulator assume (positive organization counts,
     * power-of-two cache geometry, nonzero DRAM bandwidth, MSHR count
     * > 0, ...). Returns StatusCode::InvalidArgument naming the
     * offending field; the harness validates each kernel's
     * configuration before evaluation so a bad sweep point fails that
     * point instead of aborting the run.
     */
    Status validate() const;

    /**
     * Copy of this configuration with a different issue width; keeps
     * issueWidth (used by the timing simulator) and issueRate (used
     * by the analytical models) coherent.
     */
    HardwareConfig withIssueWidth(std::uint32_t width) const;

    /** One-line summary for bench headers. */
    std::string summary() const;

    /**
     * Memoization key over the fields trace generation reads
     * (organization and line size). Two configurations with equal
     * traceKey() produce bit-identical KernelTraces for the same
     * workload, so sweeps over model-only parameters (MSHRs, DRAM
     * bandwidth, issue rate, SFU lanes) can reuse a generated trace.
     * tests/test_parallel.cc pins this contract.
     */
    std::string traceKey() const;

    /**
     * Memoization key over the fields the input collector reads on
     * top of traceKey(): cache geometry, replacement policy, and the
     * latency constants behind AMAT and fixed instruction latencies.
     * Equal collectorKey() means collectInputs() returns bit-identical
     * results; numMshrs and dramBandwidthGBs are deliberately excluded
     * (they only enter the contention models at evaluation time).
     */
    std::string collectorKey() const;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_CONFIG_HH
