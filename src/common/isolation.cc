#include "common/isolation.hh"

#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gpumech
{

std::string
toString(FaultSite site)
{
    switch (site) {
      case FaultSite::Parse:
        return "parse";
      case FaultSite::Collect:
        return "collect";
      case FaultSite::Profile:
        return "profile";
      case FaultSite::Cache:
        return "cache";
    }
    return "?";
}

Result<FaultSite>
faultSiteFromString(const std::string &name)
{
    for (FaultSite site : {FaultSite::Parse, FaultSite::Collect,
                           FaultSite::Profile, FaultSite::Cache}) {
        if (toString(site) == name)
            return site;
    }
    return Status(StatusCode::NotFound,
                  msg("unknown fault site '", name,
                      "' (use parse, collect, profile or cache)"));
}

CancelToken
CancelToken::withTimeoutMs(std::uint64_t ms)
{
    CancelToken token;
    if (ms > 0) {
        token.deadline = std::make_shared<
            const std::chrono::steady_clock::time_point>(
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(ms));
    }
    return token;
}

double
CancelToken::remainingMs() const
{
    if (!deadline)
        return 0.0;
    return std::chrono::duration<double, std::milli>(
               *deadline - std::chrono::steady_clock::now())
        .count();
}

FaultPlan::FaultPlan(FaultPlan &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mu);
    planned = std::move(other.planned);
    hits = std::move(other.hits);
}

void
FaultPlan::add(FaultInjection injection)
{
    std::lock_guard<std::mutex> lock(mu);
    planned.push_back(std::move(injection));
    hits.push_back(0);
}

FaultPlan
FaultPlan::randomized(std::uint64_t seed,
                      const std::vector<std::string> &kernels)
{
    static const FaultSite sites[] = {FaultSite::Parse,
                                      FaultSite::Collect,
                                      FaultSite::Profile,
                                      FaultSite::Cache};
    FaultPlan plan;
    Rng rng(seed);
    for (const std::string &kernel : kernels) {
        FaultInjection injection;
        injection.kernel = kernel;
        injection.site = sites[rng.next() % 4];
        plan.add(std::move(injection));
    }
    return plan;
}

void
FaultPlan::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (unsigned &h : hits)
        h = 0;
}

void
FaultPlan::onCheckpoint(const std::string &kernel, FaultSite site) const
{
    std::uint64_t stall_ms = 0;
    bool fail = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < planned.size(); ++i) {
            const FaultInjection &injection = planned[i];
            if (injection.site != site || injection.kernel != kernel)
                continue;
            if (++hits[i] != injection.attempt)
                continue;
            if (injection.stallMs > 0)
                stall_ms = injection.stallMs;
            else
                fail = true;
        }
    }
    if (stall_ms > 0) {
        // Simulated pathological stage; the deadline check following
        // this call (evalCheckpoint) turns it into DeadlineExceeded
        // when a watchdog is armed.
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    }
    if (fail) {
        throw StatusException(
            Status(StatusCode::FaultInjected,
                   msg("injected fault at site ", toString(site),
                       " (kernel ", kernel, ")")));
    }
}

namespace
{

thread_local const EvalContext *current_frame = nullptr;

[[noreturn]] void
throwDeadline(const EvalContext &ctx)
{
    throw StatusException(
        Status(StatusCode::DeadlineExceeded,
               msg("kernel deadline exceeded (kernel ", ctx.kernel,
                   ")")));
}

} // namespace

ScopedEvalContext::ScopedEvalContext(std::string kernel,
                                     CancelToken token,
                                     const FaultPlan *plan)
    : frame{std::move(kernel), std::move(token), plan},
      previous(current_frame)
{
    current_frame = &frame;
}

ScopedEvalContext::~ScopedEvalContext()
{
    current_frame = previous;
}

const EvalContext *
currentEvalContext()
{
    return current_frame;
}

void
evalCheckpoint(FaultSite site)
{
    const EvalContext *ctx = current_frame;
    if (!ctx)
        return;
    if (ctx->plan)
        ctx->plan->onCheckpoint(ctx->kernel, site);
    if (ctx->token.expired())
        throwDeadline(*ctx);
}

void
deadlineCheckpoint()
{
    const EvalContext *ctx = current_frame;
    if (!ctx || !ctx->token.active())
        return;
    if (ctx->token.expired())
        throwDeadline(*ctx);
}

} // namespace gpumech
