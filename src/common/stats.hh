/**
 * @file
 * Small statistics helpers shared by the models, the harness and the
 * benches: means, percentiles, relative error, and an online summary
 * accumulator.
 */

#ifndef GPUMECH_COMMON_STATS_HH
#define GPUMECH_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace gpumech
{

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty input. Values must be positive. */
double geomean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &xs);

/** Median (by sorting a copy); 0 for an empty input. */
double median(std::vector<double> xs);

/**
 * Linear-interpolated percentile, p in [0, 100]; 0 for an empty
 * input.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Relative error |predicted - reference| / reference.
 *
 * A zero reference with nonzero prediction yields +inf; both zero
 * yields 0.
 */
double relativeError(double predicted, double reference);

/**
 * Signed relative error (predicted - reference) / reference; negative
 * means the model underestimates.
 */
double signedRelativeError(double predicted, double reference);

/** Fraction of values strictly below a threshold; 0 for empty input. */
double fractionBelow(const std::vector<double> &xs, double threshold);

/** Online accumulator for count / mean / min / max. */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? total / n : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_STATS_HH
