#include "common/json_value.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace gpumech
{

bool
JsonValue::boolean() const
{
    if (valueKind != Kind::Bool)
        panic("JsonValue::boolean() on a non-bool value");
    return boolValue;
}

double
JsonValue::number() const
{
    if (valueKind != Kind::Number)
        panic("JsonValue::number() on a non-number value");
    return numberValue;
}

const std::string &
JsonValue::string() const
{
    if (valueKind != Kind::String)
        panic("JsonValue::string() on a non-string value");
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (valueKind != Kind::Array)
        panic("JsonValue::items() on a non-array value");
    return arrayItems;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (valueKind != Kind::Object)
        panic("JsonValue::members() on a non-object value");
    return objectMembers;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (valueKind != Kind::Object)
        return nullptr;
    for (const auto &member : objectMembers) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

Result<std::string>
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *v = find(key);
    if (v == nullptr || v->isNull())
        return fallback;
    if (!v->isString()) {
        return Status(StatusCode::InvalidArgument,
                      msg("field '", key, "' must be a string"));
    }
    return v->string();
}

Result<double>
JsonValue::getNumber(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    if (v == nullptr || v->isNull())
        return fallback;
    if (!v->isNumber()) {
        return Status(StatusCode::InvalidArgument,
                      msg("field '", key, "' must be a number"));
    }
    return v->number();
}

Result<bool>
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    if (v == nullptr || v->isNull())
        return fallback;
    if (!v->isBool()) {
        return Status(StatusCode::InvalidArgument,
                      msg("field '", key, "' must be a boolean"));
    }
    return v->boolean();
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.valueKind = Kind::Bool;
    v.boolValue = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.valueKind = Kind::Number;
    v.numberValue = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.valueKind = Kind::String;
    v.stringValue = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.valueKind = Kind::Array;
    v.arrayItems = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.valueKind = Kind::Object;
    v.objectMembers = std::move(members);
    return v;
}

namespace
{

// Local ASSIGN_OR_RETURN over Result<JsonValue>: the common macro
// would shadow-declare; keep the parser self-contained.
#define GPUMECH_JSON_ASSIGN(lhs, rexpr)                                \
    do {                                                               \
        auto gpumech_json_r = (rexpr);                                 \
        if (!gpumech_json_r.ok())                                      \
            return gpumech_json_r.status();                            \
        lhs = std::move(gpumech_json_r).value();                       \
    } while (0)

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    Result<JsonValue>
    parse()
    {
        skipWs();
        JsonValue root;
        GPUMECH_JSON_ASSIGN(root, parseValue(0));
        skipWs();
        if (pos != text.size())
            return error("trailing characters after JSON document");
        return root;
    }

  private:
    Status
    error(const std::string &what) const
    {
        return Status(StatusCode::ParseError,
                      msg("json offset ", pos, ": ", what));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Result<JsonValue>
    parseValue(std::size_t depth)
    {
        if (depth > jsonMaxDepth)
            return error("nesting too deep");
        if (pos >= text.size())
            return error("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"': {
            std::string s;
            GPUMECH_TRY(parseString(s));
            return JsonValue::makeString(std::move(s));
          }
          case 't':
            GPUMECH_TRY(expectWord("true"));
            return JsonValue::makeBool(true);
          case 'f':
            GPUMECH_TRY(expectWord("false"));
            return JsonValue::makeBool(false);
          case 'n':
            GPUMECH_TRY(expectWord("null"));
            return JsonValue::makeNull();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            return error(msg("unexpected character '", c, "'"));
        }
    }

    Status
    expectWord(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text.compare(pos, n, word) != 0)
            return error(msg("expected '", word, "'"));
        pos += n;
        return Status();
    }

    Result<JsonValue>
    parseObject(std::size_t depth)
    {
        ++pos; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return error("expected object key string");
            std::string key;
            GPUMECH_TRY(parseString(key));
            skipWs();
            if (!consume(':'))
                return error("expected ':' after object key");
            skipWs();
            JsonValue value;
            GPUMECH_JSON_ASSIGN(value, parseValue(depth + 1));
            members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return error("expected ',' or '}' in object");
        }
    }

    Result<JsonValue>
    parseArray(std::size_t depth)
    {
        ++pos; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            skipWs();
            JsonValue value;
            GPUMECH_JSON_ASSIGN(value, parseValue(depth + 1));
            items.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return error("expected ',' or ']' in array");
        }
    }

    /** One \uXXXX escape's four hex digits; -1 on malformed input. */
    int
    hex4()
    {
        if (pos + 4 > text.size())
            return -1;
        int value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text[pos + i];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else
                return -1;
            value = value * 16 + digit;
        }
        pos += 4;
        return value;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Status
    parseString(std::string &out)
    {
        ++pos; // '"'
        out.clear();
        while (true) {
            if (pos >= text.size())
                return error("unterminated string");
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return Status();
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return error("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos; // '\'
            if (pos >= text.size())
                return error("unterminated escape");
            char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                int unit = hex4();
                if (unit < 0)
                    return error("bad \\u escape");
                std::uint32_t cp = static_cast<std::uint32_t>(unit);
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the paired low half.
                    if (pos + 1 >= text.size() || text[pos] != '\\' ||
                        text[pos + 1] != 'u') {
                        return error("unpaired surrogate");
                    }
                    pos += 2;
                    int low = hex4();
                    if (low < 0xDC00 || low > 0xDFFF)
                        return error("bad low surrogate");
                    cp = 0x10000 +
                         ((cp - 0xD800) << 10) +
                         (static_cast<std::uint32_t>(low) - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return error("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return error(msg("bad escape '\\", esc, "'"));
            }
        }
    }

    Result<JsonValue>
    parseNumber()
    {
        std::size_t start = pos;
        consume('-');
        if (pos >= text.size() || !std::isdigit(
                static_cast<unsigned char>(text[pos]))) {
            return error("expected digit in number");
        }
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (consume('.')) {
            if (pos >= text.size() || !std::isdigit(
                    static_cast<unsigned char>(text[pos])))
                return error("expected digit after '.'");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !std::isdigit(
                    static_cast<unsigned char>(text[pos])))
                return error("expected digit in exponent");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return error(msg("bad number '", token, "'"));
        return JsonValue::makeNumber(value);
    }

#undef GPUMECH_JSON_ASSIGN

    const std::string &text;
    std::size_t pos = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace gpumech
