/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * fatal() is for user errors (bad configuration, invalid arguments) and
 * exits with code 1; panic() is for internal invariant violations and
 * aborts. inform()/warn() report status without stopping the program.
 *
 * Thread safety: every emitter assembles its full line and writes it
 * with a single call under one process-wide mutex, so messages from
 * parallel suite evaluation never interleave mid-line.
 */

#ifndef GPUMECH_COMMON_LOGGING_HH
#define GPUMECH_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace gpumech
{

/** Print an informational message to stderr ("info: ..."). */
void inform(const std::string &msg);

/** Print a warning message to stderr ("warn: ..."). */
void warn(const std::string &msg);

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &msg);

/**
 * Build a message from stream-style pieces, e.g.
 * fatal(msg("bad warp count: ", n)).
 */
template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace gpumech

#endif // GPUMECH_COMMON_LOGGING_HH
