/**
 * @file
 * ASCII table, CSV, and horizontal bar-chart renderers used by the
 * bench binaries to print the paper's tables and figures as text.
 */

#ifndef GPUMECH_COMMON_TABLE_HH
#define GPUMECH_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gpumech
{

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"kernel", "error"});
 *   t.addRow({"srad", "13.2%"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append one data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render with padded columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding, comma-separated). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a fraction as a percentage string, e.g. 0.132 -> "13.2%". */
std::string fmtPercent(double fraction, int precision = 1);

/**
 * Render a labeled horizontal bar chart (one row per label) where each
 * bar is scaled so the maximum value spans @p width characters.
 */
void printBarChart(std::ostream &os, const std::string &title,
                   const std::vector<std::string> &labels,
                   const std::vector<double> &values, int width = 50);

/**
 * Render a grouped bar chart: one block per label, one bar per series.
 * Used for the model-comparison figures.
 */
void printGroupedBarChart(std::ostream &os, const std::string &title,
                          const std::vector<std::string> &labels,
                          const std::vector<std::string> &series,
                          const std::vector<std::vector<double>> &values,
                          int width = 50);

} // namespace gpumech

#endif // GPUMECH_COMMON_TABLE_HH
