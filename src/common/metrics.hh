/**
 * @file
 * Low-overhead metrics registry for the evaluation engine.
 *
 * The simulator's own pitch is decomposition (the paper's CPI stacks);
 * this applies the same philosophy to the simulator itself: monotonic
 * counters, gauges, and histogram timers that attribute where wall
 * time and work go across the parallel pipeline (thread pool, input
 * cache, per-kernel stages, trace parser).
 *
 * Design constraints, in priority order:
 *
 *  - Zero-cost when disabled. Handle operations reduce to one relaxed
 *    atomic load and a predictable branch; no allocation, no clock
 *    read, no lock. Metrics are off by default and enabled explicitly
 *    (the CLI's --metrics / --metrics-json flags, the bench).
 *
 *  - No hot-loop locks when enabled. Counter and histogram updates go
 *    to thread-local shards (plain, unsynchronized writes); shards are
 *    merged at report time. Registration (name -> id) is the only
 *    locking path and happens once per call site via a function-local
 *    static handle.
 *
 *  - Deterministic totals. Shard merging is pure addition, so a
 *    snapshot taken after a parallel region equals the serial total at
 *    any thread count (asserted by tests/test_metrics.cc).
 *
 * Snapshot consistency: snapshot()/reset() must be called while no
 * instrumented work is in flight (after a suite/sweep returns). The
 * pool's job-completion handshake orders worker writes before the
 * submitter's return, so a post-run snapshot reads fully published
 * shards.
 */

#ifndef GPUMECH_COMMON_METRICS_HH
#define GPUMECH_COMMON_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gpumech
{

/** Kinds a metric can be registered as. */
enum class MetricKind
{
    Counter,   //!< monotonic event count
    Gauge,     //!< last-set value (registry-level, not sharded)
    Histogram, //!< value distribution: count/sum/min/max + log2 buckets
};

/** Stable lower-case kind name ("counter", ...). */
std::string toString(MetricKind kind);

/** Opaque registered-metric index; invalid when default-constructed. */
class MetricId
{
  public:
    MetricId() = default;

    bool valid() const { return index != invalid; }

  private:
    friend class Metrics;
    static constexpr std::uint32_t invalid = 0xffffffff;

    explicit MetricId(std::uint32_t index) : index(index) {}

    std::uint32_t index = invalid;
};

/**
 * Merged histogram state. Buckets are log2-spaced: bucket b counts
 * observations v with floor(log2(max(v, 1))) == b (clamped to the last
 * bucket), enough for p50/p95-style tail estimates of timer values
 * without per-observation allocation.
 */
struct HistogramData
{
    static constexpr std::size_t numBuckets = 48;

    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; //!< meaningful only when count > 0
    double max = 0.0; //!< meaningful only when count > 0
    std::array<std::uint64_t, numBuckets> buckets{};

    void observe(double value);
    void merge(const HistogramData &other);

    double mean() const { return count ? sum / count : 0.0; }

    /**
     * Estimated value at quantile @p q in [0, 1]: the upper bound of
     * the bucket holding the q-th observation, clamped to [min, max].
     * 0 when empty.
     */
    double quantile(double q) const;
};

/** One merged metric at snapshot time. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    double value = 0.0; //!< counter total or gauge value
    HistogramData hist; //!< populated for histograms only
};

/**
 * Process-wide metric registry. All members are static: the registry
 * is a singleton by construction (metrics name a process-wide fact).
 */
class Metrics
{
  public:
    /** Global enable flag; one relaxed load on every hot-path call. */
    static bool enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Turn collection on/off (does not clear recorded values). */
    static void enable(bool on);

    /**
     * Register (or look up) a metric by name. Re-registering the same
     * name returns the same id; the kind must match the first
     * registration (panic otherwise). Slow path — call sites cache the
     * result in a function-local static handle.
     */
    static MetricId counter(const std::string &name);
    static MetricId gauge(const std::string &name);
    static MetricId histogram(const std::string &name);

    /** Hot-path updates. No-ops on an invalid id. */
    static void add(MetricId id, std::uint64_t delta = 1);
    static void set(MetricId id, double value);
    static void observe(MetricId id, double value);

    /** Merged view of every registered metric, sorted by name. */
    static std::vector<MetricSnapshot> snapshot();

    /** Zero every recorded value (registrations are kept). */
    static void reset();

  private:
    friend struct MetricsShard;

    static std::atomic<bool> enabledFlag;
};

/**
 * Counter handle. Constructing one registers the name; add() is safe
 * to call from any thread and is a no-op while metrics are disabled.
 */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(const std::string &name)
        : id(Metrics::counter(name))
    {}

    void
    add(std::uint64_t delta = 1) const
    {
        if (Metrics::enabled())
            Metrics::add(id, delta);
    }

  private:
    MetricId id;
};

/** Gauge handle (set is registry-level: rare, lightly locked). */
class Gauge
{
  public:
    Gauge() = default;
    explicit Gauge(const std::string &name) : id(Metrics::gauge(name))
    {}

    void
    set(double value) const
    {
        if (Metrics::enabled())
            Metrics::set(id, value);
    }

  private:
    MetricId id;
};

/** Histogram handle. */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(const std::string &name)
        : id(Metrics::histogram(name))
    {}

    void
    observe(double value) const
    {
        if (Metrics::enabled())
            Metrics::observe(id, value);
    }

  private:
    MetricId id;
};

/**
 * RAII timer: observes the scope's elapsed milliseconds into a
 * histogram. One branch when disabled (no clock read).
 */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(const Histogram &hist);
    ~ScopedTimerMs();

    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

  private:
    const Histogram &hist;
    std::uint64_t startNs = 0;
    bool armed = false;
};

/** Nanoseconds since an arbitrary process-local epoch (steady). */
std::uint64_t monotonicNowNs();

/**
 * Per-interval view: subtract @p before from @p after (both from
 * Metrics::snapshot()). Counters and histogram count/sum/buckets
 * subtract entrywise; gauges keep the after value (a gauge is a level,
 * not a flow); histogram min/max are kept from @p after (extrema are
 * not invertible). Metrics registered only in @p after appear as-is.
 * The serve loop uses this to attribute registry activity to one
 * request batch; like snapshot(), both endpoints must be taken while
 * no instrumented work is in flight.
 */
std::vector<MetricSnapshot>
snapshotDelta(const std::vector<MetricSnapshot> &before,
              const std::vector<MetricSnapshot> &after);

/**
 * Render the current snapshot as a JSON document:
 * {"metrics":{"<name>":{"kind":...,...}}}. Valid JSON by construction
 * (JsonWriter escaping + non-finite -> null).
 */
std::string metricsToJson();

/** Render an explicit (e.g. delta) snapshot as the same document. */
std::string metricsToJson(const std::vector<MetricSnapshot> &snapshot);

/**
 * Render the current snapshot as human-readable tables (counters and
 * gauges, then histograms with count/total/mean/p50/p95/max). The
 * CLI's --metrics summary, printed to stderr so it never corrupts
 * machine-readable stdout.
 */
void printMetricsSummary(std::ostream &os);

} // namespace gpumech

#endif // GPUMECH_COMMON_METRICS_HH
