/**
 * @file
 * Fault-isolation primitives for the evaluation engine.
 *
 * Three pieces cooperate to turn a misbehaving kernel into one failed
 * result instead of a dead process or a hung run:
 *
 *  - CancelToken: a per-kernel deadline. Cooperative — pipeline loops
 *    call deadlineCheckpoint() at iteration boundaries and the check
 *    throws StatusException(DeadlineExceeded) once the deadline
 *    passes, so a pathological kernel degrades to a structured
 *    failure (there is no preemption; a stage that never reaches a
 *    checkpoint cannot be interrupted).
 *
 *  - FaultPlan: a deterministic injection hook — fail kernel N at
 *    site S on checkpoint hit K, or stall there for a fixed time.
 *    Tests use it to prove per-kernel containment; the
 *    ext_fault_injection bench uses it to price the error layer.
 *
 *  - ScopedEvalContext: a thread-local frame installed by the harness
 *    around each per-kernel task, carrying the kernel name, its
 *    CancelToken, and the active FaultPlan. Checkpoints read it and
 *    are no-ops when no frame is installed (or on pool workers
 *    running nested fan-out chunks), so library users who never
 *    configure isolation pay one thread-local load per checkpoint.
 */

#ifndef GPUMECH_COMMON_ISOLATION_HH
#define GPUMECH_COMMON_ISOLATION_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"

namespace gpumech
{

/** Pipeline stages at which faults can be injected / observed. */
enum class FaultSite
{
    Parse,   //!< trace generation / trace-file parsing
    Collect, //!< functional cache simulation (input collector)
    Profile, //!< per-warp interval profiling
    Cache,   //!< InputCache lookup
};

/** Stable lower-case site name ("parse", "collect", ...). */
std::string toString(FaultSite site);

/** Parse a site name (the CLI's --inject syntax). */
Result<FaultSite> faultSiteFromString(const std::string &name);

/**
 * Copyable handle on one absolute deadline. A default-constructed
 * token never expires; copies share the deadline, so the token can
 * cross threads and stages of one kernel's evaluation.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Deadline @p ms from now; ms == 0 returns a never-expiring token. */
    static CancelToken withTimeoutMs(std::uint64_t ms);

    /** True when a deadline is configured. */
    bool active() const { return deadline != nullptr; }

    /** True when the deadline has passed. */
    bool expired() const
    {
        return deadline &&
               std::chrono::steady_clock::now() >= *deadline;
    }

    /**
     * Milliseconds until the deadline (negative once past it). Only
     * meaningful when active(); feeds the harness's deadline-margin
     * histogram so near-timeout kernels are visible before they fail.
     */
    double remainingMs() const;

  private:
    std::shared_ptr<const std::chrono::steady_clock::time_point>
        deadline;
};

/** One planned fault. */
struct FaultInjection
{
    std::string kernel; //!< kernel name the fault targets
    FaultSite site = FaultSite::Parse;

    /** Trigger on the K-th checkpoint hit of (kernel, site); 1-based. */
    unsigned attempt = 1;

    /**
     * 0: the checkpoint throws StatusCode::FaultInjected. >0: the
     * checkpoint stalls this many milliseconds instead — simulates a
     * pathological stage so tests can trip the deadline watchdog
     * deterministically.
     */
    std::uint64_t stallMs = 0;
};

/**
 * Deterministic fault schedule. Thread-safe: per-injection hit
 * counters are guarded, so parallel suite runs see exactly the
 * planned faults. reset() re-arms every injection for a fresh run.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Movable (fresh mutex); needed by the randomized() factory. */
    FaultPlan(FaultPlan &&other) noexcept;
    FaultPlan &operator=(FaultPlan &&) = delete;
    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    void add(FaultInjection injection);

    /**
     * Seeded schedule for stress runs: one throwing injection per
     * chosen kernel at a pseudo-randomly chosen site. Deterministic
     * for a given (seed, kernels).
     */
    static FaultPlan randomized(std::uint64_t seed,
                                const std::vector<std::string> &kernels);

    /** Planned injections (for reporting). */
    const std::vector<FaultInjection> &injections() const
    {
        return planned;
    }

    /** Re-arm: zero every injection's hit counter. */
    void reset();

    /**
     * Checkpoint body: counts the hit and either throws
     * StatusException(FaultInjected) or stalls, when an armed
     * injection matches (kernel, site, attempt).
     */
    void onCheckpoint(const std::string &kernel, FaultSite site) const;

  private:
    std::vector<FaultInjection> planned;
    mutable std::vector<unsigned> hits; //!< per-injection, guarded
    mutable std::mutex mu;
};

/** The per-kernel isolation frame checkpoints read. */
struct EvalContext
{
    std::string kernel;
    CancelToken token;
    const FaultPlan *plan = nullptr;
};

/**
 * RAII installer of the calling thread's EvalContext. The harness
 * wraps each per-kernel task in one; nesting restores the previous
 * frame on destruction.
 */
class ScopedEvalContext
{
  public:
    ScopedEvalContext(std::string kernel, CancelToken token,
                      const FaultPlan *plan);
    ~ScopedEvalContext();

    ScopedEvalContext(const ScopedEvalContext &) = delete;
    ScopedEvalContext &operator=(const ScopedEvalContext &) = delete;

  private:
    EvalContext frame;
    const EvalContext *previous;
};

/** The calling thread's frame, or nullptr outside any scope. */
const EvalContext *currentEvalContext();

/**
 * Stage-boundary checkpoint: runs the fault plan for @p site, then
 * the deadline check. Call once per pipeline stage per kernel.
 */
void evalCheckpoint(FaultSite site);

/**
 * Loop-boundary checkpoint: deadline only (no fault-plan lock), cheap
 * enough for strided use inside hot loops.
 */
void deadlineCheckpoint();

/**
 * Suggested iteration stride between deadlineCheckpoint() calls in
 * per-instruction loops: frequent enough for millisecond-scale
 * timeouts, rare enough to be free (<1% — pinned by the
 * ext_fault_injection bench).
 */
inline constexpr std::size_t deadlineCheckStride = 8192;

} // namespace gpumech

#endif // GPUMECH_COMMON_ISOLATION_HH
