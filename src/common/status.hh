/**
 * @file
 * Status / Result<T> error layer.
 *
 * The evaluation engine's north star is batch service over many
 * kernels x configurations, where one malformed input must not abort
 * the whole run. User-error surfaces (trace parsing, configuration
 * validation, workload lookup, the input cache) therefore *return* a
 * Status instead of calling fatal(); fatal() remains only as a thin
 * wrapper at the CLI boundary (see Status::orDie).
 *
 * Policy (see DESIGN.md section 10):
 *  - Status / Result<T>: expected, recoverable user errors.
 *  - StatusException: the same Status carried across layers that
 *    cannot change signature cheaply (pipeline internals, cooperative
 *    cancellation); contained at the per-kernel harness boundary.
 *  - panic(): internal invariant violations only. Never contained.
 */

#ifndef GPUMECH_COMMON_STATUS_HH
#define GPUMECH_COMMON_STATUS_HH

#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace gpumech
{

/**
 * Error taxonomy. Codes are deliberately fine-grained on the trace
 * parsing side so tests (and batch-service clients) can distinguish
 * malformed-input classes without string matching.
 */
enum class StatusCode
{
    Ok = 0,
    InvalidArgument,  //!< out-of-range config value, bad CLI option
    NotFound,         //!< unknown workload / suite / opcode
    ParseError,       //!< malformed token where a keyword was expected
    TruncatedInput,   //!< input ended mid-record
    Overflow,         //!< numeric field exceeds its type or a sane cap
    OutOfRange,       //!< value outside the valid domain (pc, counts)
    DuplicateHeader,  //!< repeated 'kernel' header / section in a trace
    FailedValidation, //!< structurally parsed but semantically invalid
    VersionMismatch,  //!< binary trace from a foreign format version,
                      //!< endianness, or trace-layout generation
    ChecksumMismatch, //!< binary trace section bytes fail their
                      //!< recorded checksum (on-disk corruption)
    DeadlineExceeded, //!< per-kernel watchdog fired
    FaultInjected,    //!< deterministic fault-injection hook fired
    ResourceExhausted,//!< admission control shed the request
                      //!< (serve queue full)
    Internal,         //!< escaped exception mapped at a containment
                      //!< boundary
};

/** Stable lower-case name of a code ("parse_error", "ok", ...). */
std::string toString(StatusCode code);

/** An error code plus message and outermost-first context chain. */
class Status
{
  public:
    /** Default: Ok. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : statusCode(code), text(std::move(message))
    {}

    bool ok() const { return statusCode == StatusCode::Ok; }
    StatusCode code() const { return statusCode; }
    const std::string &message() const { return text; }

    /**
     * Return a copy with @p context prepended ("context: message").
     * No-op on Ok so propagation macros can annotate unconditionally.
     */
    Status withContext(const std::string &context) const;

    /** "code: message", or "ok". */
    std::string toString() const;

    /** CLI-boundary bridge: fatal(toString()) when not ok. */
    void orDie() const;

  private:
    StatusCode statusCode = StatusCode::Ok;
    std::string text;
};

/**
 * A T or the Status explaining its absence. Success is implicit when
 * constructed from a value; constructing from an Ok status panics
 * (an Ok Result must carry a value).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : stored(std::move(value)) {}

    Result(Status error) : failure(std::move(error))
    {
        // A Result built from a status must describe a failure.
        if (failure.ok())
            failure = Status(StatusCode::Internal,
                             "Result constructed from Ok status");
    }

    bool ok() const { return stored.has_value(); }

    /** Ok status when a value is present, else the error. */
    const Status &status() const { return failure; }

    const T &value() const & { return *stored; }
    T &value() & { return *stored; }
    T &&value() && { return *std::move(stored); }

    /** Value, or fatal(status) at the CLI boundary. */
    T &&valueOrDie() &&
    {
        failure.orDie();
        return *std::move(stored);
    }

  private:
    Status failure;
    std::optional<T> stored;
};

/**
 * Exception carrier for a Status crossing layers whose signatures
 * stay exception-based (cooperative cancellation checkpoints, thread
 * pool task bodies, cache compute functions). Containment boundaries
 * (evaluateSuite / predictSuite / runSweep) catch it and record the
 * carried Status on the failed kernel.
 */
class StatusException : public std::exception
{
  public:
    explicit StatusException(Status s)
        : carried(std::move(s)), rendered(carried.toString())
    {}

    const Status &status() const { return carried; }
    const char *what() const noexcept override
    {
        return rendered.c_str();
    }

  private:
    Status carried;
    std::string rendered;
};

/** Propagate a non-Ok Status out of the calling function. */
#define GPUMECH_TRY(expr)                                              \
    do {                                                               \
        ::gpumech::Status gpumech_try_status = (expr);                 \
        if (!gpumech_try_status.ok())                                  \
            return gpumech_try_status;                                 \
    } while (0)

#define GPUMECH_STATUS_CONCAT_INNER(a, b) a##b
#define GPUMECH_STATUS_CONCAT(a, b) GPUMECH_STATUS_CONCAT_INNER(a, b)

/**
 * Evaluate a Result<T> expression; on error return its Status, else
 * move the value into @p lhs (a declaration or assignable lvalue).
 */
#define GPUMECH_ASSIGN_OR_RETURN(lhs, rexpr)                           \
    GPUMECH_ASSIGN_OR_RETURN_IMPL(                                     \
        GPUMECH_STATUS_CONCAT(gpumech_result_, __LINE__), lhs, rexpr)

#define GPUMECH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)                 \
    auto tmp = (rexpr);                                                \
    if (!tmp.ok())                                                     \
        return tmp.status();                                           \
    lhs = std::move(tmp).value()

} // namespace gpumech

#endif // GPUMECH_COMMON_STATUS_HH
