#include "common/thread_pool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.hh"

namespace gpumech
{

namespace
{

/**
 * Pool instrumentation (all no-ops while metrics are disabled):
 *  - pool.jobs / pool.chunks / pool.items: dispatched parallelFor
 *    calls, dynamic chunks claimed, and loop iterations executed;
 *  - pool.queue_wait.ms: submit-to-first-claim latency per job (how
 *    long work sat before any thread picked it up);
 *  - pool.drain.ms: busy time per drain call — the per-thread work
 *    share, whose spread across calls exposes utilization imbalance;
 *  - pool.concurrency: total parallelism of the most recent dispatch.
 */
struct PoolMetrics
{
    Counter jobs{"pool.jobs"};
    Counter chunks{"pool.chunks"};
    Counter items{"pool.items"};
    Histogram queueWaitMs{"pool.queue_wait.ms"};
    Histogram drainMs{"pool.drain.ms"};
    Gauge concurrency{"pool.concurrency"};
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

} // namespace

/**
 * One parallelFor invocation. Iterations are claimed in chunks from
 * `next`; a job is complete when every chunk has been claimed and
 * finished (chunksDone == totalChunks). The submitting thread waits on
 * `done` after draining its own share, so completion never depends on
 * a worker being available.
 */
struct ThreadPool::Job
{
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t totalChunks = 0;
    const std::function<void(std::size_t)> *body = nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> chunksDone{0};
    std::atomic<bool> failed{false};

    /** Submission timestamp (0 when metrics were off at submit). */
    std::uint64_t submitNs = 0;
    std::atomic<bool> waitRecorded{false};

    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error; //!< first exception; guarded by mu
};

struct ThreadPool::State
{
    std::mutex mu;
    std::condition_variable wake;
    std::deque<std::shared_ptr<Job>> jobs;
    bool stopping = false;
    std::vector<std::thread> workers;
};

void
ThreadPool::drain(Job &job)
{
    bool measure = Metrics::enabled();
    std::uint64_t t0 = measure ? monotonicNowNs() : 0;
    std::size_t claimed_chunks = 0;
    std::size_t claimed_items = 0;
    for (;;) {
        std::size_t begin = job.next.fetch_add(job.chunk);
        if (begin >= job.n)
            break;
        std::size_t end = std::min(begin + job.chunk, job.n);
        if (measure) {
            if (job.submitNs != 0 &&
                !job.waitRecorded.exchange(
                    true, std::memory_order_relaxed)) {
                poolMetrics().queueWaitMs.observe(
                    static_cast<double>(monotonicNowNs() -
                                        job.submitNs) /
                    1e6);
            }
            ++claimed_chunks;
            claimed_items += end - begin;
        }
        if (!job.failed.load(std::memory_order_relaxed)) {
            try {
                for (std::size_t i = begin; i < end; ++i)
                    (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.mu);
                if (!job.error)
                    job.error = std::current_exception();
                job.failed.store(true, std::memory_order_relaxed);
            }
        }
        if (job.chunksDone.fetch_add(1) + 1 == job.totalChunks) {
            // Last chunk: wake the submitter. Locking job.mu orders
            // this notify against the submitter's predicate check.
            std::lock_guard<std::mutex> lock(job.mu);
            job.done.notify_all();
        }
    }
    if (measure && claimed_chunks > 0) {
        poolMetrics().chunks.add(claimed_chunks);
        poolMetrics().items.add(claimed_items);
        poolMetrics().drainMs.observe(
            static_cast<double>(monotonicNowNs() - t0) / 1e6);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(state->mu);
            state->wake.wait(lock, [&] {
                return state->stopping || !state->jobs.empty();
            });
            if (state->stopping)
                return;
            job = state->jobs.front();
            if (job->next.load(std::memory_order_relaxed) >= job->n) {
                // Exhausted job still queued: retire it and re-check.
                state->jobs.pop_front();
                continue;
            }
        }
        drain(*job);
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->jobs.empty() && state->jobs.front() == job)
            state->jobs.pop_front();
    }
}

ThreadPool::ThreadPool(unsigned concurrency) : state(new State)
{
    if (concurrency == 0)
        concurrency = defaultJobs();
    state->workers.reserve(concurrency - 1);
    for (unsigned t = 1; t < concurrency; ++t)
        state->workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(state->mu);
        state->stopping = true;
    }
    state->wake.notify_all();
    for (auto &worker : state->workers)
        worker.join();
    delete state;
}

unsigned
ThreadPool::concurrency() const
{
    return static_cast<unsigned>(state->workers.size()) + 1;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    if (state->workers.empty() || n <= grain) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->n = n;
    job->body = &body;
    if (Metrics::enabled()) {
        job->submitNs = monotonicNowNs();
        poolMetrics().jobs.add();
        poolMetrics().concurrency.set(concurrency());
    }
    // ~4 chunks per thread balances dynamic-scheduling overhead
    // against tail imbalance.
    std::size_t targets = static_cast<std::size_t>(concurrency()) * 4;
    job->chunk = std::max(grain, (n + targets - 1) / targets);
    job->totalChunks = (n + job->chunk - 1) / job->chunk;

    {
        std::lock_guard<std::mutex> lock(state->mu);
        state->jobs.push_back(job);
    }
    state->wake.notify_all();

    drain(*job);

    {
        std::unique_lock<std::mutex> lock(job->mu);
        job->done.wait(lock, [&] {
            return job->chunksDone.load() == job->totalChunks;
        });
    }
    {
        // Retire the job if a worker has not already done so.
        std::lock_guard<std::mutex> lock(state->mu);
        for (auto it = state->jobs.begin(); it != state->jobs.end();
             ++it) {
            if (*it == job) {
                state->jobs.erase(it);
                break;
            }
        }
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

namespace
{

std::atomic<unsigned> jobs_override{0};

} // namespace

unsigned
defaultJobs()
{
    unsigned forced = jobs_override.load(std::memory_order_relaxed);
    if (forced != 0)
        return forced;
    if (const char *env = std::getenv("GPUMECH_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
setDefaultJobs(unsigned jobs)
{
    jobs_override.store(jobs, std::memory_order_relaxed);
}

ThreadPool &
globalPool()
{
    static std::mutex mu;
    static std::unique_ptr<ThreadPool> pool;
    std::lock_guard<std::mutex> lock(mu);
    unsigned want = defaultJobs();
    if (!pool || pool->concurrency() != want)
        pool = std::make_unique<ThreadPool>(want);
    return *pool;
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body,
            std::size_t grain, unsigned jobs)
{
    if (jobs == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    if (jobs == 0) {
        globalPool().parallelFor(n, body, grain);
        return;
    }
    ThreadPool &shared = globalPool();
    if (shared.concurrency() == jobs) {
        shared.parallelFor(n, body, grain);
    } else {
        ThreadPool scoped(jobs);
        scoped.parallelFor(n, body, grain);
    }
}

} // namespace gpumech
