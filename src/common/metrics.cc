#include "common/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace gpumech
{

std::string
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
HistogramData::observe(double value)
{
    if (count == 0 || value < min)
        min = value;
    if (count == 0 || value > max)
        max = value;
    ++count;
    sum += value;
    double clamped = value < 1.0 ? 1.0 : value;
    auto bucket = static_cast<std::size_t>(std::log2(clamped));
    if (bucket >= numBuckets)
        bucket = numBuckets - 1;
    ++buckets[bucket];
}

void
HistogramData::merge(const HistogramData &other)
{
    if (other.count == 0)
        return;
    if (count == 0 || other.min < min)
        min = other.min;
    if (count == 0 || other.max > max)
        max = other.max;
    count += other.count;
    sum += other.sum;
    for (std::size_t b = 0; b < numBuckets; ++b)
        buckets[b] += other.buckets[b];
}

double
HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * (count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            double upper = std::ldexp(1.0, static_cast<int>(b) + 1);
            return std::min(std::max(upper, min), max);
        }
    }
    return max;
}

// Defined below at namespace scope (it is the friend the header names).
struct MetricsShard;

namespace
{

/**
 * Registry state. Leaked on purpose: thread-local shard destructors
 * (pool workers exiting at process teardown) must be able to
 * deregister after main() returns, so the registry can never be
 * destroyed first.
 */
struct Registry
{
    std::mutex mu;
    std::vector<std::string> names;
    std::vector<MetricKind> kinds;
    std::vector<double> gauges; //!< parallel to names; gauges only
    std::unordered_map<std::string, std::uint32_t> byName;
    std::vector<MetricsShard *> shards;      //!< live threads
    std::vector<HistogramData> retired;      //!< merged dead shards
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

} // namespace

/**
 * Per-thread metric storage: one cell per registered metric, written
 * without synchronization (only this thread touches it). Counters use
 * the cell's count field; histograms use all of it.
 */
struct MetricsShard
{
    std::vector<HistogramData> cells;

    MetricsShard()
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.shards.push_back(this);
    }

    ~MetricsShard()
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        if (reg.retired.size() < cells.size())
            reg.retired.resize(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            reg.retired[i].merge(cells[i]);
        reg.shards.erase(std::find(reg.shards.begin(),
                                   reg.shards.end(), this));
    }

    HistogramData &
    cell(std::uint32_t index)
    {
        if (index >= cells.size())
            cells.resize(index + 1);
        return cells[index];
    }
};

namespace
{

MetricsShard &
localShard()
{
    thread_local MetricsShard shard;
    return shard;
}

std::uint32_t
registerMetric(const std::string &name, MetricKind kind)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.byName.find(name);
    if (it != reg.byName.end()) {
        if (reg.kinds[it->second] != kind) {
            panic(msg("metric '", name, "' re-registered as ",
                      toString(kind), " (was ",
                      toString(reg.kinds[it->second]), ")"));
        }
        return it->second;
    }
    auto index = static_cast<std::uint32_t>(reg.names.size());
    reg.names.push_back(name);
    reg.kinds.push_back(kind);
    reg.gauges.push_back(0.0);
    reg.byName.emplace(name, index);
    return index;
}

} // namespace

std::atomic<bool> Metrics::enabledFlag{false};

void
Metrics::enable(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

MetricId
Metrics::counter(const std::string &name)
{
    return MetricId(registerMetric(name, MetricKind::Counter));
}

MetricId
Metrics::gauge(const std::string &name)
{
    return MetricId(registerMetric(name, MetricKind::Gauge));
}

MetricId
Metrics::histogram(const std::string &name)
{
    return MetricId(registerMetric(name, MetricKind::Histogram));
}

void
Metrics::add(MetricId id, std::uint64_t delta)
{
    if (!id.valid())
        return;
    localShard().cell(id.index).count += delta;
}

void
Metrics::set(MetricId id, double value)
{
    if (!id.valid())
        return;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.gauges[id.index] = value;
}

void
Metrics::observe(MetricId id, double value)
{
    if (!id.valid())
        return;
    localShard().cell(id.index).observe(value);
}

std::vector<MetricSnapshot>
Metrics::snapshot()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<MetricSnapshot> out(reg.names.size());
    for (std::size_t i = 0; i < reg.names.size(); ++i) {
        out[i].name = reg.names[i];
        out[i].kind = reg.kinds[i];
        if (i < reg.retired.size())
            out[i].hist.merge(reg.retired[i]);
        for (const MetricsShard *shard : reg.shards) {
            if (i < shard->cells.size())
                out[i].hist.merge(shard->cells[i]);
        }
        switch (out[i].kind) {
          case MetricKind::Counter:
            out[i].value = static_cast<double>(out[i].hist.count);
            out[i].hist = HistogramData{};
            break;
          case MetricKind::Gauge:
            out[i].value = reg.gauges[i];
            out[i].hist = HistogramData{};
            break;
          case MetricKind::Histogram:
            out[i].value = out[i].hist.sum;
            break;
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });
    return out;
}

void
Metrics::reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.retired.clear();
    std::fill(reg.gauges.begin(), reg.gauges.end(), 0.0);
    for (MetricsShard *shard : reg.shards)
        shard->cells.clear();
}

ScopedTimerMs::ScopedTimerMs(const Histogram &hist) : hist(hist)
{
    if (Metrics::enabled()) {
        armed = true;
        startNs = monotonicNowNs();
    }
}

ScopedTimerMs::~ScopedTimerMs()
{
    if (armed)
        hist.observe(
            static_cast<double>(monotonicNowNs() - startNs) / 1e6);
}

std::uint64_t
monotonicNowNs()
{
    using namespace std::chrono;
    static const steady_clock::time_point epoch = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now() - epoch)
            .count());
}

std::vector<MetricSnapshot>
snapshotDelta(const std::vector<MetricSnapshot> &before,
              const std::vector<MetricSnapshot> &after)
{
    std::vector<MetricSnapshot> delta;
    delta.reserve(after.size());
    // Both snapshots are sorted by name; walk them like a merge.
    std::size_t b = 0;
    for (const MetricSnapshot &m : after) {
        while (b < before.size() && before[b].name < m.name)
            ++b;
        MetricSnapshot d = m;
        if (b < before.size() && before[b].name == m.name) {
            const MetricSnapshot &prev = before[b];
            switch (m.kind) {
              case MetricKind::Counter:
                d.value = m.value - prev.value;
                break;
              case MetricKind::Gauge:
                break; // keep the after level
              case MetricKind::Histogram:
                d.hist.count = m.hist.count - prev.hist.count;
                d.hist.sum = m.hist.sum - prev.hist.sum;
                for (std::size_t i = 0;
                     i < HistogramData::numBuckets; ++i) {
                    d.hist.buckets[i] =
                        m.hist.buckets[i] - prev.hist.buckets[i];
                }
                break;
            }
        }
        delta.push_back(std::move(d));
    }
    return delta;
}

std::string
metricsToJson()
{
    return metricsToJson(Metrics::snapshot());
}

std::string
metricsToJson(const std::vector<MetricSnapshot> &snapshot)
{
    JsonWriter json;
    json.beginObject("metrics");
    for (const MetricSnapshot &m : snapshot) {
        json.beginObject(m.name);
        json.field("kind", toString(m.kind));
        switch (m.kind) {
          case MetricKind::Counter:
            json.field("value",
                       static_cast<std::uint64_t>(m.value));
            break;
          case MetricKind::Gauge:
            json.field("value", m.value);
            break;
          case MetricKind::Histogram:
            json.field("count", m.hist.count);
            json.field("sum", m.hist.sum);
            json.field("mean", m.hist.mean());
            json.field("min", m.hist.count ? m.hist.min : 0.0);
            json.field("max", m.hist.count ? m.hist.max : 0.0);
            json.field("p50", m.hist.quantile(0.50));
            json.field("p95", m.hist.quantile(0.95));
            break;
        }
        json.endObject();
    }
    json.endObject();
    return json.finish();
}

void
printMetricsSummary(std::ostream &os)
{
    std::vector<MetricSnapshot> all = Metrics::snapshot();

    Table scalars({"metric", "kind", "value"});
    Table hists(
        {"histogram", "count", "total", "mean", "p50", "p95", "max"});
    for (const MetricSnapshot &m : all) {
        if (m.kind == MetricKind::Histogram) {
            if (m.hist.count == 0)
                continue;
            hists.addRow({m.name, std::to_string(m.hist.count),
                          fmtDouble(m.hist.sum, 2),
                          fmtDouble(m.hist.mean(), 3),
                          fmtDouble(m.hist.quantile(0.50), 3),
                          fmtDouble(m.hist.quantile(0.95), 3),
                          fmtDouble(m.hist.max, 3)});
        } else {
            scalars.addRow({m.name, toString(m.kind),
                            m.kind == MetricKind::Counter
                                ? std::to_string(
                                      static_cast<std::uint64_t>(
                                          m.value))
                                : fmtDouble(m.value, 3)});
        }
    }
    if (scalars.rows() > 0) {
        os << "-- metrics: counters & gauges --\n";
        scalars.print(os);
    }
    if (hists.rows() > 0) {
        if (scalars.rows() > 0)
            os << "\n";
        os << "-- metrics: stage timers (ms unless noted) --\n";
        hists.print(os);
    }
    if (scalars.rows() == 0 && hists.rows() == 0)
        os << "-- metrics: nothing recorded --\n";
}

} // namespace gpumech
