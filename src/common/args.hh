/**
 * @file
 * Minimal command-line argument parser for the CLI tool and benches.
 *
 * Supports positional arguments plus `--flag`, `--key value`, and
 * `--key=value` options. Deliberately tiny: no subcommand tree, no
 * auto-help generation.
 */

#ifndef GPUMECH_COMMON_ARGS_HH
#define GPUMECH_COMMON_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hh"

namespace gpumech
{

/** Parsed command line. */
class ArgParser
{
  public:
    /** Parse from main()'s argv (argv[0] is skipped). */
    ArgParser(int argc, const char *const *argv);

    /** Parse from a token list (for tests). */
    explicit ArgParser(const std::vector<std::string> &tokens);

    /** Number of positional (non-option) arguments. */
    std::size_t numPositional() const { return positionals.size(); }

    /** Positional argument i, or @p fallback when absent. */
    std::string positional(std::size_t i,
                           const std::string &fallback = "") const;

    /** True when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** Value of --name, or @p fallback when absent/valueless. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Numeric value of --name; fatal on non-numeric input. */
    std::uint32_t getUint(const std::string &name,
                          std::uint32_t fallback) const;

    /**
     * Checked counterpart of getUint for count-valued options
     * (--warps, --cores, --mshrs, --jobs): the value must be a plain
     * decimal integer >= 1 that fits a uint32. Anything else —
     * including "-1" (which getUint's strtoul would silently wrap to
     * ~4e9) and "0" — returns StatusCode::InvalidArgument naming the
     * flag, so front-ends can reject it before it reaches the engine.
     * Absent/valueless options return @p fallback unchecked.
     */
    Result<std::uint32_t>
    getPositiveUint(const std::string &name,
                    std::uint32_t fallback) const;

    /**
     * Checked floating-point value of --name. Malformed input returns
     * StatusCode::InvalidArgument instead of calling fatal() (a bad
     * numeric option in a served request must produce one error
     * response, never kill the daemon). Non-finite values are rejected
     * too: strtod happily parses "nan"/"inf"/"1e999", none of which is
     * a meaningful rate/bandwidth/constraint and +inf even slips past
     * HardwareConfig's `value > 0` validation. Absent/valueless
     * options return @p fallback unchecked.
     */
    Result<double> getDouble(const std::string &name,
                             double fallback) const;

  private:
    void parse(const std::vector<std::string> &tokens);

    std::vector<std::string> positionals;
    std::map<std::string, std::string> options;
};

} // namespace gpumech

#endif // GPUMECH_COMMON_ARGS_HH
