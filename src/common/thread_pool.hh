/**
 * @file
 * Shared thread pool with chunked dynamic scheduling.
 *
 * The evaluation pipeline fans independent work out across a fixed
 * worker set instead of spawning threads per call (the per-call
 * std::thread spawning the original buildAllProfilesParallel used).
 * The calling thread always participates in draining its own job, so
 * nested parallelFor calls cannot deadlock and a pool of concurrency 1
 * degenerates to a plain serial loop.
 *
 * Work distribution is dynamic: iterations are claimed in chunks from
 * an atomic cursor, so long-running items (e.g. long warps of one
 * phase) no longer pin to a single worker the way static stride
 * partitioning did.
 *
 * Determinism: parallelFor(n, body) invokes body exactly once per
 * index, and parallelMap writes result i into slot i, so outputs are
 * ordered and bit-identical to a serial loop as long as the body is a
 * pure function of its index.
 */

#ifndef GPUMECH_COMMON_THREAD_POOL_HH
#define GPUMECH_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace gpumech
{

/** Fixed-size worker pool executing chunked parallel loops. */
class ThreadPool
{
  public:
    /**
     * @param concurrency total parallelism including the calling
     *        thread (so N spawns N-1 workers); 0 uses defaultJobs().
     */
    explicit ThreadPool(unsigned concurrency = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the calling thread). */
    unsigned concurrency() const;

    /**
     * Run body(i) for every i in [0, n). Blocks until every index has
     * completed; the calling thread participates. Iterations are
     * claimed dynamically in chunks of at least @p grain indices. The
     * first exception thrown by the body is rethrown here (remaining
     * chunks are skipped, already-running ones finish).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

    /**
     * Ordered map: out[i] = fn(i) for every i in [0, n). Result order
     * is independent of scheduling. T must be default-constructible.
     */
    template <typename T>
    std::vector<T>
    parallelMap(std::size_t n, const std::function<T(std::size_t)> &fn,
                std::size_t grain = 1)
    {
        std::vector<T> out(n);
        parallelFor(
            n, [&](std::size_t i) { out[i] = fn(i); }, grain);
        return out;
    }

  private:
    struct Job;
    struct State;

    static void drain(Job &job);
    void workerLoop();

    State *state; //!< pimpl: queue, mutex, cv, worker threads
};

/**
 * Effective job count: the setDefaultJobs() override if set, else the
 * GPUMECH_JOBS environment variable, else hardware_concurrency (min 1).
 */
unsigned defaultJobs();

/**
 * Override the default job count (the CLI's --jobs knob); 0 restores
 * auto-detection. Takes effect on the next globalPool() access; do not
 * call while parallel work is in flight.
 */
void setDefaultJobs(unsigned jobs);

/**
 * The process-wide shared pool, sized to defaultJobs(). Rebuilt
 * transparently when setDefaultJobs() changes the target size.
 */
ThreadPool &globalPool();

/**
 * Convenience front end: run a parallel loop with @p jobs total
 * threads. jobs == 0 uses the shared global pool at its current size;
 * jobs == 1 runs serially inline; any other count uses the global pool
 * when it matches, else a temporary pool of that size.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 std::size_t grain = 1, unsigned jobs = 0);

/** Ordered parallelMap with the same job-count routing as parallelFor. */
template <typename T>
std::vector<T>
parallelMap(std::size_t n, const std::function<T(std::size_t)> &fn,
            std::size_t grain = 1, unsigned jobs = 0)
{
    std::vector<T> out(n);
    parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); }, grain, jobs);
    return out;
}

} // namespace gpumech

#endif // GPUMECH_COMMON_THREAD_POOL_HH
