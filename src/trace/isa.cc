#include "trace/isa.hh"

#include "common/logging.hh"

namespace gpumech
{

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::SharedLoad:
      case Opcode::SharedStore:
      case Opcode::GlobalLoad:
      case Opcode::GlobalStore:
        return true;
      default:
        return false;
    }
}

bool
isGlobalMemory(Opcode op)
{
    return op == Opcode::GlobalLoad || op == Opcode::GlobalStore;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::GlobalLoad || op == Opcode::SharedLoad;
}

bool
isStore(Opcode op)
{
    return op == Opcode::GlobalStore || op == Opcode::SharedStore;
}

std::uint32_t
fixedLatency(Opcode op, const LatencyTable &table)
{
    switch (op) {
      case Opcode::IntAlu:
        return table.intAlu;
      case Opcode::FpAlu:
        return table.fpAlu;
      case Opcode::Sfu:
        return table.sfu;
      case Opcode::Branch:
        return table.branch;
      case Opcode::SharedLoad:
      case Opcode::SharedStore:
        return table.sharedMem;
      case Opcode::GlobalLoad:
      case Opcode::GlobalStore:
        panic("fixedLatency called on a global-memory opcode");
    }
    panic("unknown opcode");
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::IntAlu:
        return "ialu";
      case Opcode::FpAlu:
        return "falu";
      case Opcode::Sfu:
        return "sfu";
      case Opcode::Branch:
        return "br";
      case Opcode::SharedLoad:
        return "ld.shared";
      case Opcode::SharedStore:
        return "st.shared";
      case Opcode::GlobalLoad:
        return "ld.global";
      case Opcode::GlobalStore:
        return "st.global";
    }
    return "?";
}

Opcode
opcodeFromString(const std::string &name)
{
    Opcode op;
    if (!tryOpcodeFromString(name, op))
        fatal(msg("unknown opcode mnemonic: ", name));
    return op;
}

bool
tryOpcodeFromString(const std::string &name, Opcode &op)
{
    for (std::uint32_t i = 0; i < numOpcodes; ++i) {
        auto candidate = static_cast<Opcode>(i);
        if (toString(candidate) == name) {
            op = candidate;
            return true;
        }
    }
    return false;
}

} // namespace gpumech
