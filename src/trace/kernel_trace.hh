/**
 * @file
 * Whole-kernel trace: the static program, every warp's dynamic trace,
 * and the block-to-core assignment used by both the timing simulator
 * and the input collector.
 *
 * Storage is flat and arena-backed (structure-of-arrays): the
 * instructions of all warps live in kernel-level parallel arrays (one
 * per hot field — pc, opcode, active mask, dependency triple, line
 * slice), coalesced line addresses live in a single kernel-level Addr
 * pool, and each warp is an (offset, count) window over the
 * instruction arrays. Consumers access warps through the lightweight
 * WarpView, whose *Data() accessors expose the raw SoA arrays for
 * allocation-free hot loops (interval builder, collector, timing).
 */

#ifndef GPUMECH_TRACE_KERNEL_TRACE_HH
#define GPUMECH_TRACE_KERNEL_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "trace/warp_trace.hh"

namespace gpumech
{

/** One static instruction (PC) of a kernel. */
struct StaticInst
{
    Opcode op = Opcode::IntAlu;
    std::string label; //!< optional human-readable tag
};

class KernelTrace;

/**
 * Non-owning view of one warp inside a KernelTrace.
 *
 * Cheap to copy (pointer + window); field accessors index the
 * kernel-level SoA arrays. The *Data() accessors return the warp's
 * window of a field array directly so hot loops touch nothing but
 * dense memory.
 */
class WarpView
{
  public:
    WarpView() = default;
    WarpView(const KernelTrace *kernel, std::uint32_t index);

    /** Whether the view points at a warp (default-constructed = no). */
    bool valid() const { return kernel_ != nullptr; }

    /** Index of this warp within the kernel (position in warps()). */
    std::uint32_t index() const { return index_; }

    std::uint32_t warpId() const;
    std::uint32_t blockId() const;
    std::size_t numInsts() const { return instCount_; }

    // Per-instruction field accessors (i is the warp-local index).
    std::uint32_t pc(std::size_t i) const;
    Opcode op(std::size_t i) const;
    std::uint32_t activeThreads(std::size_t i) const;
    const DepArray &deps(std::size_t i) const;
    LineSpan lines(std::size_t i) const;
    std::uint32_t numRequests(std::size_t i) const;

    // SoA windows over this warp's instructions (hot-loop access).
    const std::uint32_t *pcData() const;
    const Opcode *opData() const;
    const std::uint32_t *activeData() const;
    const DepArray *depData() const;
    const std::uint32_t *lineCountData() const;

    /** Count of global-memory instructions. */
    std::size_t numGlobalMemInsts() const;

    /** Total global-memory requests over the whole trace. */
    std::size_t numGlobalMemRequests() const;

  private:
    const KernelTrace *kernel_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint64_t instOffset_ = 0;
    std::uint32_t instCount_ = 0;
};

/** Forward iteration over a kernel's warps as WarpViews. */
class WarpRange
{
  public:
    class iterator
    {
      public:
        iterator(const KernelTrace *kernel, std::uint32_t index)
            : kernel(kernel), index(index)
        {}
        WarpView operator*() const { return WarpView(kernel, index); }
        iterator &
        operator++()
        {
            ++index;
            return *this;
        }
        bool
        operator!=(const iterator &other) const
        {
            return index != other.index;
        }

      private:
        const KernelTrace *kernel;
        std::uint32_t index;
    };

    WarpRange(const KernelTrace *kernel, std::uint32_t count)
        : kernel(kernel), count(count)
    {}
    iterator begin() const { return iterator(kernel, 0); }
    iterator end() const { return iterator(kernel, count); }
    std::uint32_t size() const { return count; }

  private:
    const KernelTrace *kernel;
    std::uint32_t count;
};

/**
 * A complete kernel trace (flat SoA storage, see file comment).
 *
 * Thread blocks are assigned to cores round-robin by blockId; all
 * warps of a block land on the same core, mirroring how real GPUs
 * schedule CTAs onto SMs.
 */
class KernelTrace
{
  public:
    KernelTrace() = default;
    explicit KernelTrace(std::string kernel_name)
        : name_(std::move(kernel_name))
    {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Register a static instruction; returns its PC. */
    std::uint32_t addStatic(Opcode op, std::string label = "");

    const std::vector<StaticInst> &staticInsts() const { return program; }
    std::uint32_t numStaticInsts() const
    {
        return static_cast<std::uint32_t>(program.size());
    }
    Opcode opcodeOf(std::uint32_t pc) const;

    /**
     * Pre-size the flat storage from workload-declared size hints so
     * trace construction never pays geometric-reallocation copies.
     */
    void reserveTrace(std::uint64_t num_warps,
                      std::uint64_t total_insts,
                      std::uint64_t total_lines);

    /**
     * Flatten a built warp into the kernel-level arrays (absorbs the
     * warp's local line arena into the kernel pool and rebases its
     * slices).
     */
    void addWarp(const WarpTrace &warp);

    /**
     * Bulk column adoption for binary trace ingestion: install the
     * kernel-level SoA arrays directly (one move per column, no
     * per-record work) and recompute everything derivable — warp
     * instruction windows and line-slice offsets by prefix sum, and
     * per-instruction opcodes from the already-registered static
     * program. This is the "pointer fixup" half of the mmap load path:
     * the .gmt format stores only the non-derivable columns.
     *
     * The static program must be registered (addStatic) first.
     * Returns OutOfRange when the column shapes disagree (mismatched
     * warp/instruction totals, zero per-warp instruction counts, a pc
     * beyond the static program, or a line-count sum that does not
     * cover the pool). On error the trace is left empty.
     */
    Status adoptColumns(std::vector<std::uint32_t> warp_ids,
                        std::vector<std::uint32_t> warp_blocks,
                        std::vector<std::uint32_t> warp_inst_counts,
                        std::vector<std::uint32_t> inst_pcs,
                        std::vector<std::uint32_t> inst_actives,
                        std::vector<DepArray> inst_deps,
                        std::vector<std::uint32_t> inst_line_counts,
                        std::vector<Addr> line_pool);

    /** View of one warp; fatal if out of range. */
    WarpView warp(std::uint32_t index) const;

    /** Iterable range of all warps (WarpViews). */
    WarpRange
    warps() const
    {
        return WarpRange(this, numWarps());
    }

    std::uint32_t numWarps() const
    {
        return static_cast<std::uint32_t>(warpMeta_.size());
    }
    std::uint32_t numBlocks() const;

    /** Total dynamic warp-instructions across all warps. */
    std::uint64_t totalInsts() const { return instPc_.size(); }

    /** Total coalesced line requests in the kernel-level pool. */
    std::uint64_t totalLines() const { return linePool_.size(); }

    /** Core a given warp executes on under round-robin block placement. */
    std::uint32_t coreOf(const WarpView &warp,
                         const HardwareConfig &config) const;

    /** Same, by warp index. */
    std::uint32_t coreOfWarp(std::uint32_t index,
                             const HardwareConfig &config) const;

    /** Indices (into warps()) of the warps assigned to one core. */
    std::vector<std::uint32_t> warpsOnCore(std::uint32_t core,
                                           const HardwareConfig &config)
        const;

    /**
     * Validate every warp (backward deps, slice bounds, line-count
     * invariants) and that PCs reference the static program with
     * matching opcodes.
     */
    bool validate() const;

    /**
     * Bytes of heap memory held by the flat trace arrays (capacities,
     * i.e. what is actually allocated). Static program labels are not
     * counted.
     */
    std::size_t memoryFootprint() const;

    // Whole-kernel SoA arrays (flat across all warps, in warp order).
    // The collector and benches walk these directly.
    const std::vector<std::uint32_t> &instPcs() const { return instPc_; }
    const std::vector<Opcode> &instOps() const { return instOp_; }
    const std::vector<std::uint32_t> &instActives() const
    {
        return instActive_;
    }
    const std::vector<DepArray> &instDeps() const { return instDeps_; }
    const std::vector<std::uint64_t> &instLineOffsets() const
    {
        return instLineOff_;
    }
    const std::vector<std::uint32_t> &instLineCounts() const
    {
        return instLineCnt_;
    }
    const std::vector<Addr> &linePool() const { return linePool_; }

    /** Lines of the flat instruction at kernel-global index i. */
    LineSpan
    linesOfFlat(std::uint64_t i) const
    {
        return LineSpan{linePool_.data() + instLineOff_[i],
                        instLineCnt_[i]};
    }

    /** First kernel-global flat instruction index of a warp. */
    std::uint64_t
    instOffsetOf(std::uint32_t warp_index) const
    {
        return warpMeta_[warp_index].instOffset;
    }

  private:
    friend class WarpView;

    struct WarpMeta
    {
        std::uint32_t warpId = 0;
        std::uint32_t blockId = 0;
        std::uint64_t instOffset = 0; //!< window start in the SoA arrays
        std::uint32_t instCount = 0;  //!< window length
    };

    std::string name_;
    std::vector<StaticInst> program;
    std::vector<WarpMeta> warpMeta_;

    // SoA instruction fields, flat across all warps in warp order.
    std::vector<std::uint32_t> instPc_;
    std::vector<Opcode> instOp_;
    std::vector<std::uint32_t> instActive_;
    std::vector<DepArray> instDeps_;
    std::vector<std::uint64_t> instLineOff_; //!< into linePool_
    std::vector<std::uint32_t> instLineCnt_;

    /** Kernel-level arena of coalesced line addresses. */
    std::vector<Addr> linePool_;
};

// WarpView inline accessors (need the full KernelTrace definition).

inline WarpView::WarpView(const KernelTrace *kernel, std::uint32_t index)
    : kernel_(kernel), index_(index),
      instOffset_(kernel->warpMeta_[index].instOffset),
      instCount_(kernel->warpMeta_[index].instCount)
{}

inline std::uint32_t
WarpView::warpId() const
{
    return kernel_->warpMeta_[index_].warpId;
}

inline std::uint32_t
WarpView::blockId() const
{
    return kernel_->warpMeta_[index_].blockId;
}

inline std::uint32_t
WarpView::pc(std::size_t i) const
{
    return kernel_->instPc_[instOffset_ + i];
}

inline Opcode
WarpView::op(std::size_t i) const
{
    return kernel_->instOp_[instOffset_ + i];
}

inline std::uint32_t
WarpView::activeThreads(std::size_t i) const
{
    return kernel_->instActive_[instOffset_ + i];
}

inline const DepArray &
WarpView::deps(std::size_t i) const
{
    return kernel_->instDeps_[instOffset_ + i];
}

inline LineSpan
WarpView::lines(std::size_t i) const
{
    return kernel_->linesOfFlat(instOffset_ + i);
}

inline std::uint32_t
WarpView::numRequests(std::size_t i) const
{
    return kernel_->instLineCnt_[instOffset_ + i];
}

inline const std::uint32_t *
WarpView::pcData() const
{
    return kernel_->instPc_.data() + instOffset_;
}

inline const Opcode *
WarpView::opData() const
{
    return kernel_->instOp_.data() + instOffset_;
}

inline const std::uint32_t *
WarpView::activeData() const
{
    return kernel_->instActive_.data() + instOffset_;
}

inline const DepArray *
WarpView::depData() const
{
    return kernel_->instDeps_.data() + instOffset_;
}

inline const std::uint32_t *
WarpView::lineCountData() const
{
    return kernel_->instLineCnt_.data() + instOffset_;
}

} // namespace gpumech

#endif // GPUMECH_TRACE_KERNEL_TRACE_HH
