/**
 * @file
 * Whole-kernel trace: the static program, every warp's dynamic trace,
 * and the block-to-core assignment used by both the timing simulator
 * and the input collector.
 */

#ifndef GPUMECH_TRACE_KERNEL_TRACE_HH
#define GPUMECH_TRACE_KERNEL_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "trace/warp_trace.hh"

namespace gpumech
{

/** One static instruction (PC) of a kernel. */
struct StaticInst
{
    Opcode op = Opcode::IntAlu;
    std::string label; //!< optional human-readable tag
};

/**
 * A complete kernel trace.
 *
 * Thread blocks are assigned to cores round-robin by blockId; all
 * warps of a block land on the same core, mirroring how real GPUs
 * schedule CTAs onto SMs.
 */
class KernelTrace
{
  public:
    KernelTrace() = default;
    explicit KernelTrace(std::string kernel_name)
        : name_(std::move(kernel_name))
    {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Register a static instruction; returns its PC. */
    std::uint32_t addStatic(Opcode op, std::string label = "");

    const std::vector<StaticInst> &staticInsts() const { return program; }
    std::uint32_t numStaticInsts() const
    {
        return static_cast<std::uint32_t>(program.size());
    }
    Opcode opcodeOf(std::uint32_t pc) const;

    /** Append a warp trace (takes ownership). */
    void addWarp(WarpTrace warp);

    const std::vector<WarpTrace> &warps() const { return warps_; }
    std::uint32_t numWarps() const
    {
        return static_cast<std::uint32_t>(warps_.size());
    }
    std::uint32_t numBlocks() const;

    /** Total dynamic warp-instructions across all warps. */
    std::uint64_t totalInsts() const;

    /** Core a given warp executes on under round-robin block placement. */
    std::uint32_t coreOf(const WarpTrace &warp,
                         const HardwareConfig &config) const;

    /** Indices (into warps()) of the warps assigned to one core. */
    std::vector<std::uint32_t> warpsOnCore(std::uint32_t core,
                                           const HardwareConfig &config)
        const;

    /**
     * Validate every warp trace and that PCs reference the static
     * program with matching opcodes.
     */
    bool validate() const;

  private:
    std::string name_;
    std::vector<StaticInst> program;
    std::vector<WarpTrace> warps_;
};

} // namespace gpumech

#endif // GPUMECH_TRACE_KERNEL_TRACE_HH
