#include "trace/kernel_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

std::uint32_t
KernelTrace::addStatic(Opcode op, std::string label)
{
    program.push_back(StaticInst{op, std::move(label)});
    return static_cast<std::uint32_t>(program.size() - 1);
}

Opcode
KernelTrace::opcodeOf(std::uint32_t pc) const
{
    if (pc >= program.size())
        panic(msg("opcodeOf: pc ", pc, " out of range"));
    return program[pc].op;
}

void
KernelTrace::reserveTrace(std::uint64_t num_warps,
                          std::uint64_t total_insts,
                          std::uint64_t total_lines)
{
    warpMeta_.reserve(num_warps);
    instPc_.reserve(total_insts);
    instOp_.reserve(total_insts);
    instActive_.reserve(total_insts);
    instDeps_.reserve(total_insts);
    instLineOff_.reserve(total_insts);
    instLineCnt_.reserve(total_insts);
    linePool_.reserve(total_lines);
}

void
KernelTrace::addWarp(const WarpTrace &warp)
{
    WarpMeta meta;
    meta.warpId = warp.warpId;
    meta.blockId = warp.blockId;
    meta.instOffset = instPc_.size();
    meta.instCount = static_cast<std::uint32_t>(warp.insts.size());
    warpMeta_.push_back(meta);

    const std::uint64_t line_base = linePool_.size();
    for (const auto &inst : warp.insts) {
        instPc_.push_back(inst.pc);
        instOp_.push_back(inst.op);
        instActive_.push_back(inst.activeThreads);
        instDeps_.push_back(inst.deps);
        instLineOff_.push_back(inst.lineCount == 0
                                   ? 0
                                   : line_base + inst.lineOffset);
        instLineCnt_.push_back(inst.lineCount);
    }
    linePool_.insert(linePool_.end(), warp.linePool.begin(),
                     warp.linePool.end());
}

Status
KernelTrace::adoptColumns(std::vector<std::uint32_t> warp_ids,
                          std::vector<std::uint32_t> warp_blocks,
                          std::vector<std::uint32_t> warp_inst_counts,
                          std::vector<std::uint32_t> inst_pcs,
                          std::vector<std::uint32_t> inst_actives,
                          std::vector<DepArray> inst_deps,
                          std::vector<std::uint32_t> inst_line_counts,
                          std::vector<Addr> line_pool)
{
    auto shapeError = [](const std::string &why) {
        return Status(StatusCode::OutOfRange, why);
    };
    const std::size_t num_warps = warp_ids.size();
    if (warp_blocks.size() != num_warps ||
        warp_inst_counts.size() != num_warps) {
        return shapeError(msg("warp column lengths disagree (ids ",
                              warp_ids.size(), ", blocks ",
                              warp_blocks.size(), ", counts ",
                              warp_inst_counts.size(), ")"));
    }
    const std::size_t total = inst_pcs.size();
    if (inst_actives.size() != total || inst_deps.size() != total ||
        inst_line_counts.size() != total) {
        return shapeError(
            msg("instruction column lengths disagree (pcs ", total,
                ", actives ", inst_actives.size(), ", deps ",
                inst_deps.size(), ", line counts ",
                inst_line_counts.size(), ")"));
    }

    // Warp windows: prefix sum over the per-warp instruction counts.
    std::vector<WarpMeta> meta(num_warps);
    std::uint64_t offset = 0;
    for (std::size_t w = 0; w < num_warps; ++w) {
        if (warp_inst_counts[w] == 0) {
            return shapeError(msg("warp ", warp_ids[w],
                                  ": instruction count must be "
                                  "positive"));
        }
        meta[w].warpId = warp_ids[w];
        meta[w].blockId = warp_blocks[w];
        meta[w].instOffset = offset;
        meta[w].instCount = warp_inst_counts[w];
        offset += warp_inst_counts[w];
    }
    if (offset != total) {
        return shapeError(msg("per-warp instruction counts sum to ",
                              offset, " but the columns hold ", total,
                              " instructions"));
    }

    // Opcode fixup from the static program, and line-slice offsets by
    // prefix sum over the counts (zero-count instructions keep offset
    // 0, matching addWarp's convention).
    std::vector<Opcode> ops(total);
    std::vector<std::uint64_t> line_off(total);
    std::uint64_t line_cursor = 0;
    for (std::size_t i = 0; i < total; ++i) {
        if (inst_pcs[i] >= program.size()) {
            return shapeError(msg("inst pc ", inst_pcs[i],
                                  " out of range (static count ",
                                  program.size(), ")"));
        }
        ops[i] = program[inst_pcs[i]].op;
        line_off[i] = inst_line_counts[i] == 0 ? 0 : line_cursor;
        line_cursor += inst_line_counts[i];
    }
    if (line_cursor != line_pool.size()) {
        return shapeError(msg("line counts sum to ", line_cursor,
                              " but the line pool holds ",
                              line_pool.size(), " addresses"));
    }

    warpMeta_ = std::move(meta);
    instPc_ = std::move(inst_pcs);
    instOp_ = std::move(ops);
    instActive_ = std::move(inst_actives);
    instDeps_ = std::move(inst_deps);
    instLineOff_ = std::move(line_off);
    instLineCnt_ = std::move(inst_line_counts);
    linePool_ = std::move(line_pool);
    return Status();
}

WarpView
KernelTrace::warp(std::uint32_t index) const
{
    if (index >= warpMeta_.size())
        panic(msg("warp: index ", index, " out of range"));
    return WarpView(this, index);
}

std::uint32_t
KernelTrace::numBlocks() const
{
    std::uint32_t max_block = 0;
    for (const auto &w : warpMeta_)
        max_block = std::max(max_block, w.blockId);
    return warpMeta_.empty() ? 0 : max_block + 1;
}

std::uint32_t
KernelTrace::coreOf(const WarpView &warp,
                    const HardwareConfig &config) const
{
    return warp.blockId() % config.numCores;
}

std::uint32_t
KernelTrace::coreOfWarp(std::uint32_t index,
                        const HardwareConfig &config) const
{
    return warpMeta_[index].blockId % config.numCores;
}

std::vector<std::uint32_t>
KernelTrace::warpsOnCore(std::uint32_t core,
                         const HardwareConfig &config) const
{
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < warpMeta_.size(); ++i) {
        if (coreOfWarp(i, config) == core)
            ids.push_back(i);
    }
    return ids;
}

bool
KernelTrace::validate() const
{
    for (std::uint32_t w = 0; w < numWarps(); ++w) {
        const WarpMeta &meta = warpMeta_[w];
        if (meta.instOffset + meta.instCount > instPc_.size())
            return false;
        for (std::uint32_t i = 0; i < meta.instCount; ++i) {
            const std::uint64_t f = meta.instOffset + i;
            if (instPc_[f] >= program.size())
                return false;
            if (program[instPc_[f]].op != instOp_[f])
                return false;
            for (std::int32_t dep : instDeps_[f]) {
                if (dep == noDep)
                    continue;
                if (dep < 0 || static_cast<std::uint32_t>(dep) >= i)
                    return false;
            }
            if (isGlobalMemory(instOp_[f])) {
                if (instLineCnt_[f] == 0)
                    return false;
                if (instLineOff_[f] + instLineCnt_[f] >
                    linePool_.size()) {
                    return false;
                }
            } else if (instLineCnt_[f] != 0) {
                return false;
            }
            if (instActive_[f] == 0)
                return false;
        }
    }
    return true;
}

namespace
{

template <typename T>
std::size_t
vecBytes(const std::vector<T> &v)
{
    return v.capacity() * sizeof(T);
}

} // namespace

std::size_t
KernelTrace::memoryFootprint() const
{
    return vecBytes(warpMeta_) + vecBytes(instPc_) + vecBytes(instOp_) +
           vecBytes(instActive_) + vecBytes(instDeps_) +
           vecBytes(instLineOff_) + vecBytes(instLineCnt_) +
           vecBytes(linePool_) + vecBytes(program);
}

std::size_t
WarpView::numGlobalMemInsts() const
{
    const Opcode *ops = opData();
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < instCount_; ++i) {
        if (isGlobalMemory(ops[i]))
            ++n;
    }
    return n;
}

std::size_t
WarpView::numGlobalMemRequests() const
{
    const Opcode *ops = opData();
    const std::uint32_t *cnts = lineCountData();
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < instCount_; ++i) {
        if (isGlobalMemory(ops[i]))
            n += cnts[i];
    }
    return n;
}

} // namespace gpumech
