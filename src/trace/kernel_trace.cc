#include "trace/kernel_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

std::uint32_t
KernelTrace::addStatic(Opcode op, std::string label)
{
    program.push_back(StaticInst{op, std::move(label)});
    return static_cast<std::uint32_t>(program.size() - 1);
}

Opcode
KernelTrace::opcodeOf(std::uint32_t pc) const
{
    if (pc >= program.size())
        panic(msg("opcodeOf: pc ", pc, " out of range"));
    return program[pc].op;
}

void
KernelTrace::addWarp(WarpTrace warp)
{
    warps_.push_back(std::move(warp));
}

std::uint32_t
KernelTrace::numBlocks() const
{
    std::uint32_t max_block = 0;
    for (const auto &w : warps_)
        max_block = std::max(max_block, w.blockId);
    return warps_.empty() ? 0 : max_block + 1;
}

std::uint64_t
KernelTrace::totalInsts() const
{
    std::uint64_t total = 0;
    for (const auto &w : warps_)
        total += w.insts.size();
    return total;
}

std::uint32_t
KernelTrace::coreOf(const WarpTrace &warp,
                    const HardwareConfig &config) const
{
    return warp.blockId % config.numCores;
}

std::vector<std::uint32_t>
KernelTrace::warpsOnCore(std::uint32_t core,
                         const HardwareConfig &config) const
{
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < warps_.size(); ++i) {
        if (coreOf(warps_[i], config) == core)
            ids.push_back(i);
    }
    return ids;
}

bool
KernelTrace::validate() const
{
    for (const auto &warp : warps_) {
        if (!warp.validate())
            return false;
        for (const auto &inst : warp.insts) {
            if (inst.pc >= program.size())
                return false;
            if (program[inst.pc].op != inst.op)
                return false;
        }
    }
    return true;
}

} // namespace gpumech
