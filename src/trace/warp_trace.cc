#include "trace/warp_trace.hh"

namespace gpumech
{

std::int32_t
WarpTrace::addInst(const WarpInst &inst)
{
    auto idx = static_cast<std::int32_t>(insts.size());
    insts.push_back(inst);
    insts.back().lineOffset = 0;
    insts.back().lineCount = 0;
    return idx;
}

std::int32_t
WarpTrace::addMemInst(WarpInst inst, const Addr *lines,
                      std::uint32_t num_lines)
{
    inst.lineOffset = static_cast<std::uint32_t>(linePool.size());
    inst.lineCount = num_lines;
    linePool.insert(linePool.end(), lines, lines + num_lines);
    auto idx = static_cast<std::int32_t>(insts.size());
    insts.push_back(inst);
    return idx;
}

std::size_t
WarpTrace::numGlobalMemInsts() const
{
    std::size_t n = 0;
    for (const auto &inst : insts) {
        if (isGlobalMemory(inst.op))
            ++n;
    }
    return n;
}

std::size_t
WarpTrace::numGlobalMemRequests() const
{
    std::size_t n = 0;
    for (const auto &inst : insts) {
        if (isGlobalMemory(inst.op))
            n += inst.lineCount;
    }
    return n;
}

bool
WarpTrace::validate() const
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const auto &inst = insts[i];
        for (std::int32_t dep : inst.deps) {
            if (dep == noDep)
                continue;
            if (dep < 0 || static_cast<std::size_t>(dep) >= i)
                return false;
        }
        if (isGlobalMemory(inst.op)) {
            if (inst.lineCount == 0)
                return false;
            if (static_cast<std::size_t>(inst.lineOffset) +
                    inst.lineCount >
                linePool.size()) {
                return false;
            }
        } else if (inst.lineCount != 0) {
            return false;
        }
        if (inst.activeThreads == 0)
            return false;
    }
    return true;
}

} // namespace gpumech
