#include "trace/warp_trace.hh"

namespace gpumech
{

std::size_t
WarpTrace::numGlobalMemInsts() const
{
    std::size_t n = 0;
    for (const auto &inst : insts) {
        if (isGlobalMemory(inst.op))
            ++n;
    }
    return n;
}

std::size_t
WarpTrace::numGlobalMemRequests() const
{
    std::size_t n = 0;
    for (const auto &inst : insts) {
        if (isGlobalMemory(inst.op))
            n += inst.lines.size();
    }
    return n;
}

bool
WarpTrace::validate() const
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const auto &inst = insts[i];
        for (std::int32_t dep : inst.deps) {
            if (dep == noDep)
                continue;
            if (dep < 0 || static_cast<std::size_t>(dep) >= i)
                return false;
        }
        if (isGlobalMemory(inst.op)) {
            if (inst.lines.empty())
                return false;
        } else if (!inst.lines.empty()) {
            return false;
        }
        if (inst.activeThreads == 0)
            return false;
    }
    return true;
}

} // namespace gpumech
