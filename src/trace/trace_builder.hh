/**
 * @file
 * Register-dataflow trace builder.
 *
 * Workload generators write natural register code (each emit returns a
 * virtual register; sources are registers produced earlier) and the
 * builder converts the register dataflow into the trace-index
 * dependency edges the interval algorithm consumes. This plays the
 * role of GPUOcelot's dependency tagging (Section V-A).
 *
 * The builder's emit path is allocation-free in steady state: lines
 * are coalesced into a reused scratch buffer and appended to the
 * warp's line arena, and dependency resolution reuses a scratch
 * index vector. Generators that know their instruction counts should
 * call reserve() so the per-warp arrays never reallocate either.
 */

#ifndef GPUMECH_TRACE_TRACE_BUILDER_HH
#define GPUMECH_TRACE_TRACE_BUILDER_HH

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Virtual register handle returned by TraceBuilder emits. */
using Reg = std::int64_t;

/** Sentinel register for instructions that produce no value. */
constexpr Reg regNone = -1;

/**
 * Builds one warp's dynamic trace against a kernel's static program.
 *
 * Example:
 * @code
 *   KernelTrace kernel("axpy");
 *   auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
 *   auto pc_mul = kernel.addStatic(Opcode::FpAlu);
 *   auto pc_st = kernel.addStatic(Opcode::GlobalStore);
 *
 *   TraceBuilder b(kernel, 0, 0, config);
 *   Reg x = b.globalLoad(pc_ld, addrs);
 *   Reg y = b.compute(pc_mul, {x});
 *   b.globalStore(pc_st, out_addrs, {y});
 *   b.finish();
 * @endcode
 */
class TraceBuilder
{
  public:
    /**
     * @param kernel the kernel the warp belongs to (static program
     *               must already contain the PCs that will be emitted)
     * @param warp_id kernel-global warp index
     * @param block_id owning thread block
     * @param config provides warp size and L1 line size for coalescing
     */
    TraceBuilder(KernelTrace &kernel, std::uint32_t warp_id,
                 std::uint32_t block_id, const HardwareConfig &config);

    /**
     * Pre-size the warp's instruction array and line arena from a
     * workload-declared hint (upper bounds are fine; this only avoids
     * geometric-reallocation copies during emission).
     */
    void reserve(std::size_t num_insts, std::size_t num_lines);

    /**
     * Emit a non-global-memory instruction (ALU, SFU, branch, shared
     * memory) reading the given source registers.
     *
     * @param pc static instruction id
     * @param srcs source registers (regNone entries are ignored)
     * @param active_threads active mask population; defaults to a full
     *        warp
     * @return the destination register
     */
    Reg compute(std::uint32_t pc, std::initializer_list<Reg> srcs = {},
                std::uint32_t active_threads = 0);

    /** As above with sources in a container (no copy is taken). */
    Reg compute(std::uint32_t pc, const std::vector<Reg> &srcs,
                std::uint32_t active_threads = 0);

    /**
     * Emit a global load. Per-thread addresses are coalesced into line
     * requests; the number of active threads is the address count.
     *
     * @param pc static instruction id (must be a GlobalLoad)
     * @param thread_addrs one byte address per active thread
     * @param srcs address-generation source registers
     * @return the destination register holding the loaded value
     */
    Reg globalLoad(std::uint32_t pc, const std::vector<Addr> &thread_addrs,
                   std::initializer_list<Reg> srcs = {});

    /** As above with sources in a container (no copy is taken). */
    Reg globalLoad(std::uint32_t pc, const std::vector<Addr> &thread_addrs,
                   const std::vector<Reg> &srcs);

    /**
     * Emit a global store (produces no register).
     *
     * @param pc static instruction id (must be a GlobalStore)
     * @param thread_addrs one byte address per active thread
     * @param srcs data and address source registers
     */
    void globalStore(std::uint32_t pc, const std::vector<Addr> &thread_addrs,
                     std::initializer_list<Reg> srcs = {});

    /** As above with sources in a container (no copy is taken). */
    void globalStore(std::uint32_t pc, const std::vector<Addr> &thread_addrs,
                     const std::vector<Reg> &srcs);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return trace.insts.size(); }

    /**
     * Finalize and append the warp to the kernel. The builder must not
     * be used afterwards.
     */
    void finish();

  private:
    /** Append an instruction, resolving register deps to trace indices. */
    Reg append(std::uint32_t pc, Opcode op, const Reg *srcs,
               std::size_t num_srcs, std::uint32_t active_threads,
               const Addr *lines, std::uint32_t num_lines, bool produces);

    KernelTrace &kernel;
    const HardwareConfig &config;
    WarpTrace trace;
    /**
     * Producing trace index for each virtual register, indexed by the
     * register number (registers are issued densely by nextReg, so a
     * flat array replaces a hash map in the per-instruction path).
     */
    std::vector<std::int32_t> producer;
    /** Reused per-instruction coalescing buffer (no per-emit alloc). */
    std::vector<Addr> lineScratch;
    /** Reused dependency-resolution buffer. */
    std::vector<std::int32_t> depScratch;
    Reg nextReg = 0;
    bool finished = false;
};

} // namespace gpumech

#endif // GPUMECH_TRACE_TRACE_BUILDER_HH
