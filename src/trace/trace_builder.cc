#include "trace/trace_builder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/coalescer.hh"

namespace gpumech
{

TraceBuilder::TraceBuilder(KernelTrace &kernel, std::uint32_t warp_id,
                           std::uint32_t block_id,
                           const HardwareConfig &config)
    : kernel(kernel), config(config)
{
    trace.warpId = warp_id;
    trace.blockId = block_id;
}

void
TraceBuilder::reserve(std::size_t num_insts, std::size_t num_lines)
{
    trace.reserve(num_insts, num_lines);
    producer.reserve(num_insts);
}

Reg
TraceBuilder::compute(std::uint32_t pc, std::initializer_list<Reg> srcs,
                      std::uint32_t active_threads)
{
    Opcode op = kernel.opcodeOf(pc);
    if (isGlobalMemory(op))
        panic("compute() emitted with a global-memory pc");
    if (active_threads == 0)
        active_threads = config.warpSize;
    return append(pc, op, srcs.begin(), srcs.size(), active_threads,
                  nullptr, 0, !isStore(op));
}

Reg
TraceBuilder::compute(std::uint32_t pc, const std::vector<Reg> &srcs,
                      std::uint32_t active_threads)
{
    Opcode op = kernel.opcodeOf(pc);
    if (isGlobalMemory(op))
        panic("compute() emitted with a global-memory pc");
    if (active_threads == 0)
        active_threads = config.warpSize;
    return append(pc, op, srcs.data(), srcs.size(), active_threads,
                  nullptr, 0, !isStore(op));
}

Reg
TraceBuilder::globalLoad(std::uint32_t pc,
                         const std::vector<Addr> &thread_addrs,
                         std::initializer_list<Reg> srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalLoad)
        panic("globalLoad() emitted with a non-GlobalLoad pc");
    if (thread_addrs.empty())
        panic("globalLoad() needs at least one thread address");
    coalesce(thread_addrs, config.l1LineBytes, lineScratch);
    return append(pc, op, srcs.begin(), srcs.size(),
                  static_cast<std::uint32_t>(thread_addrs.size()),
                  lineScratch.data(),
                  static_cast<std::uint32_t>(lineScratch.size()), true);
}

Reg
TraceBuilder::globalLoad(std::uint32_t pc,
                         const std::vector<Addr> &thread_addrs,
                         const std::vector<Reg> &srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalLoad)
        panic("globalLoad() emitted with a non-GlobalLoad pc");
    if (thread_addrs.empty())
        panic("globalLoad() needs at least one thread address");
    coalesce(thread_addrs, config.l1LineBytes, lineScratch);
    return append(pc, op, srcs.data(), srcs.size(),
                  static_cast<std::uint32_t>(thread_addrs.size()),
                  lineScratch.data(),
                  static_cast<std::uint32_t>(lineScratch.size()), true);
}

void
TraceBuilder::globalStore(std::uint32_t pc,
                          const std::vector<Addr> &thread_addrs,
                          std::initializer_list<Reg> srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalStore)
        panic("globalStore() emitted with a non-GlobalStore pc");
    if (thread_addrs.empty())
        panic("globalStore() needs at least one thread address");
    coalesce(thread_addrs, config.l1LineBytes, lineScratch);
    append(pc, op, srcs.begin(), srcs.size(),
           static_cast<std::uint32_t>(thread_addrs.size()),
           lineScratch.data(),
           static_cast<std::uint32_t>(lineScratch.size()), false);
}

void
TraceBuilder::globalStore(std::uint32_t pc,
                          const std::vector<Addr> &thread_addrs,
                          const std::vector<Reg> &srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalStore)
        panic("globalStore() emitted with a non-GlobalStore pc");
    if (thread_addrs.empty())
        panic("globalStore() needs at least one thread address");
    coalesce(thread_addrs, config.l1LineBytes, lineScratch);
    append(pc, op, srcs.data(), srcs.size(),
           static_cast<std::uint32_t>(thread_addrs.size()),
           lineScratch.data(),
           static_cast<std::uint32_t>(lineScratch.size()), false);
}

Reg
TraceBuilder::append(std::uint32_t pc, Opcode op, const Reg *srcs,
                     std::size_t num_srcs, std::uint32_t active_threads,
                     const Addr *lines, std::uint32_t num_lines,
                     bool produces)
{
    if (finished)
        panic("TraceBuilder used after finish()");

    WarpInst inst;
    inst.pc = pc;
    inst.op = op;
    inst.activeThreads = active_threads;

    // Resolve register sources to distinct producer trace indices;
    // keep the youngest producers if there are more than fit, since
    // older ones have almost certainly completed already.
    depScratch.clear();
    for (std::size_t s = 0; s < num_srcs; ++s) {
        Reg r = srcs[s];
        if (r == regNone)
            continue;
        if (r < 0 || r >= static_cast<Reg>(producer.size()))
            panic(msg("source register ", r, " has no producer"));
        std::int32_t prod = producer[static_cast<std::size_t>(r)];
        if (std::find(depScratch.begin(), depScratch.end(), prod) ==
            depScratch.end()) {
            depScratch.push_back(prod);
        }
    }
    std::sort(depScratch.begin(), depScratch.end(),
              std::greater<std::int32_t>());
    for (std::size_t i = 0;
         i < inst.deps.size() && i < depScratch.size(); ++i) {
        inst.deps[i] = depScratch[i];
    }

    std::int32_t idx = num_lines > 0
        ? trace.addMemInst(inst, lines, num_lines)
        : trace.addInst(inst);

    if (!produces)
        return regNone;
    Reg dest = nextReg++;
    producer.push_back(idx);
    return dest;
}

void
TraceBuilder::finish()
{
    if (finished)
        panic("TraceBuilder::finish() called twice");
    finished = true;
    if (trace.insts.empty())
        panic("finish() on an empty warp trace");
    kernel.addWarp(trace);
}

} // namespace gpumech
