#include "trace/trace_builder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/coalescer.hh"

namespace gpumech
{

TraceBuilder::TraceBuilder(KernelTrace &kernel, std::uint32_t warp_id,
                           std::uint32_t block_id,
                           const HardwareConfig &config)
    : kernel(kernel), config(config)
{
    trace.warpId = warp_id;
    trace.blockId = block_id;
}

Reg
TraceBuilder::compute(std::uint32_t pc, std::vector<Reg> srcs,
                      std::uint32_t active_threads)
{
    Opcode op = kernel.opcodeOf(pc);
    if (isGlobalMemory(op))
        panic("compute() emitted with a global-memory pc");
    if (active_threads == 0)
        active_threads = config.warpSize;
    return append(pc, op, srcs, active_threads, {}, !isStore(op));
}

Reg
TraceBuilder::globalLoad(std::uint32_t pc,
                         const std::vector<Addr> &thread_addrs,
                         std::vector<Reg> srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalLoad)
        panic("globalLoad() emitted with a non-GlobalLoad pc");
    if (thread_addrs.empty())
        panic("globalLoad() needs at least one thread address");
    auto lines = coalesce(thread_addrs, config.l1LineBytes);
    return append(pc, op, srcs,
                  static_cast<std::uint32_t>(thread_addrs.size()),
                  std::move(lines), true);
}

void
TraceBuilder::globalStore(std::uint32_t pc,
                          const std::vector<Addr> &thread_addrs,
                          std::vector<Reg> srcs)
{
    Opcode op = kernel.opcodeOf(pc);
    if (op != Opcode::GlobalStore)
        panic("globalStore() emitted with a non-GlobalStore pc");
    if (thread_addrs.empty())
        panic("globalStore() needs at least one thread address");
    auto lines = coalesce(thread_addrs, config.l1LineBytes);
    append(pc, op, srcs, static_cast<std::uint32_t>(thread_addrs.size()),
           std::move(lines), false);
}

Reg
TraceBuilder::append(std::uint32_t pc, Opcode op,
                     const std::vector<Reg> &srcs,
                     std::uint32_t active_threads, std::vector<Addr> lines,
                     bool produces)
{
    if (finished)
        panic("TraceBuilder used after finish()");

    WarpInst inst;
    inst.pc = pc;
    inst.op = op;
    inst.activeThreads = active_threads;
    inst.lines = std::move(lines);

    // Resolve register sources to distinct producer trace indices;
    // keep the youngest producers if there are more than fit, since
    // older ones have almost certainly completed already.
    std::vector<std::int32_t> dep_idx;
    for (Reg r : srcs) {
        if (r == regNone)
            continue;
        auto it = producer.find(r);
        if (it == producer.end())
            panic(msg("source register ", r, " has no producer"));
        if (std::find(dep_idx.begin(), dep_idx.end(), it->second) ==
            dep_idx.end()) {
            dep_idx.push_back(it->second);
        }
    }
    std::sort(dep_idx.begin(), dep_idx.end(),
              std::greater<std::int32_t>());
    for (std::size_t i = 0; i < inst.deps.size() && i < dep_idx.size();
         ++i) {
        inst.deps[i] = dep_idx[i];
    }

    auto idx = static_cast<std::int32_t>(trace.insts.size());
    trace.insts.push_back(std::move(inst));

    if (!produces)
        return regNone;
    Reg dest = nextReg++;
    producer[dest] = idx;
    return dest;
}

void
TraceBuilder::finish()
{
    if (finished)
        panic("TraceBuilder::finish() called twice");
    finished = true;
    if (trace.insts.empty())
        panic("finish() on an empty warp trace");
    kernel.addWarp(std::move(trace));
}

} // namespace gpumech
