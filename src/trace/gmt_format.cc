#include "trace/gmt_format.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace gpumech
{

namespace
{

/**
 * Binary-loader throughput accounting (no-ops while metrics are
 * disabled), the .gmt twin of the text parser's parse.* family: bytes
 * and sections consumed by successful loads plus a per-load wall-time
 * histogram, so --metrics attributes binary ingestion the same way it
 * attributes text parsing.
 */
struct GmtMetrics
{
    Histogram loadMs{"gmt.load.ms"};
    Counter bytes{"gmt.bytes"};
    Counter sections{"gmt.sections"};
};

GmtMetrics &
gmtMetrics()
{
    static GmtMetrics m;
    return m;
}

/**
 * Record-count cap, mirroring the text parser's: element counts above
 * it are rejected as Overflow before any allocation, so a corrupt
 * section table cannot OOM the process by promising 10^18 rows.
 */
constexpr std::uint64_t maxRecordCount = 1ull << 31;

// ---- FNV-1a 64 ------------------------------------------------------

constexpr std::uint64_t fnvOffset = 1469598103934665603ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed = fnvOffset)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

// ---- on-disk structures ---------------------------------------------

/** Fixed file header (32 bytes, no padding). */
struct FileHeader
{
    char magic[4];
    std::uint16_t version;
    std::uint16_t endianTag;
    char layout[8]; //!< traceLayoutToken, NUL-padded
    std::uint32_t flags;
    std::uint32_t sectionCount;
    std::uint64_t tableChecksum; //!< FNV-1a over the section table
};
static_assert(sizeof(FileHeader) == 32, "packed header layout");

/** One section-table entry (40 bytes, no padding). */
struct SectionEntry
{
    std::uint32_t id;
    std::uint32_t reserved; //!< must be 0
    std::uint64_t offset;   //!< absolute payload offset
    std::uint64_t size;     //!< payload bytes on disk
    std::uint64_t count;    //!< decoded element count
    std::uint64_t checksum; //!< FNV-1a over the payload bytes
};
static_assert(sizeof(SectionEntry) == 40, "packed entry layout");

/** Section ids (every one required exactly once in version 1). */
enum SectionId : std::uint32_t
{
    SecKernelName = 1,
    SecStaticOps = 2,
    SecStaticLabels = 3,
    SecWarpIds = 4,
    SecWarpBlocks = 5,
    SecWarpInstCounts = 6,
    SecInstPcs = 7,
    SecInstActives = 8,
    SecInstDeps = 9,
    SecInstLineCounts = 10,
    SecLinePool = 11,
};

constexpr std::uint32_t numSections = 11;

const char *
sectionName(std::uint32_t id)
{
    switch (id) {
      case SecKernelName: return "kernel_name";
      case SecStaticOps: return "static_ops";
      case SecStaticLabels: return "static_labels";
      case SecWarpIds: return "warp_ids";
      case SecWarpBlocks: return "warp_blocks";
      case SecWarpInstCounts: return "warp_inst_counts";
      case SecInstPcs: return "inst_pcs";
      case SecInstActives: return "inst_actives";
      case SecInstDeps: return "inst_deps";
      case SecInstLineCounts: return "inst_line_counts";
      case SecLinePool: return "line_pool";
    }
    return "?";
}

/**
 * Fixed element width of a section, or 0 for byte-blob sections whose
 * size is not count * width (labels, varint-encoded pool).
 */
std::size_t
elementSize(std::uint32_t id, bool varint_pool)
{
    switch (id) {
      case SecKernelName:
      case SecStaticOps:
        return 1;
      case SecStaticLabels:
        return 0;
      case SecWarpIds:
      case SecWarpBlocks:
      case SecWarpInstCounts:
      case SecInstPcs:
      case SecInstActives:
      case SecInstLineCounts:
        return 4;
      case SecInstDeps:
        return sizeof(DepArray);
      case SecLinePool:
        return varint_pool ? 0 : sizeof(Addr);
    }
    return 0;
}

/** Error factory with byte-offset context (the binary twin of the
 * text parser's line numbers). */
Status
gmtError(StatusCode code, std::uint64_t offset, const std::string &why)
{
    return Status(code, msg("gmt offset ", offset, ": ", why));
}

// ---- varint / zigzag codec ------------------------------------------

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Delta + zigzag + varint encode the line pool. */
std::string
encodeLinePool(const std::vector<Addr> &pool)
{
    std::string out;
    out.reserve(pool.size() * 2);
    Addr prev = 0;
    for (Addr a : pool) {
        putVarint(out, zigzag(static_cast<std::int64_t>(a - prev)));
        prev = a;
    }
    return out;
}

// ---- byte sources ---------------------------------------------------

/**
 * Strictly-forward byte source shared by the mmap/buffer path and the
 * streaming path. pull() fills exactly @p n bytes or fails with
 * TruncatedInput at the current offset; the decoder layers chunking,
 * checksumming, and deadline checkpoints on top.
 */
class Source
{
  public:
    virtual ~Source() = default;

    /** Absolute offset of the next byte. */
    std::uint64_t offset() const { return pos; }

    Status
    pull(void *dst, std::size_t n)
    {
        GPUMECH_TRY(doPull(dst, n));
        pos += n;
        return Status();
    }

    /** Discard @p n bytes (inter-section alignment padding). */
    Status
    discard(std::size_t n)
    {
        std::uint8_t scratch[64];
        while (n > 0) {
            std::size_t step = std::min(n, sizeof(scratch));
            GPUMECH_TRY(pull(scratch, step));
            n -= step;
        }
        return Status();
    }

  protected:
    Status
    truncated(std::size_t wanted) const
    {
        return gmtError(StatusCode::TruncatedInput, pos,
                        msg("unexpected end of input (wanted ", wanted,
                            " more bytes)"));
    }

  private:
    virtual Status doPull(void *dst, std::size_t n) = 0;

    std::uint64_t pos = 0;
};

/** Whole-image source (an MmapFile or in-memory string). */
class MemSource : public Source
{
  public:
    MemSource(const void *data, std::size_t size)
        : cur(static_cast<const std::uint8_t *>(data)),
          end(cur + size)
    {}

  private:
    Status
    doPull(void *dst, std::size_t n) override
    {
        if (static_cast<std::size_t>(end - cur) < n)
            return truncated(n);
        std::memcpy(dst, cur, n);
        cur += n;
        return Status();
    }

    const std::uint8_t *cur;
    const std::uint8_t *end;
};

/** Sequential istream source (the no-mmap fallback). */
class StreamSource : public Source
{
  public:
    explicit StreamSource(std::istream &is) : is(is) {}

  private:
    Status
    doPull(void *dst, std::size_t n) override
    {
        is.read(static_cast<char *>(dst), static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(is.gcount()) != n)
            return truncated(n);
        return Status();
    }

    std::istream &is;
};

// ---- decoder --------------------------------------------------------

/** Decoded columns plus the payload offsets their errors should cite. */
struct Columns
{
    std::string name;
    std::vector<std::uint8_t> staticOps;
    std::string labelBlob;
    std::vector<std::uint32_t> warpIds;
    std::vector<std::uint32_t> warpBlocks;
    std::vector<std::uint32_t> warpCounts;
    std::vector<std::uint32_t> instPcs;
    std::vector<std::uint32_t> instActives;
    std::vector<DepArray> instDeps;
    std::vector<std::uint32_t> instLineCnts;
    std::vector<Addr> linePool;

    std::uint64_t offStaticOps = 0;
    std::uint64_t offWarps = 0;
    std::uint64_t offInsts = 0;
};

/**
 * Assemble a KernelTrace from decoded columns: split the label blob,
 * register the static program, and adopt the instruction columns
 * (KernelTrace recomputes the derivable arrays). The section offsets
 * in @p cols anchor every rejection to the bytes that caused it.
 */
Result<KernelTrace>
assemble(Columns &&cols)
{
    KernelTrace kernel(std::move(cols.name));

    // Static program: one opcode byte + one NUL-terminated label per
    // pc; the blob must hold exactly count labels with no leftover.
    std::size_t label_at = 0;
    for (std::size_t pc = 0; pc < cols.staticOps.size(); ++pc) {
        if (cols.staticOps[pc] >= numOpcodes) {
            return gmtError(StatusCode::NotFound, cols.offStaticOps,
                            msg("unknown opcode byte ",
                                unsigned(cols.staticOps[pc]),
                                " at static pc ", pc));
        }
        std::size_t nul = cols.labelBlob.find('\0', label_at);
        if (nul == std::string::npos) {
            return gmtError(StatusCode::ParseError, cols.offStaticOps,
                            msg("label blob ends inside the label of "
                                "static pc ", pc));
        }
        kernel.addStatic(static_cast<Opcode>(cols.staticOps[pc]),
                         cols.labelBlob.substr(label_at,
                                               nul - label_at));
        label_at = nul + 1;
    }
    if (label_at != cols.labelBlob.size()) {
        return gmtError(StatusCode::ParseError, cols.offStaticOps,
                        msg(cols.labelBlob.size() - label_at,
                            " trailing bytes after the last static "
                            "label"));
    }

    if (cols.warpIds.empty()) {
        return gmtError(StatusCode::OutOfRange, cols.offWarps,
                        "warp count must be positive");
    }

    Status adopted = kernel.adoptColumns(
        std::move(cols.warpIds), std::move(cols.warpBlocks),
        std::move(cols.warpCounts), std::move(cols.instPcs),
        std::move(cols.instActives), std::move(cols.instDeps),
        std::move(cols.instLineCnts), std::move(cols.linePool));
    if (!adopted.ok()) {
        return Status(adopted.code(),
                      msg("gmt offset ", cols.offInsts, ": ",
                          adopted.message()));
    }
    if (!kernel.validate()) {
        return gmtError(StatusCode::FailedValidation, cols.offInsts,
                        msg("kernel '", kernel.name(),
                            "' failed structural validation"));
    }
    return kernel;
}

/**
 * The format decoder, shared by the buffer and stream paths: walks a
 * strictly-forward Source in bounded chunks, verifying checksums as
 * bytes arrive and calling deadlineCheckpoint() between chunks.
 */
class Decoder
{
  public:
    Decoder(Source &src, std::size_t chunk_bytes)
        : src(src), chunkBytes(std::max<std::size_t>(chunk_bytes, 4096))
    {}

    Result<KernelTrace>
    run()
    {
        evalCheckpoint(FaultSite::Parse);
        Span span("gmt-load");
        bool measure = Metrics::enabled();
        std::uint64_t t0 = measure ? monotonicNowNs() : 0;

        GPUMECH_TRY(readHeader());
        GPUMECH_TRY(readTable());
        Columns cols;
        GPUMECH_TRY(readPayloads(cols));
        Result<KernelTrace> kernel = assemble(std::move(cols));
        if (kernel.ok() && measure) {
            gmtMetrics().bytes.add(src.offset());
            gmtMetrics().sections.add(numSections);
            gmtMetrics().loadMs.observe(
                static_cast<double>(monotonicNowNs() - t0) / 1e6);
        }
        return kernel;
    }

  private:
    Status
    readHeader()
    {
        FileHeader hdr;
        Status pulled = src.pull(&hdr, sizeof(hdr));
        if (!pulled.ok()) {
            return gmtError(StatusCode::TruncatedInput, 0,
                            "file shorter than the .gmt header");
        }
        if (std::memcmp(hdr.magic, gmtMagic, sizeof(gmtMagic)) != 0) {
            return gmtError(StatusCode::ParseError, 0,
                            "bad magic (not a .gmt trace)");
        }
        if (hdr.endianTag != gmtEndianTag) {
            // The swapped tag means a foreign-endian writer; anything
            // else is corruption.
            std::uint16_t swapped = static_cast<std::uint16_t>(
                (gmtEndianTag >> 8) | (gmtEndianTag << 8));
            if (hdr.endianTag == swapped) {
                return gmtError(StatusCode::VersionMismatch, 4,
                                "foreign endianness (file written on "
                                "an opposite-endian machine)");
            }
            return gmtError(StatusCode::ParseError, 4,
                            msg("bad endianness tag 0x", std::hex,
                                hdr.endianTag));
        }
        if (hdr.version != gmtVersion) {
            return gmtError(StatusCode::VersionMismatch, 4,
                            msg("format version ", hdr.version,
                                " (this reader handles version ",
                                gmtVersion, ")"));
        }
        char expect_layout[8] = {};
        std::memcpy(expect_layout, traceLayoutToken,
                    std::min(sizeof(expect_layout),
                             std::strlen(traceLayoutToken)));
        if (std::memcmp(hdr.layout, expect_layout,
                        sizeof(expect_layout)) != 0) {
            return gmtError(
                StatusCode::VersionMismatch, 8,
                msg("trace layout generation '",
                    std::string(hdr.layout,
                                strnlen(hdr.layout, sizeof(hdr.layout))),
                    "' (this engine is '", traceLayoutToken, "')"));
        }
        if ((hdr.flags & ~gmtFlagVarintLines) != 0) {
            return gmtError(StatusCode::ParseError, 16,
                            msg("unknown flag bits 0x", std::hex,
                                (hdr.flags & ~gmtFlagVarintLines)));
        }
        varintPool = (hdr.flags & gmtFlagVarintLines) != 0;
        if (hdr.sectionCount > 64) {
            return gmtError(StatusCode::Overflow, 20,
                            msg("section count ", hdr.sectionCount,
                                " exceeds the sane cap (64)"));
        }
        sectionCount = hdr.sectionCount;
        tableChecksum = hdr.tableChecksum;
        return Status();
    }

    Status
    readTable()
    {
        std::uint64_t table_off = src.offset();
        std::vector<SectionEntry> table(sectionCount);
        if (sectionCount > 0) {
            Status pulled = src.pull(table.data(),
                                     sectionCount * sizeof(SectionEntry));
            if (!pulled.ok()) {
                return gmtError(StatusCode::TruncatedInput, table_off,
                                "file ends inside the section table");
            }
        }
        if (fnv1a(table.data(), sectionCount * sizeof(SectionEntry)) !=
            tableChecksum) {
            return gmtError(StatusCode::ChecksumMismatch, table_off,
                            "section table fails its checksum");
        }

        std::uint64_t prev_end = src.offset();
        bool seen[numSections + 1] = {};
        for (std::size_t i = 0; i < table.size(); ++i) {
            const SectionEntry &e = table[i];
            std::uint64_t entry_off =
                table_off + i * sizeof(SectionEntry);
            if (e.id < 1 || e.id > numSections) {
                return gmtError(StatusCode::ParseError, entry_off,
                                msg("unknown section id ", e.id));
            }
            if (seen[e.id]) {
                return gmtError(StatusCode::DuplicateHeader, entry_off,
                                msg("duplicate section '",
                                    sectionName(e.id), "'"));
            }
            seen[e.id] = true;
            if (e.reserved != 0) {
                return gmtError(StatusCode::ParseError, entry_off,
                                "nonzero reserved field");
            }
            if (e.count > maxRecordCount) {
                return gmtError(StatusCode::Overflow, entry_off,
                                msg("section '", sectionName(e.id),
                                    "' count ", e.count,
                                    " exceeds the record cap (",
                                    maxRecordCount, ")"));
            }
            if (e.offset < prev_end) {
                return gmtError(StatusCode::ParseError, entry_off,
                                msg("section '", sectionName(e.id),
                                    "' overlaps the preceding bytes"));
            }
            if (e.size > (std::uint64_t(1) << 40) ||
                e.offset + e.size < e.offset) {
                return gmtError(StatusCode::Overflow, entry_off,
                                msg("section '", sectionName(e.id),
                                    "' extent overflows"));
            }
            std::size_t elem = elementSize(e.id, varintPool);
            if (elem != 0 && e.size != e.count * elem) {
                return gmtError(StatusCode::ParseError, entry_off,
                                msg("section '", sectionName(e.id),
                                    "' size ", e.size,
                                    " disagrees with count ", e.count,
                                    " (", elem, "-byte elements)"));
            }
            if (e.id == SecKernelName && e.size != e.count) {
                return gmtError(StatusCode::ParseError, entry_off,
                                "kernel name size/count disagree");
            }
            prev_end = e.offset + e.size;
        }
        for (std::uint32_t id = 1; id <= numSections; ++id) {
            if (!seen[id]) {
                return gmtError(StatusCode::ParseError, table_off,
                                msg("missing section '",
                                    sectionName(id), "'"));
            }
        }
        // Cross-section count agreement, checked before any payload
        // byte is read so shape lies fail fast.
        auto count_of = [&](std::uint32_t id) {
            for (const SectionEntry &e : table)
                if (e.id == id)
                    return e.count;
            return std::uint64_t(0);
        };
        if (count_of(SecStaticOps) != count_of(SecStaticLabels)) {
            return gmtError(StatusCode::ParseError, table_off,
                            "static op/label counts disagree");
        }
        if (count_of(SecWarpIds) != count_of(SecWarpBlocks) ||
            count_of(SecWarpIds) != count_of(SecWarpInstCounts)) {
            return gmtError(StatusCode::ParseError, table_off,
                            "warp column counts disagree");
        }
        std::uint64_t insts = count_of(SecInstPcs);
        if (count_of(SecInstActives) != insts ||
            count_of(SecInstDeps) != insts ||
            count_of(SecInstLineCounts) != insts) {
            return gmtError(StatusCode::ParseError, table_off,
                            "instruction column counts disagree");
        }

        sections = std::move(table);
        std::sort(sections.begin(), sections.end(),
                  [](const SectionEntry &a, const SectionEntry &b) {
                      return a.offset < b.offset;
                  });
        return Status();
    }

    /**
     * Pull @p size payload bytes into @p dst in bounded chunks,
     * checksumming as they arrive and yielding to the deadline
     * watchdog between chunks.
     */
    Status
    pullChecked(void *dst, std::uint64_t size, const SectionEntry &e)
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        std::uint64_t done = 0;
        std::uint64_t hash = fnvOffset;
        while (done < size) {
            deadlineCheckpoint();
            std::size_t step = static_cast<std::size_t>(
                std::min<std::uint64_t>(chunkBytes, size - done));
            GPUMECH_TRY(src.pull(out + done, step));
            hash = fnv1a(out + done, step, hash);
            done += step;
        }
        if (hash != e.checksum) {
            return gmtError(StatusCode::ChecksumMismatch, e.offset,
                            msg("section '", sectionName(e.id),
                                "' fails its checksum"));
        }
        return Status();
    }

    /** Chunked varint-delta decode of the line pool. */
    Status
    decodeVarintPool(std::vector<Addr> &pool, const SectionEntry &e)
    {
        pool.clear();
        pool.reserve(static_cast<std::size_t>(e.count));
        std::vector<std::uint8_t> buf;
        std::size_t have = 0;   //!< valid bytes in buf
        std::size_t at = 0;     //!< decode cursor in buf
        std::uint64_t remaining = e.size;
        std::uint64_t hash = fnvOffset;
        Addr prev = 0;

        while (pool.size() < e.count) {
            // Refill: keep undecoded carry bytes, append a chunk.
            if (have - at < 10 && remaining > 0) {
                deadlineCheckpoint();
                std::copy(buf.begin() + at, buf.begin() + have,
                          buf.begin());
                have -= at;
                at = 0;
                std::size_t step = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chunkBytes, remaining));
                buf.resize(have + step);
                GPUMECH_TRY(src.pull(buf.data() + have, step));
                hash = fnv1a(buf.data() + have, step, hash);
                have += step;
                remaining -= step;
            }
            // Decode one varint.
            std::uint64_t v = 0;
            unsigned shift = 0;
            bool done = false;
            while (at < have) {
                std::uint8_t byte = buf[at++];
                if (shift == 63 && byte > 1) {
                    return gmtError(StatusCode::Overflow, e.offset,
                                    "varint exceeds 64 bits");
                }
                v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
                if ((byte & 0x80) == 0) {
                    done = true;
                    break;
                }
                shift += 7;
                if (shift > 63) {
                    return gmtError(StatusCode::Overflow, e.offset,
                                    "varint exceeds 64 bits");
                }
            }
            if (!done) {
                return gmtError(StatusCode::TruncatedInput,
                                e.offset + e.size,
                                msg("line pool ends inside a varint "
                                    "(decoded ", pool.size(), " of ",
                                    e.count, " addresses)"));
            }
            prev += static_cast<Addr>(unzigzag(v));
            pool.push_back(prev);
        }
        if (at != have || remaining != 0) {
            return gmtError(StatusCode::ParseError, e.offset,
                            msg("line pool has trailing bytes after ",
                                e.count, " addresses"));
        }
        if (hash != e.checksum) {
            return gmtError(StatusCode::ChecksumMismatch, e.offset,
                            "section 'line_pool' fails its checksum");
        }
        return Status();
    }

    template <typename T>
    Status
    pullColumn(std::vector<T> &out, const SectionEntry &e)
    {
        out.resize(static_cast<std::size_t>(e.count));
        return pullChecked(out.data(), e.size, e);
    }

    Status
    readPayloads(Columns &cols)
    {
        for (const SectionEntry &e : sections) {
            // Skip inter-section alignment padding.
            if (e.offset > src.offset()) {
                GPUMECH_TRY(src.discard(static_cast<std::size_t>(
                    e.offset - src.offset())));
            }
            switch (e.id) {
              case SecKernelName:
                cols.name.resize(static_cast<std::size_t>(e.count));
                GPUMECH_TRY(pullChecked(cols.name.data(), e.size, e));
                break;
              case SecStaticOps:
                cols.offStaticOps = e.offset;
                GPUMECH_TRY(pullColumn(cols.staticOps, e));
                break;
              case SecStaticLabels:
                cols.labelBlob.resize(static_cast<std::size_t>(e.size));
                GPUMECH_TRY(pullChecked(cols.labelBlob.data(), e.size,
                                        e));
                break;
              case SecWarpIds:
                cols.offWarps = e.offset;
                GPUMECH_TRY(pullColumn(cols.warpIds, e));
                break;
              case SecWarpBlocks:
                GPUMECH_TRY(pullColumn(cols.warpBlocks, e));
                break;
              case SecWarpInstCounts:
                GPUMECH_TRY(pullColumn(cols.warpCounts, e));
                break;
              case SecInstPcs:
                cols.offInsts = e.offset;
                GPUMECH_TRY(pullColumn(cols.instPcs, e));
                break;
              case SecInstActives:
                GPUMECH_TRY(pullColumn(cols.instActives, e));
                break;
              case SecInstDeps:
                GPUMECH_TRY(pullColumn(cols.instDeps, e));
                break;
              case SecInstLineCounts:
                GPUMECH_TRY(pullColumn(cols.instLineCnts, e));
                break;
              case SecLinePool:
                if (varintPool) {
                    GPUMECH_TRY(decodeVarintPool(cols.linePool, e));
                } else {
                    GPUMECH_TRY(pullColumn(cols.linePool, e));
                }
                break;
            }
        }
        return Status();
    }

    Source &src;
    std::size_t chunkBytes;
    bool varintPool = false;
    std::uint32_t sectionCount = 0;
    std::uint64_t tableChecksum = 0;
    std::vector<SectionEntry> sections;
};

} // namespace

// ---- writer ---------------------------------------------------------

namespace
{

/** One section staged for writing. */
struct Staged
{
    std::uint32_t id;
    const void *data;
    std::uint64_t size;
    std::uint64_t count;
    std::string owned; //!< backs @p data for built (non-borrowed) payloads
};

std::uint64_t
alignUp(std::uint64_t v)
{
    return (v + 7) & ~std::uint64_t(7);
}

} // namespace

bool
looksLikeGmt(const void *data, std::size_t size)
{
    return size >= sizeof(gmtMagic) &&
           std::memcmp(data, gmtMagic, sizeof(gmtMagic)) == 0;
}

void
writeGmt(std::ostream &os, const KernelTrace &kernel,
         const GmtWriteOptions &options)
{
    Span span("pack", kernel.name());

    // Built payloads (the borrowed ones point straight at the trace's
    // own columns).
    std::string static_ops;
    std::string labels;
    static_ops.reserve(kernel.numStaticInsts());
    for (const StaticInst &si : kernel.staticInsts()) {
        static_ops.push_back(static_cast<char>(si.op));
        labels.append(si.label);
        labels.push_back('\0');
    }
    std::vector<std::uint32_t> warp_ids, warp_blocks, warp_counts;
    warp_ids.reserve(kernel.numWarps());
    warp_blocks.reserve(kernel.numWarps());
    warp_counts.reserve(kernel.numWarps());
    for (WarpView w : kernel.warps()) {
        warp_ids.push_back(w.warpId());
        warp_blocks.push_back(w.blockId());
        warp_counts.push_back(
            static_cast<std::uint32_t>(w.numInsts()));
    }

    std::vector<Staged> staged;
    // Entries point into their own `owned` strings (SSO), so the
    // vector must never reallocate once populated.
    staged.reserve(numSections);
    auto borrow = [&](std::uint32_t id, const void *data,
                      std::uint64_t size, std::uint64_t count) {
        staged.push_back(Staged{id, data, size, count, {}});
    };
    auto own = [&](std::uint32_t id, std::string bytes,
                   std::uint64_t count) {
        staged.push_back(Staged{id, nullptr, bytes.size(), count,
                                std::move(bytes)});
        staged.back().data = staged.back().owned.data();
    };

    const std::string &name = kernel.name();
    borrow(SecKernelName, name.data(), name.size(), name.size());
    own(SecStaticOps, std::move(static_ops), kernel.numStaticInsts());
    own(SecStaticLabels, std::move(labels), kernel.numStaticInsts());
    borrow(SecWarpIds, warp_ids.data(), warp_ids.size() * 4,
           warp_ids.size());
    borrow(SecWarpBlocks, warp_blocks.data(), warp_blocks.size() * 4,
           warp_blocks.size());
    borrow(SecWarpInstCounts, warp_counts.data(),
           warp_counts.size() * 4, warp_counts.size());
    borrow(SecInstPcs, kernel.instPcs().data(),
           kernel.instPcs().size() * 4, kernel.instPcs().size());
    borrow(SecInstActives, kernel.instActives().data(),
           kernel.instActives().size() * 4,
           kernel.instActives().size());
    borrow(SecInstDeps, kernel.instDeps().data(),
           kernel.instDeps().size() * sizeof(DepArray),
           kernel.instDeps().size());
    borrow(SecInstLineCounts, kernel.instLineCounts().data(),
           kernel.instLineCounts().size() * 4,
           kernel.instLineCounts().size());
    if (options.varintLines) {
        own(SecLinePool, encodeLinePool(kernel.linePool()),
            kernel.linePool().size());
    } else {
        borrow(SecLinePool, kernel.linePool().data(),
               kernel.linePool().size() * sizeof(Addr),
               kernel.linePool().size());
    }

    // Lay out payloads after the table, 8-byte aligned.
    std::vector<SectionEntry> table(staged.size());
    std::uint64_t cursor =
        sizeof(FileHeader) + staged.size() * sizeof(SectionEntry);
    for (std::size_t i = 0; i < staged.size(); ++i) {
        cursor = alignUp(cursor);
        table[i].id = staged[i].id;
        table[i].reserved = 0;
        table[i].offset = cursor;
        table[i].size = staged[i].size;
        table[i].count = staged[i].count;
        table[i].checksum = fnv1a(staged[i].data, staged[i].size);
        cursor += staged[i].size;
    }

    FileHeader hdr = {};
    std::memcpy(hdr.magic, gmtMagic, sizeof(gmtMagic));
    hdr.version = gmtVersion;
    hdr.endianTag = gmtEndianTag;
    std::memcpy(hdr.layout, traceLayoutToken,
                std::min(sizeof(hdr.layout),
                         std::strlen(traceLayoutToken)));
    hdr.flags = options.varintLines ? gmtFlagVarintLines : 0;
    hdr.sectionCount = static_cast<std::uint32_t>(staged.size());
    hdr.tableChecksum =
        fnv1a(table.data(), table.size() * sizeof(SectionEntry));

    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(table.data()),
             static_cast<std::streamsize>(table.size() *
                                          sizeof(SectionEntry)));
    std::uint64_t written =
        sizeof(FileHeader) + table.size() * sizeof(SectionEntry);
    static const char zeros[8] = {};
    for (std::size_t i = 0; i < staged.size(); ++i) {
        std::uint64_t pad = table[i].offset - written;
        if (pad > 0)
            os.write(zeros, static_cast<std::streamsize>(pad));
        if (staged[i].size > 0) {
            os.write(static_cast<const char *>(staged[i].data),
                     static_cast<std::streamsize>(staged[i].size));
        }
        written = table[i].offset + staged[i].size;
    }
}

std::string
gmtToString(const KernelTrace &kernel, const GmtWriteOptions &options)
{
    std::ostringstream os;
    writeGmt(os, kernel, options);
    return os.str();
}

Result<KernelTrace>
parseGmtBuffer(const void *data, std::size_t size)
{
    MemSource src(data, size);
    Decoder decoder(src, std::size_t(1) << 22);
    return decoder.run();
}

Result<KernelTrace>
parseGmtString(const std::string &bytes)
{
    return parseGmtBuffer(bytes.data(), bytes.size());
}

GmtChunkedReader::GmtChunkedReader(std::istream &is,
                                   std::size_t chunk_bytes)
    : is(is), chunkBytes(chunk_bytes)
{}

Result<KernelTrace>
GmtChunkedReader::read()
{
    StreamSource src(is);
    Decoder decoder(src, chunkBytes);
    return decoder.run();
}

} // namespace gpumech
