#include "trace/coalescer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

void
coalesce(const std::vector<Addr> &addrs, std::uint32_t line_bytes,
         std::vector<Addr> &out)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        panic("coalesce: line size must be a power of two");
    out.clear();
    out.reserve(addrs.size());
    Addr mask = ~static_cast<Addr>(line_bytes - 1);
    for (Addr a : addrs)
        out.push_back(a & mask);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<Addr>
coalesce(const std::vector<Addr> &addrs, std::uint32_t line_bytes)
{
    std::vector<Addr> lines;
    coalesce(addrs, line_bytes, lines);
    return lines;
}

std::uint32_t
coalescedCount(const std::vector<Addr> &addrs, std::uint32_t line_bytes)
{
    return static_cast<std::uint32_t>(coalesce(addrs, line_bytes).size());
}

} // namespace gpumech
