#include "trace/coalescer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

std::vector<Addr>
coalesce(const std::vector<Addr> &addrs, std::uint32_t line_bytes)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        panic("coalesce: line size must be a power of two");
    std::vector<Addr> lines;
    lines.reserve(addrs.size());
    Addr mask = ~static_cast<Addr>(line_bytes - 1);
    for (Addr a : addrs)
        lines.push_back(a & mask);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

std::uint32_t
coalescedCount(const std::vector<Addr> &addrs, std::uint32_t line_bytes)
{
    return static_cast<std::uint32_t>(coalesce(addrs, line_bytes).size());
}

} // namespace gpumech
