/**
 * @file
 * Plain-text kernel trace serialization.
 *
 * The on-disk format lets traces be produced once (the paper's
 * "per-input-basis" profiling) and re-consumed across hardware
 * configuration sweeps, and makes traces inspectable in tests.
 *
 * Parsing returns Status instead of dying: a batch service feeding
 * thousands of on-disk traces through the model must degrade one
 * malformed file to one failed kernel. Each malformed-input class
 * maps to a distinct StatusCode with the 1-based line number in the
 * message:
 *
 *   TruncatedInput  input ends mid-record
 *   ParseError      non-numeric field / unexpected keyword
 *   NotFound        unknown opcode mnemonic
 *   Overflow        numeric field exceeds its type or the record cap
 *   OutOfRange      negative count, zero warp/instruction count,
 *                   instruction pc >= static count, non-sequential pcs
 *   DuplicateHeader second 'kernel' header inside one trace
 *   FailedValidation parsed structure fails KernelTrace::validate()
 */

#ifndef GPUMECH_TRACE_TRACE_IO_HH
#define GPUMECH_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Write a kernel trace in the text format. */
void writeTrace(std::ostream &os, const KernelTrace &kernel);

/** Parse a kernel trace from the text format (Status-returning). */
Result<KernelTrace> parseTrace(std::istream &is);

/** Convenience: parse from a string. */
Result<KernelTrace> parseTraceString(const std::string &text);

/**
 * CLI-level wrapper around parseTrace: fatal() on malformed input.
 * Library code should call parseTrace and propagate the Status.
 */
KernelTrace readTrace(std::istream &is);

/** CLI-level wrapper around parseTraceString; fatal on error. */
KernelTrace traceFromString(const std::string &text);

/** Convenience: serialize to a string. */
std::string traceToString(const KernelTrace &kernel);

/**
 * Load a trace file of either format, detected by content: files
 * beginning with the .gmt magic decode through the binary columnar
 * loader, anything else parses as text. Both paths read the file
 * through one MmapFile (mmap where available, buffered fallback
 * otherwise), so binary loads are column copies out of the page cache
 * with no read loop. Errors follow the per-format contracts: the
 * binary classes above plus NotFound for a missing path.
 */
Result<KernelTrace> loadTraceFile(const std::string &path);

/**
 * Write @p kernel to @p path, choosing the format by extension:
 * ".gmt" writes the binary columnar format (with varint line-pool
 * encoding when @p varint_lines is set), anything else writes text
 * (@p varint_lines is then ignored). Internal on I/O failure.
 */
Status writeTraceFile(const std::string &path,
                      const KernelTrace &kernel,
                      bool varint_lines = false);

/** True when @p path names the binary format by extension (".gmt"). */
bool hasGmtExtension(const std::string &path);

} // namespace gpumech

#endif // GPUMECH_TRACE_TRACE_IO_HH
