/**
 * @file
 * Plain-text kernel trace serialization.
 *
 * The on-disk format lets traces be produced once (the paper's
 * "per-input-basis" profiling) and re-consumed across hardware
 * configuration sweeps, and makes traces inspectable in tests.
 */

#ifndef GPUMECH_TRACE_TRACE_IO_HH
#define GPUMECH_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Write a kernel trace in the text format. */
void writeTrace(std::ostream &os, const KernelTrace &kernel);

/**
 * Parse a kernel trace from the text format.
 *
 * Calls fatal() on malformed input.
 */
KernelTrace readTrace(std::istream &is);

/** Convenience: serialize to a string. */
std::string traceToString(const KernelTrace &kernel);

/** Convenience: parse from a string. */
KernelTrace traceFromString(const std::string &text);

} // namespace gpumech

#endif // GPUMECH_TRACE_TRACE_IO_HH
