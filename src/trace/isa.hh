/**
 * @file
 * Abstract SIMT instruction set.
 *
 * The models and simulators only care about an instruction's latency
 * class and whether it goes through the global-memory hierarchy, so
 * the ISA is a small set of opcode classes rather than a full PTX
 * decoder (the paper's GPUOcelot traces are reduced to exactly this
 * information).
 */

#ifndef GPUMECH_TRACE_ISA_HH
#define GPUMECH_TRACE_ISA_HH

#include <cstdint>
#include <string>

#include "common/config.hh"

namespace gpumech
{

/** Opcode classes of the abstract SIMT ISA. */
enum class Opcode : std::uint8_t
{
    IntAlu,      //!< integer arithmetic / logic
    FpAlu,       //!< normal floating-point arithmetic
    Sfu,         //!< special function unit (transcendental)
    Branch,      //!< control instruction
    SharedLoad,  //!< software-managed (shared) memory load
    SharedStore, //!< software-managed (shared) memory store
    GlobalLoad,  //!< global-memory load (through L1/L2/DRAM)
    GlobalStore, //!< global-memory store (write-through to DRAM)
};

/** Number of distinct opcodes (for table sizing). */
constexpr std::uint32_t numOpcodes = 8;

/** True for loads and stores of any memory space. */
bool isMemory(Opcode op);

/** True for global-memory operations (the ones seen by the caches). */
bool isGlobalMemory(Opcode op);

/** True for GlobalLoad / SharedLoad. */
bool isLoad(Opcode op);

/** True for GlobalStore / SharedStore. */
bool isStore(Opcode op);

/**
 * Fixed latency of a non-global-memory opcode from the configuration's
 * latency table. Calling this with a global-memory opcode is a
 * programming error (their latency comes from the cache model).
 */
std::uint32_t fixedLatency(Opcode op, const LatencyTable &table);

/** Mnemonic string for an opcode. */
std::string toString(Opcode op);

/** Parse a mnemonic produced by toString(); fatal on unknown input. */
Opcode opcodeFromString(const std::string &name);

/**
 * Non-fatal mnemonic lookup: true and sets @p op on success. The
 * trace parser uses this so an unknown mnemonic becomes a returned
 * Status instead of process death.
 */
bool tryOpcodeFromString(const std::string &name, Opcode &op);

} // namespace gpumech

#endif // GPUMECH_TRACE_ISA_HH
