/**
 * @file
 * Per-warp dynamic instruction trace.
 *
 * This is the unit of input the paper's input collector produces per
 * warp: the sequence of executed warp-instructions tagged with
 * dependency information (Section V-A) and, for global-memory
 * instructions, the coalesced line requests.
 *
 * Layout: WarpInst is a fixed-size POD. A memory instruction does not
 * own its line addresses; it carries an (offset, count) slice into an
 * Addr arena. During construction the arena is the owning WarpTrace's
 * linePool; once the warp is handed to a KernelTrace, the pool is
 * absorbed into the kernel-level arena and the slices are rebased
 * (see kernel_trace.hh). This removes one heap allocation plus ~3
 * pointers of header per dynamic memory instruction compared to the
 * old embedded std::vector<Addr> and makes every hot loop walk dense
 * arrays.
 */

#ifndef GPUMECH_TRACE_WARP_TRACE_HH
#define GPUMECH_TRACE_WARP_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/coalescer.hh"
#include "trace/isa.hh"

namespace gpumech
{

/** Sentinel for an absent dependency slot. */
constexpr std::int32_t noDep = -1;

/** The (up to three) backward dependency slots of one instruction. */
using DepArray = std::array<std::int32_t, 3>;

/**
 * Non-owning view of one instruction's coalesced line requests: a
 * slice of some Addr arena (a WarpTrace's local pool or the
 * kernel-level pool).
 */
struct LineSpan
{
    const Addr *ptr = nullptr;
    std::uint32_t count = 0;

    const Addr *begin() const { return ptr; }
    const Addr *end() const { return ptr + count; }
    std::uint32_t size() const { return count; }
    bool empty() const { return count == 0; }
    Addr operator[](std::uint32_t i) const { return ptr[i]; }

    std::vector<Addr>
    toVector() const
    {
        return std::vector<Addr>(begin(), end());
    }
};

inline bool
operator==(const LineSpan &a, const LineSpan &b)
{
    if (a.count != b.count)
        return false;
    for (std::uint32_t i = 0; i < a.count; ++i) {
        if (a.ptr[i] != b.ptr[i])
            return false;
    }
    return true;
}

inline bool
operator==(const LineSpan &a, const std::vector<Addr> &b)
{
    return a == LineSpan{b.data(), static_cast<std::uint32_t>(b.size())};
}

/**
 * One dynamic warp-instruction (fixed-size POD).
 *
 * Dependencies point backwards into the owning warp's trace (index of
 * the producing instruction). Only intra-warp register dependencies
 * exist in the SIMT model; memory ordering is not a dependence.
 */
struct WarpInst
{
    /** Static-instruction (PC) identifier within the kernel. */
    std::uint32_t pc = 0;

    /** Opcode class. */
    Opcode op = Opcode::IntAlu;

    /** Number of active threads executing this instruction. */
    std::uint32_t activeThreads = 0;

    /**
     * Up to three register dependencies (enough for FMA-style
     * three-source instructions): indices of the producing
     * instructions in the same warp trace, or noDep.
     */
    DepArray deps = {noDep, noDep, noDep};

    /**
     * Slice of the owning arena holding this instruction's coalesced
     * line requests (global-memory instructions only). lineCount is
     * the instruction's memory divergence degree (1 = fully coalesced,
     * up to warpSize); compute instructions have lineCount == 0.
     */
    std::uint32_t lineOffset = 0;
    std::uint32_t lineCount = 0;

    /** Number of memory requests this instruction issues. */
    std::uint32_t numRequests() const { return lineCount; }
};

/**
 * Dynamic trace of one warp plus its CTA (thread block) identity.
 *
 * This is the construction-side representation: workload generators
 * and the trace reader build WarpTraces (instructions plus a local
 * line arena) and hand them to KernelTrace::addWarp, which flattens
 * them into the kernel-level SoA storage.
 */
struct WarpTrace
{
    std::uint32_t warpId = 0;  //!< kernel-global warp index
    std::uint32_t blockId = 0; //!< owning thread block
    std::vector<WarpInst> insts;
    std::vector<Addr> linePool; //!< arena for all insts' line slices

    /** Pre-size the instruction array and line arena (size hints). */
    void
    reserve(std::size_t num_insts, std::size_t num_lines)
    {
        insts.reserve(num_insts);
        linePool.reserve(num_lines);
    }

    /**
     * Append a non-memory instruction (lineCount must be 0).
     *
     * @return the new instruction's trace index
     */
    std::int32_t addInst(const WarpInst &inst);

    /**
     * Append a memory instruction, copying its coalesced lines into
     * the local arena and recording the slice.
     *
     * @return the new instruction's trace index
     */
    std::int32_t addMemInst(WarpInst inst, const Addr *lines,
                            std::uint32_t num_lines);

    /** Lines of an instruction owned by this trace. */
    LineSpan
    linesOf(const WarpInst &inst) const
    {
        return LineSpan{linePool.data() + inst.lineOffset,
                        inst.lineCount};
    }

    std::size_t numInsts() const { return insts.size(); }

    /** Count of global-memory instructions. */
    std::size_t numGlobalMemInsts() const;

    /** Total global-memory requests over the whole trace. */
    std::size_t numGlobalMemRequests() const;

    /**
     * Check structural invariants: dependency indices point strictly
     * backwards, global-memory instructions have at least one line
     * request and non-memory instructions have none, and every line
     * slice lies inside the local arena.
     *
     * @return true when the trace is well formed
     */
    bool validate() const;
};

} // namespace gpumech

#endif // GPUMECH_TRACE_WARP_TRACE_HH
