/**
 * @file
 * Per-warp dynamic instruction trace.
 *
 * This is the unit of input the paper's input collector produces per
 * warp: the sequence of executed warp-instructions tagged with
 * dependency information (Section V-A) and, for global-memory
 * instructions, the coalesced line requests.
 */

#ifndef GPUMECH_TRACE_WARP_TRACE_HH
#define GPUMECH_TRACE_WARP_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/coalescer.hh"
#include "trace/isa.hh"

namespace gpumech
{

/** Sentinel for an absent dependency slot. */
constexpr std::int32_t noDep = -1;

/**
 * One dynamic warp-instruction.
 *
 * Dependencies point backwards into the owning warp's trace (index of
 * the producing instruction). Only intra-warp register dependencies
 * exist in the SIMT model; memory ordering is not a dependence.
 */
struct WarpInst
{
    /** Static-instruction (PC) identifier within the kernel. */
    std::uint32_t pc = 0;

    /** Opcode class. */
    Opcode op = Opcode::IntAlu;

    /** Number of active threads executing this instruction. */
    std::uint32_t activeThreads = 0;

    /**
     * Up to three register dependencies (enough for FMA-style
     * three-source instructions): indices of the producing
     * instructions in the same warp trace, or noDep.
     */
    std::array<std::int32_t, 3> deps = {noDep, noDep, noDep};

    /**
     * Coalesced line requests (global-memory instructions only). The
     * size of this vector is the instruction's memory divergence
     * degree (1 = fully coalesced, up to warpSize).
     */
    std::vector<Addr> lines;

    /** Number of memory requests this instruction issues. */
    std::uint32_t
    numRequests() const
    {
        return static_cast<std::uint32_t>(lines.size());
    }
};

/** Dynamic trace of one warp plus its CTA (thread block) identity. */
struct WarpTrace
{
    std::uint32_t warpId = 0;  //!< kernel-global warp index
    std::uint32_t blockId = 0; //!< owning thread block
    std::vector<WarpInst> insts;

    std::size_t numInsts() const { return insts.size(); }

    /** Count of global-memory instructions. */
    std::size_t numGlobalMemInsts() const;

    /** Total global-memory requests over the whole trace. */
    std::size_t numGlobalMemRequests() const;

    /**
     * Check structural invariants: dependency indices point strictly
     * backwards, global-memory instructions have at least one line
     * request and non-memory instructions have none.
     *
     * @return true when the trace is well formed
     */
    bool validate() const;
};

} // namespace gpumech

#endif // GPUMECH_TRACE_WARP_TRACE_HH
