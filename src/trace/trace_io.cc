#include "trace/trace_io.hh"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/mmap_file.hh"
#include "common/trace_span.hh"
#include "trace/gmt_format.hh"

namespace gpumech
{

namespace
{

/**
 * Parser throughput accounting (no-ops while metrics are disabled):
 * lines and bytes consumed by successful parses, plus a per-parse
 * MB/s histogram so ingestion regressions show up in --metrics.
 */
struct ParseMetrics
{
    Counter lines{"parse.lines"};
    Counter bytes{"parse.bytes"};
    Histogram mbPerS{"parse.mb_per_s"};
};

ParseMetrics &
parseMetrics()
{
    static ParseMetrics m;
    return m;
}

/**
 * Record-count cap. Counts above it are rejected as Overflow before
 * any allocation happens, so a corrupt header cannot OOM the process
 * by promising 10^18 instructions (the fuzz smoke loop exercises
 * exactly this class).
 */
constexpr std::uint64_t maxRecordCount = 1ull << 31;

/**
 * Whitespace tokenizer with 1-based line tracking. Reads the stream
 * line by line so every token (and therefore every parse error)
 * carries the line it came from.
 */
class Tokenizer
{
  public:
    explicit Tokenizer(std::istream &is) : is(is) {}

    /** Line of the most recently returned token (1-based). */
    std::size_t line() const { return lineNo; }

    /** Bytes consumed so far (line text + one newline per line). */
    std::uint64_t bytes() const { return bytesRead; }

    /**
     * Next whitespace-delimited token; TruncatedInput with @p context
     * when the stream is exhausted.
     */
    Status
    next(std::string &tok, const char *context)
    {
        while (cursor >= tokens.size()) {
            std::string text;
            if (!std::getline(is, text)) {
                return Status(
                    StatusCode::TruncatedInput,
                    msg("trace line ", lineNo,
                        ": unexpected end of input in ", context));
            }
            ++lineNo;
            bytesRead += text.size() + 1;
            tokens.clear();
            cursor = 0;
            std::istringstream split(text);
            std::string piece;
            while (split >> piece)
                tokens.push_back(piece);
        }
        tok = tokens[cursor++];
        return Status();
    }

  private:
    std::istream &is;
    std::vector<std::string> tokens;
    std::size_t cursor = 0;
    std::size_t lineNo = 0;
    std::uint64_t bytesRead = 0;
};

/** Error factory with line context. */
Status
parseError(StatusCode code, std::size_t line, const std::string &why)
{
    return Status(code, msg("trace line ", line, ": ", why));
}

/**
 * Parse an unsigned field. Distinct failures: ParseError (not a
 * number), OutOfRange (negative), Overflow (exceeds T or @p cap).
 */
template <typename T>
Status
parseUnsigned(Tokenizer &toks, T &out, const char *context,
              std::uint64_t cap = std::numeric_limits<T>::max())
{
    std::string tok;
    GPUMECH_TRY(toks.next(tok, context));
    if (tok[0] == '-') {
        return parseError(StatusCode::OutOfRange, toks.line(),
                          msg(context, " must be non-negative, got '",
                              tok, "'"));
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
        return parseError(StatusCode::ParseError, toks.line(),
                          msg("expected number in ", context, ", got '",
                              tok, "'"));
    }
    std::uint64_t limit =
        std::min<std::uint64_t>(cap, std::numeric_limits<T>::max());
    if (errno == ERANGE || value > limit) {
        return parseError(StatusCode::Overflow, toks.line(),
                          msg(context, " overflows (got '", tok,
                              "', max ", limit, ")"));
    }
    out = static_cast<T>(value);
    return Status();
}

/** Parse a signed 32-bit field (dependency indices; -1 = none). */
Status
parseSigned(Tokenizer &toks, std::int32_t &out, const char *context)
{
    std::string tok;
    GPUMECH_TRY(toks.next(tok, context));
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
        return parseError(StatusCode::ParseError, toks.line(),
                          msg("expected number in ", context, ", got '",
                              tok, "'"));
    }
    if (errno == ERANGE ||
        value < std::numeric_limits<std::int32_t>::min() ||
        value > std::numeric_limits<std::int32_t>::max()) {
        return parseError(StatusCode::Overflow, toks.line(),
                          msg(context, " overflows (got '", tok, "')"));
    }
    out = static_cast<std::int32_t>(value);
    return Status();
}

/**
 * Expect keyword @p want. A stray 'kernel' is classified as
 * DuplicateHeader (one trace, one header); anything else is a
 * ParseError.
 */
Status
expectKeyword(Tokenizer &toks, const char *want, const char *context)
{
    std::string tok;
    GPUMECH_TRY(toks.next(tok, context));
    if (tok == want)
        return Status();
    if (tok == "kernel") {
        return parseError(StatusCode::DuplicateHeader, toks.line(),
                          msg("duplicate 'kernel' header (expected '",
                              want, "')"));
    }
    return parseError(StatusCode::ParseError, toks.line(),
                      msg("missing '", want, "' (got '", tok, "')"));
}

} // namespace

void
writeTrace(std::ostream &os, const KernelTrace &kernel)
{
    os << "kernel " << kernel.name() << "\n";
    os << "static " << kernel.numStaticInsts() << "\n";
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        const auto &si = kernel.staticInsts()[pc];
        os << pc << " " << toString(si.op) << " "
           << (si.label.empty() ? "-" : si.label) << "\n";
    }
    os << "warps " << kernel.numWarps() << "\n";
    for (WarpView warp : kernel.warps()) {
        os << "warp " << warp.warpId() << " " << warp.blockId() << " "
           << warp.numInsts() << "\n";
        for (std::size_t i = 0; i < warp.numInsts(); ++i) {
            os << warp.pc(i) << " " << warp.activeThreads(i);
            for (std::int32_t d : warp.deps(i))
                os << " " << d;
            LineSpan lines = warp.lines(i);
            os << " " << lines.size();
            for (Addr a : lines)
                os << " " << a;
            os << "\n";
        }
    }
    os << "end\n";
}

Result<KernelTrace>
parseTrace(std::istream &is)
{
    evalCheckpoint(FaultSite::Parse);

    Span span("parse");
    bool measure = Metrics::enabled();
    std::uint64_t t0 = measure ? monotonicNowNs() : 0;

    Tokenizer toks(is);
    std::string tok;
    GPUMECH_TRY(toks.next(tok, "header"));
    if (tok != "kernel") {
        return parseError(StatusCode::ParseError, toks.line(),
                          "missing 'kernel' header");
    }
    GPUMECH_TRY(toks.next(tok, "kernel name"));
    KernelTrace kernel(tok);

    GPUMECH_TRY(expectKeyword(toks, "static", "static header"));
    std::uint32_t num_static = 0;
    GPUMECH_TRY(parseUnsigned(toks, num_static, "static count",
                              maxRecordCount));
    for (std::uint32_t i = 0; i < num_static; ++i) {
        std::uint32_t pc = 0;
        GPUMECH_TRY(parseUnsigned(toks, pc, "static pc"));
        if (pc != i) {
            return parseError(
                StatusCode::OutOfRange, toks.line(),
                msg("static pcs must be sequential (expected ", i,
                    ", got ", pc, ")"));
        }
        GPUMECH_TRY(toks.next(tok, "static opcode"));
        Opcode op;
        if (!tryOpcodeFromString(tok, op)) {
            return parseError(StatusCode::NotFound, toks.line(),
                              msg("unknown opcode mnemonic '", tok,
                                  "'"));
        }
        std::string label;
        GPUMECH_TRY(toks.next(label, "static label"));
        kernel.addStatic(op, label == "-" ? "" : label);
    }

    GPUMECH_TRY(expectKeyword(toks, "warps", "warps header"));
    std::uint32_t num_warps = 0;
    GPUMECH_TRY(parseUnsigned(toks, num_warps, "warp count",
                              maxRecordCount));
    if (num_warps == 0) {
        return parseError(StatusCode::OutOfRange, toks.line(),
                          "warp count must be positive");
    }
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        GPUMECH_TRY(expectKeyword(toks, "warp", "warp header"));
        WarpTrace warp;
        GPUMECH_TRY(parseUnsigned(toks, warp.warpId, "warp id"));
        GPUMECH_TRY(parseUnsigned(toks, warp.blockId, "block id"));
        std::uint64_t n = 0;
        GPUMECH_TRY(parseUnsigned(toks, n, "inst count",
                                  maxRecordCount));
        if (n == 0) {
            return parseError(
                StatusCode::OutOfRange, toks.line(),
                msg("warp ", warp.warpId,
                    ": instruction count must be positive"));
        }
        warp.reserve(n, 0);
        std::vector<Addr> line_scratch;
        for (std::uint64_t i = 0; i < n; ++i) {
            WarpInst inst;
            GPUMECH_TRY(parseUnsigned(toks, inst.pc, "inst pc"));
            if (inst.pc >= kernel.numStaticInsts()) {
                return parseError(
                    StatusCode::OutOfRange, toks.line(),
                    msg("inst pc ", inst.pc,
                        " out of range (static count ",
                        kernel.numStaticInsts(), ")"));
            }
            inst.op = kernel.opcodeOf(inst.pc);
            GPUMECH_TRY(parseUnsigned(toks, inst.activeThreads,
                                      "active threads"));
            for (auto &d : inst.deps)
                GPUMECH_TRY(parseSigned(toks, d, "dep index"));
            std::uint32_t num_lines = 0;
            GPUMECH_TRY(parseUnsigned(toks, num_lines, "line count",
                                      maxRecordCount));
            line_scratch.clear();
            for (std::uint32_t l = 0; l < num_lines; ++l) {
                Addr addr = 0;
                GPUMECH_TRY(parseUnsigned(toks, addr, "line addr"));
                line_scratch.push_back(addr);
            }
            if (num_lines > 0) {
                warp.addMemInst(inst, line_scratch.data(), num_lines);
            } else {
                warp.addInst(inst);
            }
        }
        kernel.addWarp(warp);
    }

    GPUMECH_TRY(expectKeyword(toks, "end", "trailer"));
    if (!kernel.validate()) {
        return parseError(StatusCode::FailedValidation, toks.line(),
                          msg("kernel '", kernel.name(),
                              "' failed structural validation"));
    }
    if (measure) {
        parseMetrics().lines.add(toks.line());
        parseMetrics().bytes.add(toks.bytes());
        double sec =
            static_cast<double>(monotonicNowNs() - t0) / 1e9;
        if (sec > 0.0) {
            parseMetrics().mbPerS.observe(
                static_cast<double>(toks.bytes()) / 1e6 / sec);
        }
    }
    return kernel;
}

Result<KernelTrace>
parseTraceString(const std::string &text)
{
    std::istringstream is(text);
    return parseTrace(is);
}

KernelTrace
readTrace(std::istream &is)
{
    return parseTrace(is).valueOrDie();
}

KernelTrace
traceFromString(const std::string &text)
{
    return parseTraceString(text).valueOrDie();
}

namespace
{

/**
 * Read-only streambuf over a borrowed byte range, so text traces
 * loaded through MmapFile parse straight out of the mapping without
 * first copying the file into a string.
 */
class MemStreamBuf : public std::streambuf
{
  public:
    MemStreamBuf(const char *data, std::size_t size)
    {
        // istream never writes through a get-area-only streambuf; the
        // const_cast satisfies setg's signature.
        char *base = const_cast<char *>(data);
        setg(base, base, base + size);
    }
};

} // namespace

bool
hasGmtExtension(const std::string &path)
{
    const std::string ext = ".gmt";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Result<KernelTrace>
loadTraceFile(const std::string &path)
{
    MmapFile file;
    GPUMECH_ASSIGN_OR_RETURN(file, MmapFile::open(path));
    if (looksLikeGmt(file.data(), file.size())) {
        return parseGmtBuffer(file.data(), file.size());
    }
    MemStreamBuf buf(reinterpret_cast<const char *>(file.data()),
                     file.size());
    std::istream is(&buf);
    return parseTrace(is);
}

Status
writeTraceFile(const std::string &path, const KernelTrace &kernel,
               bool varint_lines)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        return Status(StatusCode::Internal,
                      msg("cannot open '", path, "' for writing"));
    }
    if (hasGmtExtension(path)) {
        GmtWriteOptions options;
        options.varintLines = varint_lines;
        writeGmt(os, kernel, options);
    } else {
        writeTrace(os, kernel);
    }
    os.flush();
    if (!os) {
        return Status(StatusCode::Internal,
                      msg("write to '", path, "' failed"));
    }
    return Status();
}

std::string
traceToString(const KernelTrace &kernel)
{
    std::ostringstream os;
    writeTrace(os, kernel);
    return os.str();
}

} // namespace gpumech
