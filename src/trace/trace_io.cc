#include "trace/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace gpumech
{

namespace
{

/**
 * Read one whitespace-delimited token, failing loudly with context if
 * the stream is exhausted.
 */
std::string
expectToken(std::istream &is, const char *context)
{
    std::string tok;
    if (!(is >> tok))
        fatal(msg("trace parse error: unexpected end of input in ",
                  context));
    return tok;
}

template <typename T>
T
expectNumber(std::istream &is, const char *context)
{
    std::string tok = expectToken(is, context);
    std::istringstream ss(tok);
    T value;
    if (!(ss >> value))
        fatal(msg("trace parse error: expected number in ", context,
                  ", got '", tok, "'"));
    return value;
}

} // namespace

void
writeTrace(std::ostream &os, const KernelTrace &kernel)
{
    os << "kernel " << kernel.name() << "\n";
    os << "static " << kernel.numStaticInsts() << "\n";
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        const auto &si = kernel.staticInsts()[pc];
        os << pc << " " << toString(si.op) << " "
           << (si.label.empty() ? "-" : si.label) << "\n";
    }
    os << "warps " << kernel.numWarps() << "\n";
    for (WarpView warp : kernel.warps()) {
        os << "warp " << warp.warpId() << " " << warp.blockId() << " "
           << warp.numInsts() << "\n";
        for (std::size_t i = 0; i < warp.numInsts(); ++i) {
            os << warp.pc(i) << " " << warp.activeThreads(i);
            for (std::int32_t d : warp.deps(i))
                os << " " << d;
            LineSpan lines = warp.lines(i);
            os << " " << lines.size();
            for (Addr a : lines)
                os << " " << a;
            os << "\n";
        }
    }
    os << "end\n";
}

KernelTrace
readTrace(std::istream &is)
{
    std::string tok = expectToken(is, "header");
    if (tok != "kernel")
        fatal("trace parse error: missing 'kernel' header");
    KernelTrace kernel(expectToken(is, "kernel name"));

    tok = expectToken(is, "static header");
    if (tok != "static")
        fatal("trace parse error: missing 'static' section");
    auto num_static = expectNumber<std::uint32_t>(is, "static count");
    for (std::uint32_t i = 0; i < num_static; ++i) {
        auto pc = expectNumber<std::uint32_t>(is, "static pc");
        if (pc != i)
            fatal("trace parse error: static pcs must be sequential");
        Opcode op = opcodeFromString(expectToken(is, "static opcode"));
        std::string label = expectToken(is, "static label");
        kernel.addStatic(op, label == "-" ? "" : label);
    }

    tok = expectToken(is, "warps header");
    if (tok != "warps")
        fatal("trace parse error: missing 'warps' section");
    auto num_warps = expectNumber<std::uint32_t>(is, "warp count");
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        tok = expectToken(is, "warp header");
        if (tok != "warp")
            fatal("trace parse error: missing 'warp' record");
        WarpTrace warp;
        warp.warpId = expectNumber<std::uint32_t>(is, "warp id");
        warp.blockId = expectNumber<std::uint32_t>(is, "block id");
        auto n = expectNumber<std::uint64_t>(is, "inst count");
        warp.reserve(n, 0);
        std::vector<Addr> line_scratch;
        for (std::uint64_t i = 0; i < n; ++i) {
            WarpInst inst;
            inst.pc = expectNumber<std::uint32_t>(is, "inst pc");
            if (inst.pc >= kernel.numStaticInsts())
                fatal("trace parse error: inst pc out of range");
            inst.op = kernel.opcodeOf(inst.pc);
            inst.activeThreads =
                expectNumber<std::uint32_t>(is, "active threads");
            for (auto &d : inst.deps)
                d = expectNumber<std::int32_t>(is, "dep index");
            auto num_lines = expectNumber<std::uint32_t>(is, "line count");
            line_scratch.clear();
            for (std::uint32_t l = 0; l < num_lines; ++l)
                line_scratch.push_back(expectNumber<Addr>(is, "line addr"));
            if (num_lines > 0) {
                warp.addMemInst(inst, line_scratch.data(), num_lines);
            } else {
                warp.addInst(inst);
            }
        }
        kernel.addWarp(warp);
    }

    tok = expectToken(is, "trailer");
    if (tok != "end")
        fatal("trace parse error: missing 'end' trailer");
    if (!kernel.validate())
        fatal("trace parse error: trace failed validation");
    return kernel;
}

std::string
traceToString(const KernelTrace &kernel)
{
    std::ostringstream os;
    writeTrace(os, kernel);
    return os.str();
}

KernelTrace
traceFromString(const std::string &text)
{
    std::istringstream is(text);
    return readTrace(is);
}

} // namespace gpumech
