/**
 * @file
 * The `.gmt` binary columnar kernel-trace format.
 *
 * A `.gmt` file is the arena-backed SoA KernelTrace written to disk
 * column by column, so loading is mmap + a handful of column copies +
 * pointer fixup (prefix sums for the warp windows and line-slice
 * offsets, opcode lookup from the static program) instead of a text
 * parse. Full byte-level specification in DESIGN.md section 12.
 *
 * Layout (all integers little-endian, sections 8-byte aligned):
 *
 *   FileHeader   magic "GMT!", format version, endianness tag,
 *                trace-layout token (traceLayoutToken), flags,
 *                section count, section-table checksum
 *   SectionEntry[] id, payload offset/size, element count, checksum
 *   payloads     one per section, FNV-1a 64 checksummed
 *
 * Sections mirror the KernelTrace columns that cannot be derived:
 * kernel name, static opcodes + labels, per-warp ids/blocks/counts,
 * and the per-instruction pc/active/deps/line-count arrays plus the
 * line-address pool. The pool is stored raw (memcpy-able) or, with
 * GmtWriteOptions::varintLines, as zigzag-varint deltas (address
 * streams are mostly small ascending steps, so this shrinks the
 * dominant section severalfold at a modest decode cost).
 *
 * Error handling mirrors the text parser's hardening contract
 * (trace_io.hh): every malformed-input class maps to a distinct
 * StatusCode, and messages carry the absolute byte offset of the
 * offending structure the way text-parser errors carry line numbers:
 *
 *   TruncatedInput   file ends before a header/table/section extent
 *   ParseError       bad magic, unknown section id or flag, section
 *                    size/count disagreement, missing section
 *   VersionMismatch  foreign format version, endianness, or trace
 *                    layout generation
 *   ChecksumMismatch section or table bytes fail their checksum
 *   DuplicateHeader  a section id appears twice
 *   Overflow         element count above the record cap
 *   OutOfRange       zero warp/instruction counts, pc out of range,
 *                    line counts not covering the pool
 *   NotFound         opcode byte outside the ISA
 *   FailedValidation decoded trace fails KernelTrace::validate()
 *
 * Decode paths call evalCheckpoint(FaultSite::Parse) at entry and
 * deadlineCheckpoint() between bounded chunks, so a pathological or
 * enormous file degrades to a structured per-kernel failure under the
 * harness watchdog exactly like a text trace.
 */

#ifndef GPUMECH_TRACE_GMT_FORMAT_HH
#define GPUMECH_TRACE_GMT_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** First bytes of every .gmt file. */
inline constexpr char gmtMagic[4] = {'G', 'M', 'T', '!'};

/** Current format version (header field). */
inline constexpr std::uint16_t gmtVersion = 1;

/**
 * Endianness tag, written in native byte order. A reader on a
 * foreign-endian machine sees the swapped value and refuses the file
 * instead of misdecoding every column.
 */
inline constexpr std::uint16_t gmtEndianTag = 0xFEFF;

/** Header flag: line pool stored as zigzag-varint deltas. */
inline constexpr std::uint32_t gmtFlagVarintLines = 1u << 0;

/** Writer knobs. */
struct GmtWriteOptions
{
    /**
     * Encode the line-address pool as zigzag-varint deltas instead of
     * raw 8-byte words. Smaller on disk; decode walks bytes instead of
     * one memcpy. Round-trips bit-identically either way.
     */
    bool varintLines = false;
};

/** True when @p data begins with the .gmt magic. */
bool looksLikeGmt(const void *data, std::size_t size);

/** Serialize @p kernel as a .gmt document. */
void writeGmt(std::ostream &os, const KernelTrace &kernel,
              const GmtWriteOptions &options = {});

/** Convenience: serialize to a byte string. */
std::string gmtToString(const KernelTrace &kernel,
                        const GmtWriteOptions &options = {});

/**
 * Decode a complete in-memory .gmt image (typically an MmapFile).
 * Column copies and varint decode run in bounded chunks with deadline
 * checkpoints. On success records the gmt.load.ms / gmt.bytes /
 * gmt.sections metrics.
 */
Result<KernelTrace> parseGmtBuffer(const void *data, std::size_t size);

/** Convenience: decode from a byte string. */
Result<KernelTrace> parseGmtString(const std::string &bytes);

/**
 * Streaming chunked decoder: reads the stream strictly forward in
 * bounded chunks (no whole-file buffer), decoding each section
 * directly into its final column storage, with a deadline checkpoint
 * per chunk. Peak transient memory beyond the decoded trace is one
 * chunk, so arbitrarily large files stream through; the harness uses
 * it when mmap is unavailable, and the trace-set pipeline
 * (streamTraceSet) uses it to overlap decode with collection.
 */
class GmtChunkedReader
{
  public:
    /** @param chunk_bytes read/copy granularity (min 4 KiB). */
    explicit GmtChunkedReader(std::istream &is,
                              std::size_t chunk_bytes = 1 << 22);

    /** Decode the whole stream into a KernelTrace. Single use. */
    Result<KernelTrace> read();

  private:
    std::istream &is;
    std::size_t chunkBytes;
};

} // namespace gpumech

#endif // GPUMECH_TRACE_GMT_FORMAT_HH
