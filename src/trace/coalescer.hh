/**
 * @file
 * Memory-access coalescer.
 *
 * A SIMT memory instruction issues one memory request per distinct
 * cache line touched by its active threads (Section II-B: the degree
 * of memory divergence is the number of uncoalesced requests, 1..32).
 */

#ifndef GPUMECH_TRACE_COALESCER_HH
#define GPUMECH_TRACE_COALESCER_HH

#include <cstdint>
#include <vector>

namespace gpumech
{

/** Byte address in the flat global address space. */
using Addr = std::uint64_t;

/**
 * Coalesce per-thread byte addresses into the sorted list of distinct
 * line-aligned addresses, writing into a caller-owned buffer.
 *
 * The buffer is cleared first; reusing one scratch vector across
 * calls makes per-instruction coalescing allocation-free once the
 * scratch has grown to a warp's worth of lines (TraceBuilder does
 * this for every dynamic memory instruction).
 *
 * @param addrs per-active-thread byte addresses
 * @param line_bytes cache line size (must be a power of two)
 * @param out receives the sorted, deduplicated line base addresses
 */
void coalesce(const std::vector<Addr> &addrs, std::uint32_t line_bytes,
              std::vector<Addr> &out);

/**
 * Return-by-value convenience overload (allocates; forwards to the
 * output-parameter form).
 *
 * @param addrs per-active-thread byte addresses
 * @param line_bytes cache line size (must be a power of two)
 * @return sorted, deduplicated line base addresses
 */
std::vector<Addr> coalesce(const std::vector<Addr> &addrs,
                           std::uint32_t line_bytes);

/** Number of requests coalesce() would produce, without materializing. */
std::uint32_t coalescedCount(const std::vector<Addr> &addrs,
                             std::uint32_t line_bytes);

} // namespace gpumech

#endif // GPUMECH_TRACE_COALESCER_HH
