/**
 * @file
 * Single-connection JSON-lines serving loop for the gpumech_serve
 * daemon's stdin/stdout mode (socket mode runs the multi-client
 * supervisor, supervisor.hh).
 *
 * One reader thread pulls request lines off the transport into a
 * bounded queue; the caller's thread dispatches queued requests in
 * small batches onto the shared thread pool. Admission control is
 * load-shedding: when the queue is full, the request is answered
 * immediately with StatusCode::ResourceExhausted ("shed":true) and
 * never evaluated.
 *
 * Ordering: evaluated responses are written in request (seq) order.
 * Shed and parse-error responses are written by the reader thread as
 * they happen and may interleave; every response carries "seq" (the
 * 1-based input line number) and the request's "id" for correlation.
 *
 * Draining: EOF on the transport — or requestServeDrain(), typically
 * from a SIGTERM handler — stops intake; every already-queued request
 * is still evaluated and answered before the loop returns.
 */

#ifndef GPUMECH_SERVICE_SERVE_LOOP_HH
#define GPUMECH_SERVICE_SERVE_LOOP_HH

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>

#include "service/engine_session.hh"

namespace gpumech
{

/** Serving knobs. */
struct ServeOptions
{
    /**
     * Admission bound: requests queued (not yet dispatched) before
     * load-shedding kicks in. Minimum 1.
     */
    std::size_t maxQueue = 64;

    /**
     * Requests evaluated concurrently per dispatch round. 1 serializes
     * handling (exact per-request cache attribution). Minimum 1.
     */
    unsigned maxBatch = 4;

    /** Echo the rendered report in each response's "output" field. */
    bool includeOutput = true;
};

/** Totals of one serving run (logged by the daemon on exit). */
struct ServeSummary
{
    std::uint64_t received = 0; //!< request lines read
    std::uint64_t evaluated = 0;//!< requests handled by the engine
    std::uint64_t failed = 0;   //!< evaluated with a non-ok status
    std::uint64_t shed = 0;     //!< rejected by admission control
    std::uint64_t malformed = 0;//!< lines that failed to parse
};

/**
 * Serve JSON-lines requests from @p in, writing one JSON response line
 * per request to @p out. Blocks until @p in reaches EOF (or a drain is
 * requested) and the queue is fully drained. Returns the run's totals;
 * the transport never kills the process — I/O failure just ends the
 * run early.
 */
ServeSummary serveLines(EngineSession &engine, std::istream &in,
                        std::ostream &out,
                        const ServeOptions &options = {});

/**
 * serveLines over raw POSIX fds (the daemon's stdin/stdout mode):
 * reads and writes go through the hardened net_io helpers, so output
 * survives partial writes and EINTR, and a drain request interrupts a
 * parked read within one poll tick.
 */
ServeSummary serveFd(EngineSession &engine, int in_fd, int out_fd,
                     const ServeOptions &options = {});

/**
 * Ask the serving loop to drain and return (async-signal-safe; the
 * daemon's SIGTERM/SIGINT handler calls this). Intake stops at the
 * next read; queued requests are still answered.
 */
void requestServeDrain();

/** True once a drain has been requested. */
bool serveDraining();

/** Re-arm serving after a drain (tests run several loops per process). */
void resetServeDrain();

} // namespace gpumech

#endif // GPUMECH_SERVICE_SERVE_LOOP_HH
