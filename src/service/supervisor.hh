/**
 * @file
 * Multi-client connection supervisor for the gpumech_serve daemon's
 * Unix-socket mode.
 *
 * The single-connection loop (serve_loop.hh) accepts one client at a
 * time; the supervisor accepts many concurrently and keeps one engine
 * — and its warm cache — shared across all of them:
 *
 *   accept loop   non-blocking listen fd polled in short ticks;
 *                 reaps finished connections and notices a drain
 *                 request within one tick
 *   per conn      a reader thread (hardened line intake: byte cap,
 *                 idle timeout, cooperative stop) and a writer thread
 *                 (responses written strictly in that client's seq
 *                 order via a reorder buffer, bounded write timeout)
 *   dispatchers   N threads popping a shared admission queue and
 *                 evaluating requests on the engine; metrics-snapshot
 *                 requests run exclusively
 *
 * Fairness and backpressure are per client: each connection has a
 * bounded in-flight quota, so one firehose client is shed with
 * ResourceExhausted (carrying a "retry_after_ms" back-off hint
 * derived from queue depth and recent service times) while others
 * keep being admitted. Misbehaving clients are isolated, never fatal:
 * an oversized line or an idle timeout disconnects that client; a
 * write timeout (slow reader) disconnects that client; everyone else
 * is untouched. The accept loop shrugs off client-induced errno too:
 * ECONNABORTED is skipped and fd exhaustion (EMFILE/ENFILE) retries
 * after a tick rather than shutting the daemon down.
 *
 * Draining (requestServeDrain(), typically SIGTERM): the supervisor
 * stops accepting, stops intake on every connection, finishes and
 * answers everything already admitted, counts buffered-but-unread
 * lines as dropped, flushes every writer within a bounded grace
 * (a stalled peer is cut off and its undelivered responses counted
 * as dropped, so drain terminates even with writeTimeoutMs 0), and
 * returns. Fatal listen-socket errors run the same teardown before
 * reporting the Status, so no thread is ever left running.
 */

#ifndef GPUMECH_SERVICE_SUPERVISOR_HH
#define GPUMECH_SERVICE_SUPERVISOR_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/engine_session.hh"

namespace gpumech
{

/** Supervisor knobs (the daemon's --serve-* flags). */
struct SupervisorOptions
{
    /** Shared admission queue bound before load shedding. Min 1. */
    std::size_t maxQueue = 64;

    /** Dispatcher threads evaluating admitted requests. Min 1. */
    unsigned dispatchers = 2;

    /**
     * Per-client bound on requests admitted but not yet answered;
     * beyond it the client is shed (fairness quota). Min 1.
     */
    std::size_t maxInflight = 8;

    /**
     * Per-response write deadline; a client that cannot absorb its
     * responses this long is disconnected. 0 = wait forever.
     */
    std::uint64_t writeTimeoutMs = 5000;

    /** Disconnect a client idle this long. 0 = never. */
    std::uint64_t idleTimeoutMs = 0;

    /** Per-line byte cap; an oversized line ends that client. Min 1. */
    std::size_t maxLineBytes = 1 << 20;

    /** Echo the rendered report in each response's "output" field. */
    bool includeOutput = true;
};

/** Totals of one supervised serving run. */
struct SupervisorSummary
{
    std::uint64_t connections = 0; //!< clients accepted
    std::uint64_t received = 0;    //!< request lines read
    std::uint64_t evaluated = 0;   //!< requests handled by the engine
    std::uint64_t failed = 0;      //!< evaluated with a non-ok status
    std::uint64_t shed = 0;        //!< rejected by admission control
    std::uint64_t malformed = 0;   //!< lines that failed to parse

    std::uint64_t slowDisconnects = 0; //!< write-timeout evictions
    std::uint64_t idleDisconnects = 0; //!< idle-timeout evictions
    std::uint64_t oversized = 0;       //!< byte-cap evictions

    /**
     * Lines a client had already sent that were never admitted
     * (buffered at drain, or trailing an eviction) plus admitted
     * responses that could not be delivered to a vanished client.
     */
    std::uint64_t dropped = 0;
};

/**
 * Serve connections on a Unix-domain stream socket at @p socket_path
 * (an existing file there is replaced), concurrently, until a drain
 * is requested. Returns the accumulated totals, or a Status when the
 * socket cannot be set up.
 */
Result<SupervisorSummary>
serveSupervised(EngineSession &engine, const std::string &socket_path,
                const SupervisorOptions &options = {});

} // namespace gpumech

#endif // GPUMECH_SERVICE_SUPERVISOR_HH
