/**
 * @file
 * The evaluation-service core: one long-lived engine shared by every
 * front-end (the CLI, the gpumech_serve daemon, tests, benches).
 *
 * EngineSession owns the harness-level EvalSession (warm InputCache +
 * session defaults) and turns Requests into Responses. Handlers render
 * exactly the bytes the pre-split CLI printed to stdout — the
 * cli_golden test pins this — while routing every artifact through the
 * session cache, so a repeat request evaluates model-only instead of
 * regenerating its trace, collector result, and warp profiles.
 *
 * handle() is a containment boundary: a handler's StatusException or
 * unexpected std::exception becomes a failed Response (exit-code 1),
 * never a dead process. Thread-safe: concurrent handle() calls share
 * the compute-once cache; per-response cache counters are exact when a
 * request runs alone and attributionally approximate under overlap.
 */

#ifndef GPUMECH_SERVICE_ENGINE_SESSION_HH
#define GPUMECH_SERVICE_ENGINE_SESSION_HH

#include <atomic>
#include <cstdint>

#include "harness/session.hh"
#include "service/request.hh"

namespace gpumech
{

/** Construction-time defaults for an engine. */
struct EngineOptions
{
    /** Default fan-out threads; 0 = defaultJobs(). */
    unsigned jobs = 0;

    /** Default per-kernel deadline (ms); 0 = no watchdog. */
    std::uint64_t kernelTimeoutMs = 0;
};

/** The shared evaluation engine behind every front-end. */
class EngineSession
{
  public:
    explicit EngineSession(const EngineOptions &options = {});

    EngineSession(const EngineSession &) = delete;
    EngineSession &operator=(const EngineSession &) = delete;

    /**
     * Execute one request. Never throws; the response's status /
     * exitCode carry the old CLI semantics (0 full success, 1 total
     * failure, 2 partial suite).
     */
    Response handle(const Request &request);

    /** Requests handled so far (including failed ones). */
    std::uint64_t requestsHandled() const { return handled.load(); }

    /** The underlying harness session (cache access for tests/stats). */
    EvalSession &session() { return eval; }

  private:
    Response dispatch(const Request &request);

    EvalSession eval;
    std::atomic<std::uint64_t> handled{0};
};

} // namespace gpumech

#endif // GPUMECH_SERVICE_ENGINE_SESSION_HH
