#include "service/engine_session.hh"

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "collector/input_collector.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "timing/gpu_timing.hh"
#include "trace/gmt_format.hh"
#include "trace/trace_io.hh"

namespace gpumech
{

namespace
{

/** One reading of the session cache's hit/miss counters. */
struct CacheCounters
{
    std::size_t traceHits = 0, traceMisses = 0;
    std::size_t collectorHits = 0, collectorMisses = 0;
    std::size_t profilerHits = 0, profilerMisses = 0;
};

CacheCounters
readCounters(const InputCache &cache)
{
    CacheCounters c;
    c.traceHits = cache.traceHits();
    c.traceMisses = cache.traceMisses();
    c.collectorHits = cache.collectorHits();
    c.collectorMisses = cache.collectorMisses();
    c.profilerHits = cache.profilerHits();
    c.profilerMisses = cache.profilerMisses();
    return c;
}

/** A total failure: exit-code 1 and the given status. */
Response
fail(Status status)
{
    Response resp;
    resp.status = std::move(status);
    resp.exitCode = 1;
    return resp;
}

/** Workload lookup with the old CLI's message, as a Status. */
Result<const Workload *>
lookupWorkload(const std::string &name)
{
    const Workload *w = findWorkload(name);
    if (w == nullptr) {
        return Status(StatusCode::NotFound,
                      msg("unknown workload: ", name));
    }
    return w;
}

/** Effective per-request isolation (request deadline/plan wins). */
IsolationOptions
isolationFor(const EvalSession &session, const Request &req)
{
    IsolationOptions iso = session.isolationFor(req.timeoutMs);
    if (req.faultPlan)
        iso.faultPlan = req.faultPlan.get();
    return iso;
}

void
printModelResult(std::ostream &os, const GpuMechResult &r,
                 const HardwareConfig &config, SchedulingPolicy policy)
{
    os << "config: " << config.summary() << "\n";
    os << "policy: " << toString(policy) << "\n";
    os << "representative warp: " << r.repWarpIndex
       << " (single-warp IPC " << fmtDouble(r.repWarpPerf, 4) << ", "
       << r.repNumIntervals << " intervals)\n";
    os << "CPI multithreading: " << fmtDouble(r.cpiMultithreading, 4)
       << "\n";
    os << "CPI contention:     " << fmtDouble(r.cpiContention, 4)
       << "\n";
    os << "CPI final:          " << fmtDouble(r.cpi, 4) << "  (IPC/core "
       << fmtDouble(r.ipc, 4) << ")\n";
    os << "CPI stack:          " << r.stack.toLine() << "\n";
}

Response
handleList(std::ostream &os)
{
    Table t({"name", "suite", "ctrl-div", "mem-div", "description"});
    for (const auto &w : allWorkloads()) {
        t.addRow({w.name, w.suite, w.controlDivergent ? "yes" : "no",
                  w.memoryDivergent ? "yes" : "no", w.description});
    }
    t.print(os);
    return Response{};
}

Response
handleModel(EvalSession &session, const Request &req, std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    // Warm path: trace + collector + warp profiles come from the
    // session cache; only the (cheap) analytical evaluation runs per
    // request. evaluateAt keeps the result bit-identical to the old
    // CLI's runGpuMech (pinned by test_parallel and cli_golden).
    ProfiledKernel pk = session.cache.profiler(*w, req.config);
    GpuMechResult r = pk.profiler->evaluateAt(req.config, req.policy,
                                              req.level, req.modelSfu);
    const KernelTrace &kernel = *pk.trace;
    if (req.json) {
        JsonWriter json;
        json.field("kernel", kernel.name());
        json.field("policy", toString(req.policy));
        json.field("level", toString(req.level));
        json.field("warps",
                   static_cast<std::uint64_t>(kernel.numWarps()));
        json.field("insts", kernel.totalInsts());
        json.field("cpi", r.cpi);
        json.field("ipc", r.ipc);
        json.field("cpi_multithreading", r.cpiMultithreading);
        json.field("cpi_contention", r.cpiContention);
        json.field("rep_warp",
                   static_cast<std::uint64_t>(r.repWarpIndex));
        json.beginObject("stack");
        for (std::size_t i = 0; i < numStallTypes; ++i) {
            json.field(toString(static_cast<StallType>(i)),
                       r.stack.cpi[i]);
        }
        json.endObject();
        os << json.finish() << "\n";
        return Response{};
    }
    os << "kernel: " << kernel.name() << " (" << kernel.numWarps()
       << " warps, " << kernel.totalInsts() << " insts)\n";
    printModelResult(os, r, req.config, req.policy);
    return Response{};
}

Response
handleSimulate(EvalSession &session, const Request &req,
               std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    std::shared_ptr<const KernelTrace> kernel =
        session.cache.trace(*w, req.config);

    GpuTiming sim(*kernel, req.config, req.policy);
    TimingStats s = sim.run();
    if (req.json) {
        JsonWriter json;
        json.field("kernel", kernel->name());
        json.field("policy", toString(req.policy));
        json.field("cycles", s.totalCycles);
        json.field("insts", s.totalInsts);
        json.field("cpi", s.cpi());
        json.field("simd_efficiency", s.simdEfficiency());
        json.beginObject("memory");
        json.field("l1_accesses", s.l1Accesses);
        json.field("l1_hits", s.l1Hits);
        json.field("l2_accesses", s.l2Accesses);
        json.field("l2_hits", s.l2Hits);
        json.field("dram_reads", s.dramReads);
        json.field("dram_writes", s.dramWrites);
        json.field("avg_dram_queue_delay", s.avgDramQueueDelay);
        json.field("mshr_peak", static_cast<std::uint64_t>(s.mshrPeak));
        json.endObject();
        json.beginObject("stall_cpi");
        json.field("compute", s.computeStallCpi());
        json.field("mem", s.memStallCpi());
        json.field("mshr", s.mshrStallCpi());
        json.field("sfu", s.sfuStallCpi());
        json.endObject();
        os << json.finish() << "\n";
        return Response{};
    }
    os << "kernel: " << kernel->name() << "\n";
    os << "config: " << req.config.summary() << "\n";
    os << "cycles: " << s.totalCycles << "\n";
    os << "CPI (per core): " << fmtDouble(s.cpi(), 4) << "\n";
    os << "L1 hit rate: "
       << fmtPercent(s.l1Accesses ? static_cast<double>(s.l1Hits) /
                                        s.l1Accesses
                                  : 0.0)
       << ", L2 hit rate: "
       << fmtPercent(s.l2Accesses ? static_cast<double>(s.l2Hits) /
                                        s.l2Accesses
                                  : 0.0)
       << "\n";
    os << "DRAM reads/writes: " << s.dramReads << "/" << s.dramWrites
       << " (avg queue " << fmtDouble(s.avgDramQueueDelay, 1)
       << " cycles)\n";
    os << "MSHR peak/allocs/merges: " << s.mshrPeak << "/"
       << s.mshrAllocs << "/" << s.mshrMerges << "\n";
    os << "SIMD efficiency: " << fmtPercent(s.simdEfficiency()) << "\n";
    os << "measured stall CPI: compute "
       << fmtDouble(s.computeStallCpi(), 2) << ", mem "
       << fmtDouble(s.memStallCpi(), 2) << ", MSHR "
       << fmtDouble(s.mshrStallCpi(), 2) << ", SFU "
       << fmtDouble(s.sfuStallCpi(), 2) << "\n";
    return Response{};
}

Response
handleSweep(EvalSession &session, const Request &req, std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    const HardwareConfig &base = req.config;
    bool mrc = req.sweepMode == SweepMode::Mrc;

    // Profile once at the base configuration; each point re-evaluates
    // (Section VI-D). The warps axis changes the trace itself
    // (occupancy), so those points profile at their own configuration
    // — through the cache, so a repeated sweep is model-only. In MRC
    // mode the profiler carries a shared reuse-distance profile, so
    // the cache-geometry axes derive each cell instead of re-running
    // the functional simulation.
    ProfiledKernel base_pk =
        mrc ? session.cache.mrcProfiler(*w, base, req.mrcRate)
            : session.cache.profiler(*w, base);

    std::vector<std::string> header{req.sweepParam, "model CPI",
                                    "model IPC"};
    if (req.oracle)
        header.insert(header.end(), {"oracle CPI", "error"});
    Table t(header);

    for (double v : req.sweepValues) {
        HardwareConfig config = base;
        if (req.sweepParam == "warps") {
            config.warpsPerCore = static_cast<std::uint32_t>(v);
        } else if (req.sweepParam == "mshrs") {
            config.numMshrs = static_cast<std::uint32_t>(v);
        } else if (req.sweepParam == "bw") {
            config.dramBandwidthGBs = v;
        } else if (req.sweepParam == "l1-kb") {
            config.l1SizeBytes = static_cast<std::uint32_t>(v) * 1024;
        } else if (req.sweepParam == "l2-kb") {
            config.l2SizeBytes = static_cast<std::uint32_t>(v) * 1024;
        } else {
            config.sfuLanes = static_cast<std::uint32_t>(v);
        }

        ProfiledKernel pk =
            req.sweepParam == "warps"
                ? (mrc ? session.cache.mrcProfiler(*w, config,
                                                   req.mrcRate)
                       : session.cache.profiler(*w, config))
                : base_pk;
        GpuMechResult r = pk.profiler->evaluateAt(
            config, req.policy, ModelLevel::MT_MSHR_BAND, req.modelSfu);

        std::vector<std::string> row{fmtDouble(v, 0),
                                     fmtDouble(r.cpi, 3),
                                     fmtDouble(r.ipc, 4)};
        if (req.oracle) {
            GpuTiming sim(*pk.trace, config, req.policy);
            double oracle_cpi = sim.run().cpi();
            row.push_back(fmtDouble(oracle_cpi, 3));
            row.push_back(fmtPercent(std::abs(r.ipc - 1.0 / oracle_cpi) /
                                     (1.0 / oracle_cpi)));
        }
        t.addRow(std::move(row));
    }
    os << "kernel: " << req.kernel << ", sweeping " << req.sweepParam
       << "\n";
    // Only the non-default mode announces itself: the default (rerun)
    // output stays byte-identical to the pre-MRC CLI.
    if (mrc) {
        const CollectorResult &inputs = base_pk.profiler->inputs();
        os << "sweep mode: mrc (rate " << fmtDouble(req.mrcRate, 4)
           << ")";
        if (inputs.mrcApproximate)
            os << ", approximate: " << inputs.mrcApproximation;
        os << "\n";
    }
    os << "\n";
    t.print(os);
    Response resp;
    if (mrc) {
        const CollectorResult &inputs = base_pk.profiler->inputs();
        resp.mrcApproximate = inputs.mrcApproximate;
        resp.mrcApproximation = inputs.mrcApproximation;
    }
    return resp;
}

Response
handleTune(EvalSession &session, const Request &req, std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    // The search specification rides in req.tune; scheduling and
    // threading come from the request-level fields like every other
    // handler.
    TuneOptions options = req.tune;
    options.policy = req.policy;
    options.modelSfu = req.modelSfu;
    options.jobs = session.jobsFor(req.jobs);

    Result<TuneResult> run = runTune(session, *w, req.config, options);
    if (!run.ok())
        return fail(run.status());
    const TuneResult &result = run.value();
    os << tuneResultToJson(result, req.kernel, options) << "\n";

    Response resp;
    resp.mrcApproximate = result.mrcApproximate;
    resp.mrcApproximation = result.mrcApproximation;
    return resp;
}

Response
handleCompare(EvalSession &session, const Request &req,
              std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    KernelEvaluation eval =
        evaluateKernel(*w, req.config, req.policy, allModels(),
                       &session.cache, isolationFor(session, req));
    if (!eval.ok())
        return fail(eval.status);

    os << "kernel: " << req.kernel << ", oracle CPI "
       << fmtDouble(eval.oracleCpi, 3) << "\n\n";
    Table t({"model", "predicted IPC", "error"});
    for (ModelKind kind : allModels()) {
        t.addRow({toString(kind),
                  fmtDouble(eval.predictedIpc.at(kind), 4),
                  fmtPercent(eval.error(kind))});
    }
    t.print(os);
    Response resp;
    resp.stats.kernels = 1;
    return resp;
}

Response
handleStack(EvalSession &session, const Request &req, std::ostream &os)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    Table t({"warps", "BASE", "DEP", "L1", "L2", "DRAM", "MSHR",
             "QUEUE", "SFU", "total CPI"});
    for (std::uint32_t warps : {8u, 16u, 24u, 32u, 48u}) {
        HardwareConfig config = req.config;
        config.warpsPerCore = warps;
        ProfiledKernel pk = session.cache.profiler(*w, config);
        GpuMechResult r = pk.profiler->evaluateAt(
            config, req.policy, ModelLevel::MT_MSHR_BAND, req.modelSfu);
        t.addRow({std::to_string(warps),
                  fmtDouble(r.stack[StallType::Base], 2),
                  fmtDouble(r.stack[StallType::Dep], 2),
                  fmtDouble(r.stack[StallType::L1], 2),
                  fmtDouble(r.stack[StallType::L2], 2),
                  fmtDouble(r.stack[StallType::Dram], 2),
                  fmtDouble(r.stack[StallType::Mshr], 2),
                  fmtDouble(r.stack[StallType::Queue], 2),
                  fmtDouble(r.stack[StallType::Sfu], 2),
                  fmtDouble(r.stack.total(), 2)});
    }
    os << "kernel: " << req.kernel << "\n\n";
    t.print(os);
    return Response{};
}

Response
handleDumpTrace(EvalSession &session, const Request &req)
{
    const Workload *w = nullptr;
    {
        Result<const Workload *> found = lookupWorkload(req.kernel);
        if (!found.ok())
            return fail(found.status());
        w = found.value();
    }
    const std::string &path = req.paths[0];
    std::shared_ptr<const KernelTrace> kernel =
        session.cache.trace(*w, req.config);
    Status written = writeTraceFile(path, *kernel, req.varint);
    if (!written.ok())
        return fail(written);
    inform(msg("wrote ", kernel->numWarps(), " warps (",
               kernel->totalInsts(), " insts) to ", path,
               hasGmtExtension(path) ? " (binary .gmt)" : " (text)"));
    return Response{};
}

Response
handlePack(const Request &req)
{
    const std::string &in = req.paths[0];
    const std::string &out = req.paths[1];
    Result<KernelTrace> loaded = loadTraceFile(in);
    if (!loaded.ok())
        return fail(loaded.status());
    KernelTrace kernel = std::move(loaded).value();
    std::ofstream os(out, std::ios::binary);
    if (!os) {
        return fail(Status(StatusCode::InvalidArgument,
                           msg("cannot open ", out, " for writing")));
    }
    GmtWriteOptions options;
    options.varintLines = req.varint;
    writeGmt(os, kernel, options);
    os.flush();
    if (!os) {
        return fail(Status(StatusCode::Internal,
                           msg("write to ", out, " failed")));
    }
    inform(msg("packed ", kernel.numWarps(), " warps (",
               kernel.totalInsts(), " insts, ", kernel.totalLines(),
               " line addresses) into ", out,
               options.varintLines ? " (varint line pool)" : ""));
    return Response{};
}

Response
handleUnpack(const Request &req)
{
    const std::string &in = req.paths[0];
    const std::string &out = req.paths[1];
    Result<KernelTrace> loaded = loadTraceFile(in);
    if (!loaded.ok())
        return fail(loaded.status());
    KernelTrace kernel = std::move(loaded).value();
    std::ofstream os(out, std::ios::binary);
    if (!os) {
        return fail(Status(StatusCode::InvalidArgument,
                           msg("cannot open ", out, " for writing")));
    }
    writeTrace(os, kernel);
    os.flush();
    if (!os) {
        return fail(Status(StatusCode::Internal,
                           msg("write to ", out, " failed")));
    }
    inform(msg("unpacked ", kernel.numWarps(), " warps (",
               kernel.totalInsts(), " insts) into ", out));
    return Response{};
}

Response
handleModelTrace(EvalSession &session, const Request &req,
                 std::ostream &os)
{
    GpuMechOptions options;
    options.policy = req.policy;
    options.level = req.level;
    options.modelSfu = req.modelSfu;

    if (req.paths.size() == 1) {
        // Single file: full per-kernel report. Either format loads
        // (detected by content, not extension).
        const std::string &path = req.paths[0];
        Result<KernelTrace> loaded = loadTraceFile(path);
        if (!loaded.ok())
            return fail(loaded.status());
        KernelTrace kernel = std::move(loaded).value();
        GpuMechResult r = runGpuMech(kernel, req.config, options);
        os << "kernel: " << kernel.name() << " (from " << path
           << ")\n";
        printModelResult(os, r, req.config, req.policy);
        Response resp;
        resp.stats.kernels = 1;
        return resp;
    }

    // Multiple files: stream the set through the collector with
    // decode/collect overlap (at most two traces resident), modeling
    // each kernel as it lands and containing per-file failures.
    unsigned jobs = session.jobsFor(req.jobs);

    std::size_t failed = 0;
    Table t({"file", "kernel", "status", "CPI", "IPC/core"});
    Table failures({"file", "code", "detail"});
    streamTraceSet(
        req.paths, req.config,
        [&](StreamedTrace &&st) {
            if (!st.status.ok()) {
                ++failed;
                t.addRow({st.path, "-", "FAILED", "-", "-"});
                failures.addRow({st.path, toString(st.status.code()),
                                 st.status.message()});
                return;
            }
            GpuMechProfiler profiler(
                st.kernel, req.config, options.selection,
                options.numClusters, jobs,
                std::make_shared<const CollectorResult>(
                    std::move(st.inputs)));
            GpuMechResult r = profiler.evaluate(
                options.policy, options.level, options.modelSfu);
            t.addRow({st.path, st.kernel.name(), "ok",
                      fmtDouble(r.cpi, 3), fmtDouble(r.ipc, 4)});
        },
        jobs);
    t.print(os);
    if (failed > 0) {
        os << "\n" << failed << "/" << req.paths.size()
           << " trace files failed:\n";
        failures.print(os);
    }
    Response resp;
    resp.stats.kernels = req.paths.size();
    resp.stats.failed = failed;
    if (failed == req.paths.size()) {
        resp.exitCode = 1;
        resp.status = Status(StatusCode::Internal,
                             msg("all ", failed, " trace files failed"));
    } else if (failed > 0) {
        resp.exitCode = 2;
    }
    return resp;
}

Response
handleSuite(EvalSession &session, const Request &req, std::ostream &os)
{
    std::vector<Workload> workloads;
    {
        Result<std::vector<Workload>> found = suiteByName(req.suite);
        if (!found.ok())
            return fail(found.status());
        workloads = std::move(found).value();
    }
    IsolationOptions iso = isolationFor(session, req);
    unsigned jobs = session.jobsFor(req.jobs);

    std::size_t failed = 0;
    Table failures({"kernel", "code", "detail"});
    std::size_t total = 0;

    if (req.predict) {
        // Model-only fast path (no oracle simulation).
        GpuMechOptions options;
        options.policy = req.policy;
        options.level = req.level;
        options.modelSfu = req.modelSfu;
        auto preds = predictSuite(workloads, req.config, options, jobs,
                                  &session.cache, iso);
        total = preds.size();
        Table t({"kernel", "status", "CPI", "IPC/core"});
        for (const KernelPrediction &pred : preds) {
            if (pred.ok()) {
                t.addRow({pred.kernel, "ok",
                          fmtDouble(pred.result.cpi, 3),
                          fmtDouble(pred.result.ipc, 4)});
            } else {
                ++failed;
                t.addRow({pred.kernel, "FAILED", "-", "-"});
                failures.addRow({pred.kernel,
                                 toString(pred.status.code()),
                                 pred.status.message()});
            }
        }
        t.print(os);
        if (failed > 0) {
            os << "\n" << failed << "/" << preds.size()
               << " kernels failed:\n";
            failures.print(os);
        }
    } else {
        auto evals =
            evaluateSuite(workloads, req.config, req.policy,
                          allModels(), req.verbose, jobs,
                          &session.cache, iso);
        total = evals.size();
        Table t({"kernel", "status", "oracle CPI", "GPUMech IPC",
                 "error"});
        for (const KernelEvaluation &eval : evals) {
            if (eval.ok()) {
                t.addRow(
                    {eval.kernel, "ok", fmtDouble(eval.oracleCpi, 3),
                     fmtDouble(
                         eval.predictedIpc.at(ModelKind::MT_MSHR_BAND),
                         4),
                     fmtPercent(eval.error(ModelKind::MT_MSHR_BAND))});
            } else {
                ++failed;
                t.addRow({eval.kernel, "FAILED", "-", "-", "-"});
                failures.addRow({eval.kernel,
                                 toString(eval.status.code()),
                                 eval.status.message()});
            }
        }
        t.print(os);
        os << "\nmean error over " << evals.size() - failed
           << " succeeding kernels: "
           << fmtPercent(averageError(evals, ModelKind::MT_MSHR_BAND))
           << "\n";
        if (failed > 0) {
            os << "\n" << failed << "/" << evals.size()
               << " kernels failed:\n";
            failures.print(os);
        }
    }
    Response resp;
    resp.stats.kernels = total;
    resp.stats.failed = failed;
    if (failed == total && total > 0) {
        resp.exitCode = 1;
        resp.status = Status(StatusCode::Internal,
                             msg("all ", failed, " kernels failed"));
    } else if (failed > 0) {
        resp.exitCode = 2;
    }
    return resp;
}

} // namespace

EngineSession::EngineSession(const EngineOptions &options)
{
    eval.jobs = options.jobs;
    eval.isolation.kernelTimeoutMs = options.kernelTimeoutMs;
}

Response
EngineSession::dispatch(const Request &req)
{
    std::ostringstream os;
    Response resp;
    switch (req.verb) {
      case Verb::List:
        resp = handleList(os);
        break;
      case Verb::Model:
      case Verb::Simulate:
      case Verb::Sweep:
      case Verb::Tune:
      case Verb::Stack:
        if (req.verb == Verb::Model)
            resp = handleModel(eval, req, os);
        else if (req.verb == Verb::Simulate)
            resp = handleSimulate(eval, req, os);
        else if (req.verb == Verb::Sweep)
            resp = handleSweep(eval, req, os);
        else if (req.verb == Verb::Tune)
            resp = handleTune(eval, req, os);
        else
            resp = handleStack(eval, req, os);
        resp.stats.kernels = 1;
        resp.stats.failed = resp.ok() ? 0 : 1;
        break;
      case Verb::Compare:
        resp = handleCompare(eval, req, os);
        break;
      case Verb::DumpTrace:
        resp = handleDumpTrace(eval, req);
        break;
      case Verb::Pack:
        resp = handlePack(req);
        break;
      case Verb::Unpack:
        resp = handleUnpack(req);
        break;
      case Verb::ModelTrace:
        resp = handleModelTrace(eval, req, os);
        break;
      case Verb::Suite:
        resp = handleSuite(eval, req, os);
        break;
      case Verb::Ping:
        os << "pong\n";
        break;
      case Verb::Health: {
        // The engine's view: alive and counting. The connection
        // supervisor enriches this with queue/connection state before
        // it reaches a socket client (supervisor.cc).
        JsonWriter json;
        json.field("healthy", true);
        json.field("requests", handled.load());
        os << json.finish() << "\n";
        break;
      }
      case Verb::Stats: {
        JsonWriter json;
        json.field("requests", handled.load());
        json.beginObject("cache");
        json.field("trace_hits",
                   static_cast<std::uint64_t>(eval.cache.traceHits()));
        json.field("trace_misses", static_cast<std::uint64_t>(
                                       eval.cache.traceMisses()));
        json.field("collector_hits", static_cast<std::uint64_t>(
                                         eval.cache.collectorHits()));
        json.field("collector_misses",
                   static_cast<std::uint64_t>(
                       eval.cache.collectorMisses()));
        json.field("profiler_hits", static_cast<std::uint64_t>(
                                        eval.cache.profilerHits()));
        json.field("profiler_misses",
                   static_cast<std::uint64_t>(
                       eval.cache.profilerMisses()));
        json.endObject();
        os << json.finish() << "\n";
        break;
      }
    }
    resp.output = os.str();
    // A failed request keeps whatever partial report it rendered —
    // the old CLI printed partial-suite tables before exiting 2.
    return resp;
}

Response
EngineSession::handle(const Request &request)
{
    const auto t0 = std::chrono::steady_clock::now();
    const CacheCounters before = readCounters(eval.cache);

    Response resp;
    try {
        resp = dispatch(request);
    } catch (const StatusException &e) {
        // Single-kernel handlers have no containment boundary below
        // this one; the carried Status is a total failure.
        resp = fail(e.status());
    } catch (const std::exception &e) {
        resp = fail(Status(StatusCode::Internal,
                           msg("unhandled exception: ", e.what())));
    }

    const CacheCounters after = readCounters(eval.cache);
    resp.stats.traceHits = after.traceHits - before.traceHits;
    resp.stats.traceMisses = after.traceMisses - before.traceMisses;
    resp.stats.collectorHits =
        after.collectorHits - before.collectorHits;
    resp.stats.collectorMisses =
        after.collectorMisses - before.collectorMisses;
    resp.stats.profilerHits =
        after.profilerHits - before.profilerHits;
    resp.stats.profilerMisses =
        after.profilerMisses - before.profilerMisses;
    resp.stats.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    handled.fetch_add(1);
    return resp;
}

} // namespace gpumech
