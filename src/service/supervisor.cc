#include "service/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "service/net_io.hh"
#include "service/serve_loop.hh"

namespace gpumech
{

namespace
{

/** Accept-loop poll / reap granularity. */
constexpr int kAcceptTickMs = 200;

/** Ceiling on the retry_after_ms back-off hint. */
constexpr std::uint64_t kMaxRetryHintMs = 30000;

/**
 * Drain-time bound on flushing writers whose own write timeout is
 * disabled (writeTimeoutMs 0 = wait forever): past this grace the
 * stalled peer's fd is shut down so the daemon can exit.
 */
constexpr std::uint64_t kDrainWriterGraceMs = 5000;

/** One client connection: fd, its two threads, and writer state. */
struct Conn
{
    int fd = -1;
    std::uint64_t id = 0;
    std::thread reader;
    std::thread writer;

    std::mutex mu; //!< outbox, issued, intakeDone, dead
    std::condition_variable cv;

    /** Rendered response lines keyed by seq (reorder buffer). */
    std::map<std::uint64_t, std::string> outbox;
    std::uint64_t nextWrite = 1; //!< seq the writer emits next
    std::uint64_t issued = 0;    //!< seqs assigned by the reader
    bool intakeDone = false;     //!< reader finished (EOF/evicted)
    bool dead = false;           //!< peer gone; stop delivering

    /** Admitted-but-unanswered requests (the fairness quota). */
    std::atomic<std::size_t> inflight{0};

    std::atomic<bool> readerExited{false};
    std::atomic<bool> writerExited{false};
};

/** One admitted request waiting for a dispatcher. */
struct WorkItem
{
    std::shared_ptr<Conn> conn;
    std::uint64_t seq = 0;
    Request request;
};

class Supervisor
{
  public:
    Supervisor(EngineSession &engine, const SupervisorOptions &options)
        : engine(engine), options(options)
    {
        this->options.maxQueue = std::max<std::size_t>(
            this->options.maxQueue, 1);
        this->options.dispatchers =
            std::max(this->options.dispatchers, 1u);
        this->options.maxInflight = std::max<std::size_t>(
            this->options.maxInflight, 1);
        this->options.maxLineBytes = std::max<std::size_t>(
            this->options.maxLineBytes, 1);
    }

    Result<SupervisorSummary> run(const std::string &socket_path);

  private:
    void readerMain(std::shared_ptr<Conn> conn);
    void writerMain(std::shared_ptr<Conn> conn);
    void dispatcherMain();

    Response evaluate(const Request &request);
    Response healthResponse();
    std::uint64_t retryHintMs();

    /** Hand a rendered response line to @p conn's writer. */
    void deliver(const std::shared_ptr<Conn> &conn, std::uint64_t seq,
                 std::string line, bool admitted);

    void bump(std::uint64_t SupervisorSummary::*field,
              std::uint64_t by = 1)
    {
        std::lock_guard<std::mutex> lock(statsMu);
        totals.*field += by;
    }

    EngineSession &engine;
    SupervisorOptions options;

    std::mutex queueMu;
    std::condition_variable queueCv;
    std::deque<WorkItem> queue;
    bool stopDispatch = false;

    /**
     * Metrics-snapshot exclusivity: normal requests evaluate under a
     * shared lock, wantMetrics requests under an exclusive one so the
     * registry delta is attributable.
     */
    std::shared_mutex engineMu;

    std::mutex statsMu; //!< totals + ewmaWallMs
    SupervisorSummary totals;
    double ewmaWallMs = 0.0;

    std::atomic<bool> connStop{false};
    std::atomic<std::size_t> liveConns{0};
};

std::uint64_t
Supervisor::retryHintMs()
{
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        depth = queue.size();
    }
    double ewma;
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ewma = ewmaWallMs;
    }
    double per_slot = std::max(ewma, 1.0);
    double hint = (static_cast<double>(depth) + 1.0) * per_slot /
                  static_cast<double>(options.dispatchers);
    return std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(hint), 1, kMaxRetryHintMs);
}

void
Supervisor::deliver(const std::shared_ptr<Conn> &conn,
                    std::uint64_t seq, std::string line, bool admitted)
{
    bool dropped = false;
    {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->dead)
            dropped = true;
        else
            conn->outbox.emplace(seq, std::move(line));
    }
    if (admitted)
        conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    conn->cv.notify_all();
    if (dropped)
        bump(&SupervisorSummary::dropped);
}

void
Supervisor::readerMain(std::shared_ptr<Conn> conn)
{
    FdLineReader lines(conn->fd, options.maxLineBytes,
                       options.idleTimeoutMs);
    std::string line;
    for (;;) {
        ReadResult r = lines.readLine(line, connStop);
        if (r != ReadResult::Line) {
            // Intake ends. Evictions get a best-effort final error
            // response explaining why (the writer flushes it along
            // with everything already admitted).
            std::uint64_t drop = lines.bufferedLines();
            if (r == ReadResult::Oversized) {
                bump(&SupervisorSummary::oversized);
                Response resp;
                resp.status = Status(
                    StatusCode::InvalidArgument,
                    msg("input line exceeds ", options.maxLineBytes,
                        "-byte cap; closing connection"));
                resp.exitCode = 1;
                std::uint64_t seq;
                {
                    std::lock_guard<std::mutex> lock(conn->mu);
                    seq = ++conn->issued;
                }
                deliver(conn, seq,
                        responseToJsonLine(resp, "", seq,
                                           options.includeOutput) +
                            "\n",
                        false);
            } else if (r == ReadResult::Idle) {
                bump(&SupervisorSummary::idleDisconnects);
            }
            if (drop)
                bump(&SupervisorSummary::dropped, drop);
            break;
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank keep-alive line
        bump(&SupervisorSummary::received);
        std::uint64_t seq;
        {
            std::lock_guard<std::mutex> lock(conn->mu);
            seq = ++conn->issued;
        }

        Result<Request> parsed = requestFromJson(line);
        if (!parsed.ok()) {
            bump(&SupervisorSummary::malformed);
            Response resp;
            resp.status = parsed.status();
            resp.exitCode = 1;
            deliver(conn, seq,
                    responseToJsonLine(resp, salvageRequestId(line),
                                       seq, options.includeOutput) +
                        "\n",
                    false);
            continue;
        }
        Request req = std::move(parsed).value();

        // Health is answered inline — never queued, never shed — so
        // it keeps working under overload and during drain. Its
        // payload IS the output, so it ignores --no-output.
        if (req.verb == Verb::Health) {
            deliver(conn, seq,
                    responseToJsonLine(healthResponse(), req.id, seq,
                                       /*include_output=*/true) +
                        "\n",
                    false);
            continue;
        }

        // Admission: the client's own in-flight quota first (reader
        // is the sole incrementer, so check-then-add cannot overrun),
        // then the shared queue bound.
        bool shed = false;
        if (conn->inflight.load(std::memory_order_relaxed) >=
            options.maxInflight) {
            shed = true;
        } else {
            std::lock_guard<std::mutex> lock(queueMu);
            if (queue.size() >= options.maxQueue) {
                shed = true;
            } else {
                conn->inflight.fetch_add(1,
                                         std::memory_order_relaxed);
                queue.push_back({conn, seq, std::move(req)});
            }
        }
        if (shed) {
            bump(&SupervisorSummary::shed);
            Response resp;
            resp.status =
                Status(StatusCode::ResourceExhausted,
                       msg("admission limit reached (max ",
                           options.maxInflight, " in flight, queue ",
                           options.maxQueue, "); request shed"));
            resp.exitCode = 1;
            resp.shed = true;
            resp.retryAfterMs = retryHintMs();
            deliver(conn, seq,
                    responseToJsonLine(resp, req.id, seq,
                                       options.includeOutput) +
                        "\n",
                    false);
        } else {
            queueCv.notify_one();
        }
    }
    {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->intakeDone = true;
    }
    conn->cv.notify_all();
    conn->readerExited.store(true);
}

void
Supervisor::writerMain(std::shared_ptr<Conn> conn)
{
    std::uint64_t undelivered = 0;
    std::unique_lock<std::mutex> lock(conn->mu);
    for (;;) {
        conn->cv.wait(lock, [&] {
            return conn->dead ||
                   conn->outbox.count(conn->nextWrite) != 0 ||
                   (conn->intakeDone && conn->outbox.empty() &&
                    conn->nextWrite > conn->issued);
        });
        if (conn->dead)
            break;
        if (conn->outbox.count(conn->nextWrite) == 0)
            break; // intake done, everything written
        std::string line = std::move(conn->outbox[conn->nextWrite]);
        conn->outbox.erase(conn->nextWrite);
        lock.unlock();
        WriteResult r =
            writeAllFd(conn->fd, line.data(), line.size(),
                       options.writeTimeoutMs, /*is_socket=*/true);
        lock.lock();
        if (r != WriteResult::Ok) {
            conn->dead = true;
            undelivered = 1; // the response in hand was lost too
            // Wake the reader promptly: its next poll sees HUP/EOF.
            ::shutdown(conn->fd, SHUT_RDWR);
            if (r == WriteResult::Timeout)
                bump(&SupervisorSummary::slowDisconnects);
            break;
        }
        ++conn->nextWrite;
    }
    // Anything still buffered will never reach the peer.
    undelivered += conn->outbox.size();
    conn->outbox.clear();
    conn->dead = true;
    lock.unlock();
    if (undelivered)
        bump(&SupervisorSummary::dropped, undelivered);
    conn->writerExited.store(true);
}

Response
Supervisor::healthResponse()
{
    SupervisorSummary now;
    {
        std::lock_guard<std::mutex> lock(statsMu);
        now = totals;
    }
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        depth = queue.size();
    }
    JsonWriter json;
    json.field("healthy", true);
    json.field("draining", serveDraining());
    json.field("connections", static_cast<std::uint64_t>(
                                  liveConns.load()));
    json.field("queue_depth", static_cast<std::uint64_t>(depth));
    json.field("evaluated", now.evaluated);
    json.field("shed", now.shed);
    json.field("malformed", now.malformed);
    json.field("dropped", now.dropped);
    Response resp;
    resp.output = json.finish() + "\n";
    return resp;
}

Response
Supervisor::evaluate(const Request &request)
{
    if (request.verb == Verb::Health)
        return healthResponse();
    if (request.wantMetrics) {
        std::unique_lock<std::shared_mutex> exclusive(engineMu);
        const bool with_metrics = Metrics::enabled();
        std::vector<MetricSnapshot> before;
        if (with_metrics)
            before = Metrics::snapshot();
        Response resp = engine.handle(request);
        if (with_metrics) {
            resp.metricsJson = metricsToJson(
                snapshotDelta(before, Metrics::snapshot()));
        }
        return resp;
    }
    std::shared_lock<std::shared_mutex> shared(engineMu);
    return engine.handle(request);
}

void
Supervisor::dispatcherMain()
{
    for (;;) {
        WorkItem item;
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [&] {
                return !queue.empty() || stopDispatch;
            });
            if (queue.empty())
                break; // stopDispatch and drained
            item = std::move(queue.front());
            queue.pop_front();
        }
        Response resp = evaluate(item.request);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++totals.evaluated;
            if (!resp.ok())
                ++totals.failed;
            // EWMA of handling wall time feeds the retry hint.
            constexpr double alpha = 0.2;
            ewmaWallMs = ewmaWallMs == 0.0
                             ? resp.stats.wallMs
                             : alpha * resp.stats.wallMs +
                                   (1.0 - alpha) * ewmaWallMs;
        }
        // Health/stats answers ARE their output; --no-output must
        // not strip them down to an empty success line.
        const bool include_output =
            options.includeOutput ||
            item.request.verb == Verb::Health ||
            item.request.verb == Verb::Stats;
        deliver(item.conn, item.seq,
                responseToJsonLine(resp, item.request.id, item.seq,
                                   include_output) +
                    "\n",
                true);
    }
}

Result<SupervisorSummary>
Supervisor::run(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        return Status(StatusCode::InvalidArgument,
                      msg("socket path too long (",
                          socket_path.size(), " bytes, max ",
                          sizeof(addr.sun_path) - 1,
                          "): ", socket_path));
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        return Status(StatusCode::Internal,
                      msg("socket(): ", std::strerror(errno)));
    }
    ::unlink(socket_path.c_str()); // replace a stale socket file
    if (::bind(listen_fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status s(StatusCode::InvalidArgument,
                 msg("bind(", socket_path,
                     "): ", std::strerror(errno)));
        ::close(listen_fd);
        return s;
    }
    if (::listen(listen_fd, 64) != 0) {
        Status s(StatusCode::Internal,
                 msg("listen(", socket_path,
                     "): ", std::strerror(errno)));
        ::close(listen_fd);
        ::unlink(socket_path.c_str());
        return s;
    }
    ::fcntl(listen_fd, F_SETFL,
            ::fcntl(listen_fd, F_GETFL, 0) | O_NONBLOCK);

    std::vector<std::thread> dispatchers;
    for (unsigned i = 0; i < options.dispatchers; ++i)
        dispatchers.emplace_back([this] { dispatcherMain(); });

    std::vector<std::shared_ptr<Conn>> conns;
    std::uint64_t next_conn_id = 0;

    auto reap = [&](bool force) {
        for (auto it = conns.begin(); it != conns.end();) {
            Conn &c = **it;
            if (force ||
                (c.readerExited.load() && c.writerExited.load())) {
                if (c.reader.joinable())
                    c.reader.join();
                if (c.writer.joinable())
                    c.writer.join();
                ::close(c.fd);
                liveConns.fetch_sub(1);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    };

    // Full teardown, shared by the normal drain and the fatal
    // accept-loop exits (returning with joinable reader/writer/
    // dispatcher threads alive would std::terminate): stop accepting,
    // stop intake everywhere, answer everything admitted, flush every
    // writer within a bounded grace, and join everything.
    auto shutdownAll = [&] {
        ::close(listen_fd);
        ::unlink(socket_path.c_str());
        connStop.store(true);
        for (auto &conn : conns)
            if (conn->reader.joinable())
                conn->reader.join();
        {
            std::lock_guard<std::mutex> lock(queueMu);
            stopDispatch = true;
        }
        queueCv.notify_all();
        for (auto &t : dispatchers)
            t.join();
        for (auto &conn : conns)
            conn->cv.notify_all();
        // Writers with writeTimeoutMs 0 can block forever on a peer
        // that never reads; past the grace, force the stalled fd shut
        // so writeAllFd fails and the writer exits (its undelivered
        // lines are counted as dropped on the way out).
        const std::uint64_t grace =
            options.writeTimeoutMs > 0
                ? options.writeTimeoutMs + kAcceptTickMs
                : kDrainWriterGraceMs;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(grace);
        auto writers_pending = [&] {
            for (const auto &conn : conns)
                if (!conn->writerExited.load())
                    return true;
            return false;
        };
        while (writers_pending() &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        for (auto &conn : conns) {
            if (conn->writerExited.load())
                continue;
            {
                std::lock_guard<std::mutex> lock(conn->mu);
                conn->dead = true;
            }
            ::shutdown(conn->fd, SHUT_RDWR);
            conn->cv.notify_all();
        }
        reap(true);
    };

    int last_accept_errno = 0; // rate-limits exhaustion warnings

    while (!serveDraining()) {
        struct pollfd pfd = {listen_fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, kAcceptTickMs);
        reap(false);
        if (rc < 0) {
            if (errno == EINTR)
                continue; // drain flag re-checked above
            Status s(StatusCode::Internal,
                     msg("poll(): ", std::strerror(errno)));
            shutdownAll();
            return s;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK || errno == ECONNABORTED)
                continue; // transient; ECONNABORTED = peer bailed
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                // Resource exhaustion is load, not a server bug:
                // keep serving the clients we have and retry after a
                // tick (reap above frees fds as connections finish).
                if (errno != last_accept_errno) {
                    last_accept_errno = errno;
                    warn(msg("accept(): ", std::strerror(errno),
                             "; retrying"));
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(kAcceptTickMs));
                continue;
            }
            Status s(StatusCode::Internal,
                     msg("accept(): ", std::strerror(errno)));
            shutdownAll();
            return s;
        }
        last_accept_errno = 0;
        ::fcntl(client, F_SETFL,
                ::fcntl(client, F_GETFL, 0) | O_NONBLOCK);
        auto conn = std::make_shared<Conn>();
        conn->fd = client;
        conn->id = ++next_conn_id;
        liveConns.fetch_add(1);
        bump(&SupervisorSummary::connections);
        conn->reader =
            std::thread([this, conn] { readerMain(conn); });
        conn->writer =
            std::thread([this, conn] { writerMain(conn); });
        conns.push_back(std::move(conn));
    }

    shutdownAll();

    std::lock_guard<std::mutex> lock(statsMu);
    return totals;
}

} // namespace

Result<SupervisorSummary>
serveSupervised(EngineSession &engine, const std::string &socket_path,
                const SupervisorOptions &options)
{
    Supervisor supervisor(engine, options);
    return supervisor.run(socket_path);
}

} // namespace gpumech
