#include "service/net_io.hh"

#include <cerrno>
#include <chrono>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gpumech
{

namespace
{

/** Stop-flag / deadline poll granularity. */
constexpr int kPollTickMs = 200;

std::uint64_t
nowMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

WriteResult
writeAllFd(int fd, const char *data, std::size_t size,
           std::uint64_t timeout_ms, bool is_socket)
{
    std::uint64_t deadline = timeout_ms ? nowMs() + timeout_ms : 0;
    std::size_t done = 0;
    while (done < size) {
        ssize_t n;
        if (is_socket)
            n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        else
            n = ::write(fd, data + done, size - done);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Kernel buffer full: wait for writability, bounded by
            // the deadline so a stalled reader cannot park us.
            int wait = kPollTickMs;
            if (deadline) {
                std::uint64_t now = nowMs();
                if (now >= deadline)
                    return WriteResult::Timeout;
                std::uint64_t left = deadline - now;
                if (left < static_cast<std::uint64_t>(wait))
                    wait = static_cast<int>(left);
            }
            struct pollfd pfd = {fd, POLLOUT, 0};
            int rc = ::poll(&pfd, 1, wait);
            if (rc < 0 && errno != EINTR)
                return WriteResult::Closed;
            if (rc > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)))
                return WriteResult::Closed;
            continue;
        }
        // EPIPE/ECONNRESET (peer gone) and anything else fatal.
        return WriteResult::Closed;
    }
    return WriteResult::Ok;
}

FdLineReader::FdLineReader(int fd, std::size_t max_line_bytes,
                           std::uint64_t idle_timeout_ms)
    : fd(fd), maxLineBytes(max_line_bytes),
      idleTimeoutMs(idle_timeout_ms)
{
}

ReadResult
FdLineReader::readLine(std::string &line,
                       const std::atomic<bool> &stop)
{
    std::uint64_t idle_since = nowMs();
    for (;;) {
        // Serve from the buffer first: data already read must be
        // drained even after EOF or a raised stop flag.
        std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            if (maxLineBytes && nl > maxLineBytes)
                return ReadResult::Oversized;
            line.assign(buffer, 0, nl);
            buffer.erase(0, nl + 1);
            return ReadResult::Line;
        }
        if (maxLineBytes && buffer.size() > maxLineBytes)
            return ReadResult::Oversized;
        if (sawEof) {
            if (!buffer.empty()) {
                // Final unterminated line.
                line = std::move(buffer);
                buffer.clear();
                return ReadResult::Line;
            }
            return ReadResult::Eof;
        }
        if (stop.load(std::memory_order_relaxed))
            return ReadResult::Stopped;

        // Wait for input in short ticks so stop/idle are noticed.
        int wait = kPollTickMs;
        if (idleTimeoutMs) {
            std::uint64_t now = nowMs();
            if (now - idle_since >= idleTimeoutMs)
                return ReadResult::Idle;
            std::uint64_t left = idleTimeoutMs - (now - idle_since);
            if (left < static_cast<std::uint64_t>(wait))
                wait = static_cast<int>(left);
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, wait);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return ReadResult::Error;
        }
        if (rc == 0)
            continue;
        if (pfd.revents & POLLNVAL)
            return ReadResult::Error;
        if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR)))
            continue;

        char chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            idle_since = nowMs();
            continue;
        }
        if (n == 0) {
            sawEof = true;
            continue;
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return ReadResult::Error;
    }
}

std::size_t
FdLineReader::bufferedLines() const
{
    std::size_t count = 0;
    for (char c : buffer)
        if (c == '\n')
            ++count;
    return count;
}

} // namespace gpumech
