#include "service/request.hh"

#include <cmath>
#include <cstdlib>

#include "common/json.hh"
#include "common/json_value.hh"
#include "common/logging.hh"

namespace gpumech
{

std::string
toString(Verb verb)
{
    switch (verb) {
      case Verb::List: return "list";
      case Verb::Model: return "model";
      case Verb::Simulate: return "simulate";
      case Verb::Compare: return "compare";
      case Verb::Sweep: return "sweep";
      case Verb::Tune: return "tune";
      case Verb::Stack: return "stack";
      case Verb::DumpTrace: return "dump-trace";
      case Verb::Pack: return "pack";
      case Verb::Unpack: return "unpack";
      case Verb::ModelTrace: return "model-trace";
      case Verb::Suite: return "suite";
      case Verb::Ping: return "ping";
      case Verb::Stats: return "stats";
      case Verb::Health: return "health";
    }
    return "?";
}

Result<Verb>
verbFromString(const std::string &name)
{
    static const std::pair<const char *, Verb> table[] = {
        {"list", Verb::List},
        {"model", Verb::Model},
        {"simulate", Verb::Simulate},
        {"compare", Verb::Compare},
        {"sweep", Verb::Sweep},
        {"tune", Verb::Tune},
        {"stack", Verb::Stack},
        {"dump-trace", Verb::DumpTrace},
        {"pack", Verb::Pack},
        {"unpack", Verb::Unpack},
        {"model-trace", Verb::ModelTrace},
        {"suite", Verb::Suite},
        {"ping", Verb::Ping},
        {"stats", Verb::Stats},
        {"health", Verb::Health},
    };
    for (const auto &entry : table) {
        if (name == entry.first)
            return entry.second;
    }
    return Status(StatusCode::NotFound,
                  msg("unknown command '", name, "'"));
}

namespace
{

/** Split @p text on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : text + std::string(1, sep)) {
        if (c == sep) {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    return out;
}

Result<SchedulingPolicy>
policyFromString(const std::string &p)
{
    if (p == "rr")
        return SchedulingPolicy::RoundRobin;
    if (p == "gto")
        return SchedulingPolicy::GreedyThenOldest;
    return Status(StatusCode::InvalidArgument,
                  msg("unknown policy '", p, "' (use rr or gto)"));
}

Result<ModelLevel>
levelFromString(const std::string &l)
{
    if (l == "mt")
        return ModelLevel::MT;
    if (l == "mshr")
        return ModelLevel::MT_MSHR;
    if (l == "band")
        return ModelLevel::MT_MSHR_BAND;
    return Status(StatusCode::InvalidArgument,
                  msg("unknown model level '", l,
                      "' (use mt, mshr or band)"));
}

Result<std::vector<double>>
sweepValuesFromString(const std::string &values)
{
    std::vector<double> points;
    for (const std::string &tok : split(values, ',')) {
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            return Status(StatusCode::InvalidArgument,
                          msg("bad sweep value '", tok, "'"));
        }
        points.push_back(v);
    }
    if (points.empty()) {
        return Status(StatusCode::InvalidArgument,
                      "--values produced no sweep points");
    }
    return points;
}

Status
checkSweepParam(const std::string &param)
{
    if (param == "warps" || param == "mshrs" || param == "bw" ||
        param == "sfu-lanes" || param == "l1-kb" || param == "l2-kb")
        return Status();
    return Status(StatusCode::InvalidArgument,
                  msg("unknown sweep parameter '", param, "'"));
}

Result<SweepMode>
sweepModeFromString(const std::string &mode)
{
    SweepMode out = SweepMode::Rerun;
    if (!parseSweepMode(mode, out)) {
        return Status(StatusCode::InvalidArgument,
                      msg("unknown sweep mode '", mode,
                          "' (use rerun or mrc)"));
    }
    return out;
}

Status
checkMrcRate(double rate)
{
    if (rate > 0.0 && rate <= 1.0)
        return Status();
    return Status(StatusCode::InvalidArgument,
                  msg("mrc rate must be in (0, 1], got ", rate));
}

Status
usageError(const std::string &usage)
{
    return Status(StatusCode::InvalidArgument, usage);
}

/** Tune dimension names ("--dims" / "dims"), ladders left default. */
Result<std::vector<TuneDimension>>
tuneDimsFromString(const std::string &names)
{
    std::vector<TuneDimension> dims;
    for (const std::string &name : split(names, ',')) {
        if (!isTuneDimension(name)) {
            return Status(StatusCode::InvalidArgument,
                          msg("unknown tune dimension '", name,
                              "' (use ", tuneDimensionNames(), ")"));
        }
        TuneDimension dim;
        dim.name = name;
        dims.push_back(std::move(dim));
    }
    if (dims.empty()) {
        return Status(StatusCode::InvalidArgument,
                      "tune needs at least one dimension");
    }
    return dims;
}

/** "--cost-weights dim=w,..." / "cost_weights" values, merged in. */
Status
applyCostWeight(TuneCostModel &cost, const std::string &name, double w)
{
    if (!isTuneDimension(name)) {
        return Status(StatusCode::InvalidArgument,
                      msg("cost weight names an unknown dimension '",
                          name, "' (use ", tuneDimensionNames(), ")"));
    }
    if (!std::isfinite(w) || w < 0.0) {
        return Status(StatusCode::InvalidArgument,
                      msg("cost weight for '", name,
                          "' must be finite and >= 0, got ", w));
    }
    cost.weights[name] = w;
    return Status();
}

Result<TuneObjective>
tuneObjectiveFromString(const std::string &text)
{
    TuneObjective objective = TuneObjective::MinCpi;
    if (!parseTuneObjective(text, objective)) {
        return Status(StatusCode::InvalidArgument,
                      msg("unknown objective '", text,
                          "' (use cpi or cpi-cost)"));
    }
    return objective;
}

Status
checkTuneBound(const char *name, double bound)
{
    if (std::isfinite(bound) && bound >= 0.0)
        return Status();
    return Status(StatusCode::InvalidArgument,
                  msg(name, " must be finite and >= 0, got ", bound));
}

} // namespace

Result<std::shared_ptr<FaultPlan>>
parseInjectSpec(const std::string &specs)
{
    if (specs.empty())
        return std::shared_ptr<FaultPlan>();
    auto plan = std::make_shared<FaultPlan>();
    for (const std::string &spec : split(specs, ',')) {
        std::vector<std::string> parts;
        std::string part;
        for (char c : spec + ":") {
            if (c == ':') {
                parts.push_back(part);
                part.clear();
            } else {
                part += c;
            }
        }
        if (parts.size() < 2 || parts.size() > 4 || parts[0].empty()) {
            return Status(
                StatusCode::InvalidArgument,
                msg("bad inject spec '", spec,
                    "' (use kernel:site[:attempt[:stallMs]])"));
        }
        FaultInjection injection;
        injection.kernel = parts[0];
        GPUMECH_ASSIGN_OR_RETURN(injection.site,
                                 faultSiteFromString(parts[1]));
        if (parts.size() > 2) {
            injection.attempt = static_cast<unsigned>(
                std::strtoul(parts[2].c_str(), nullptr, 10));
            if (injection.attempt == 0) {
                return Status(StatusCode::InvalidArgument,
                              msg("bad inject attempt in '", spec,
                                  "' (1-based)"));
            }
        }
        if (parts.size() > 3) {
            injection.stallMs =
                std::strtoull(parts[3].c_str(), nullptr, 10);
        }
        plan->add(std::move(injection));
    }
    return plan;
}

Result<Request>
requestFromArgs(const ArgParser &args)
{
    Request req;

    std::string cmd = args.positional(0);
    if (cmd.empty() && args.has("suite"))
        cmd = "suite"; // `gpumech --suite stress` alias
    GPUMECH_ASSIGN_OR_RETURN(req.verb, verbFromString(cmd));

    // Hardware overrides. Count-valued options go through the checked
    // parser: "--warps -1" and "--warps 0" must be an InvalidArgument
    // here, not a silently wrapped ~4e9 (strtoul) deep in the engine.
    GPUMECH_ASSIGN_OR_RETURN(
        req.config.warpsPerCore,
        args.getPositiveUint("warps", req.config.warpsPerCore));
    GPUMECH_ASSIGN_OR_RETURN(
        req.config.numCores,
        args.getPositiveUint("cores", req.config.numCores));
    GPUMECH_ASSIGN_OR_RETURN(
        req.config.numMshrs,
        args.getPositiveUint("mshrs", req.config.numMshrs));
    GPUMECH_ASSIGN_OR_RETURN(
        req.config.sfuLanes,
        args.getPositiveUint("sfu-lanes", req.config.sfuLanes));
    GPUMECH_ASSIGN_OR_RETURN(
        req.config.dramBandwidthGBs,
        args.getDouble("bw", req.config.dramBandwidthGBs));
    GPUMECH_TRY(req.config.validate());

    GPUMECH_ASSIGN_OR_RETURN(req.policy,
                             policyFromString(args.get("policy", "rr")));
    GPUMECH_ASSIGN_OR_RETURN(req.level,
                             levelFromString(args.get("level", "band")));
    req.modelSfu = args.has("model-sfu");
    req.predict = args.has("predict");
    req.oracle = args.has("oracle");
    req.verbose = args.has("verbose");
    req.json = args.has("json");
    req.varint = args.has("varint");

    GPUMECH_ASSIGN_OR_RETURN(req.jobs, args.getPositiveUint("jobs", 0));
    req.timeoutMs = args.getUint("kernel-timeout-ms", 0);
    GPUMECH_ASSIGN_OR_RETURN(req.faultPlan,
                             parseInjectSpec(args.get("inject", "")));

    // Per-verb targets, preserving the old CLI's usage messages.
    switch (req.verb) {
      case Verb::List:
      case Verb::Ping:
      case Verb::Stats:
      case Verb::Health:
        break;
      case Verb::Model:
        req.kernel = args.positional(1);
        if (req.kernel.empty())
            return usageError("usage: gpumech model <kernel> [options]");
        break;
      case Verb::Simulate:
        req.kernel = args.positional(1);
        if (req.kernel.empty())
            return usageError(
                "usage: gpumech simulate <kernel> [options]");
        break;
      case Verb::Compare:
        req.kernel = args.positional(1);
        if (req.kernel.empty())
            return usageError(
                "usage: gpumech compare <kernel> [options]");
        break;
      case Verb::Stack:
        req.kernel = args.positional(1);
        if (req.kernel.empty())
            return usageError("usage: gpumech stack <kernel> [options]");
        break;
      case Verb::Sweep: {
        req.kernel = args.positional(1);
        if (req.kernel.empty()) {
            return usageError(
                "usage: gpumech sweep <kernel> --param "
                "warps|mshrs|bw|sfu-lanes|l1-kb|l2-kb "
                "[--values a,b,c] [--sweep-mode rerun|mrc] "
                "[--mrc-rate r] [--oracle]");
        }
        req.sweepParam = args.get("param", "warps");
        GPUMECH_TRY(checkSweepParam(req.sweepParam));
        GPUMECH_ASSIGN_OR_RETURN(
            req.sweepValues,
            sweepValuesFromString(args.get("values", "8,16,24,32,48")));
        GPUMECH_ASSIGN_OR_RETURN(
            req.sweepMode,
            sweepModeFromString(args.get("sweep-mode", "rerun")));
        GPUMECH_ASSIGN_OR_RETURN(req.mrcRate,
                                 args.getDouble("mrc-rate", 1.0));
        GPUMECH_TRY(checkMrcRate(req.mrcRate));
        break;
      }
      case Verb::Tune: {
        req.kernel = args.positional(1);
        if (req.kernel.empty()) {
            return usageError(
                "usage: gpumech tune <kernel> [--dims d1,d2,...] "
                "[--<dim>-values a,b,c] [--objective cpi|cpi-cost] "
                "[--restarts n] [--seed s] [--max-cost c] "
                "[--max-cpi c] [--cost-weights dim=w,...] "
                "[--sweep-mode mrc|rerun] [--mrc-rate r] "
                "[--allow-approx]");
        }
        GPUMECH_ASSIGN_OR_RETURN(
            req.tune.dims,
            tuneDimsFromString(args.get("dims", "mshrs,bw,l1-kb,l2-kb")));
        for (TuneDimension &dim : req.tune.dims) {
            std::string values = args.get(dim.name + "-values", "");
            if (!values.empty()) {
                GPUMECH_ASSIGN_OR_RETURN(dim.values,
                                         sweepValuesFromString(values));
            }
        }
        GPUMECH_ASSIGN_OR_RETURN(
            req.tune.objective,
            tuneObjectiveFromString(args.get("objective", "cpi")));
        GPUMECH_ASSIGN_OR_RETURN(
            req.tune.restarts,
            args.getPositiveUint("restarts", req.tune.restarts));
        std::uint32_t seed = 1;
        GPUMECH_ASSIGN_OR_RETURN(seed, args.getPositiveUint("seed", 1));
        req.tune.seed = seed;
        GPUMECH_ASSIGN_OR_RETURN(req.tune.constraints.maxCost,
                                 args.getDouble("max-cost", 0.0));
        GPUMECH_TRY(checkTuneBound("--max-cost",
                                   req.tune.constraints.maxCost));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.constraints.maxCpi,
                                 args.getDouble("max-cpi", 0.0));
        GPUMECH_TRY(checkTuneBound("--max-cpi",
                                   req.tune.constraints.maxCpi));
        for (const std::string &pair :
             split(args.get("cost-weights", ""), ',')) {
            auto eq = pair.find('=');
            char *end = nullptr;
            double w = eq == std::string::npos
                           ? 0.0
                           : std::strtod(pair.c_str() + eq + 1, &end);
            if (eq == std::string::npos || eq == 0 || end == nullptr ||
                *end != '\0' || pair.c_str() + eq + 1 == end) {
                return Status(StatusCode::InvalidArgument,
                              msg("bad cost weight '", pair,
                                  "' (use dim=weight)"));
            }
            GPUMECH_TRY(applyCostWeight(req.tune.cost,
                                        pair.substr(0, eq), w));
        }
        req.tune.allowApprox = args.has("allow-approx");
        GPUMECH_ASSIGN_OR_RETURN(
            req.tune.mode,
            sweepModeFromString(args.get("sweep-mode", "mrc")));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.mrcRate,
                                 args.getDouble("mrc-rate", 1.0));
        if (req.tune.mode == SweepMode::Mrc)
            GPUMECH_TRY(checkMrcRate(req.tune.mrcRate));
        break;
      }
      case Verb::DumpTrace:
        req.kernel = args.positional(1);
        req.paths = {args.positional(2)};
        if (req.kernel.empty() || req.paths[0].empty()) {
            return usageError("usage: gpumech dump-trace <kernel> "
                              "<file> [--varint] [options]");
        }
        break;
      case Verb::Pack:
        req.paths = {args.positional(1), args.positional(2)};
        if (req.paths[0].empty() || req.paths[1].empty()) {
            return usageError("usage: gpumech pack <trace-in> "
                              "<trace-out.gmt> [--varint]");
        }
        break;
      case Verb::Unpack:
        req.paths = {args.positional(1), args.positional(2)};
        if (req.paths[0].empty() || req.paths[1].empty()) {
            return usageError(
                "usage: gpumech unpack <trace-in.gmt> <trace-out.txt>");
        }
        break;
      case Verb::ModelTrace:
        for (std::size_t i = 1; i < args.numPositional(); ++i)
            req.paths.push_back(args.positional(i));
        if (req.paths.empty()) {
            return usageError(
                "usage: gpumech model-trace <file...> [options]");
        }
        break;
      case Verb::Suite:
        req.suite = args.positional(1);
        if (req.suite.empty())
            req.suite = args.get("suite");
        if (req.suite.empty()) {
            return usageError(
                "usage: gpumech suite <suite> [--predict] "
                "[--kernel-timeout-ms N] [--inject spec] [options]");
        }
        break;
    }
    return req;
}

namespace
{

/** Positive-integer JSON field (counts); fallback when absent. */
Result<std::uint32_t>
getPositiveCount(const JsonValue &object, const std::string &key,
                 std::uint32_t fallback)
{
    const JsonValue *v = object.find(key);
    if (v == nullptr || v->isNull())
        return fallback;
    if (!v->isNumber()) {
        return Status(StatusCode::InvalidArgument,
                      msg("field '", key, "' must be a number"));
    }
    double d = v->number();
    if (!(d >= 1.0) || d != std::floor(d) || d > 4294967295.0) {
        return Status(StatusCode::InvalidArgument,
                      msg("field '", key,
                          "' must be a positive integer, got ", d));
    }
    return static_cast<std::uint32_t>(d);
}

} // namespace

Result<Request>
requestFromJson(const std::string &line)
{
    JsonValue doc;
    {
        Result<JsonValue> parsed = parseJson(line);
        if (!parsed.ok())
            return parsed.status().withContext("request");
        doc = std::move(parsed).value();
    }
    if (!doc.isObject()) {
        return Status(StatusCode::InvalidArgument,
                      "request must be a JSON object");
    }

    Request req;
    std::string cmd;
    GPUMECH_ASSIGN_OR_RETURN(cmd, doc.getString("cmd"));
    if (cmd.empty()) {
        return Status(StatusCode::InvalidArgument,
                      "request is missing \"cmd\"");
    }
    GPUMECH_ASSIGN_OR_RETURN(req.verb, verbFromString(cmd));
    GPUMECH_ASSIGN_OR_RETURN(req.id, doc.getString("id"));
    GPUMECH_ASSIGN_OR_RETURN(req.kernel, doc.getString("kernel"));
    GPUMECH_ASSIGN_OR_RETURN(req.suite, doc.getString("suite"));

    if (const JsonValue *paths = doc.find("paths")) {
        if (!paths->isArray()) {
            return Status(StatusCode::InvalidArgument,
                          "field 'paths' must be an array of strings");
        }
        for (const JsonValue &p : paths->items()) {
            if (!p.isString()) {
                return Status(
                    StatusCode::InvalidArgument,
                    "field 'paths' must be an array of strings");
            }
            req.paths.push_back(p.string());
        }
    }

    if (const JsonValue *config = doc.find("config")) {
        if (!config->isObject()) {
            return Status(StatusCode::InvalidArgument,
                          "field 'config' must be an object");
        }
        GPUMECH_ASSIGN_OR_RETURN(
            req.config.warpsPerCore,
            getPositiveCount(*config, "warps",
                             req.config.warpsPerCore));
        GPUMECH_ASSIGN_OR_RETURN(
            req.config.numCores,
            getPositiveCount(*config, "cores", req.config.numCores));
        GPUMECH_ASSIGN_OR_RETURN(
            req.config.numMshrs,
            getPositiveCount(*config, "mshrs", req.config.numMshrs));
        GPUMECH_ASSIGN_OR_RETURN(
            req.config.sfuLanes,
            getPositiveCount(*config, "sfu_lanes",
                             req.config.sfuLanes));
        GPUMECH_ASSIGN_OR_RETURN(
            req.config.dramBandwidthGBs,
            config->getNumber("bw", req.config.dramBandwidthGBs));
    }
    GPUMECH_TRY(req.config.validate());

    std::string policy, level;
    GPUMECH_ASSIGN_OR_RETURN(policy, doc.getString("policy", "rr"));
    GPUMECH_ASSIGN_OR_RETURN(req.policy, policyFromString(policy));
    GPUMECH_ASSIGN_OR_RETURN(level, doc.getString("level", "band"));
    GPUMECH_ASSIGN_OR_RETURN(req.level, levelFromString(level));

    GPUMECH_ASSIGN_OR_RETURN(req.modelSfu,
                             doc.getBool("model_sfu", false));
    GPUMECH_ASSIGN_OR_RETURN(req.predict, doc.getBool("predict", false));
    GPUMECH_ASSIGN_OR_RETURN(req.oracle, doc.getBool("oracle", false));
    GPUMECH_ASSIGN_OR_RETURN(req.verbose, doc.getBool("verbose", false));
    GPUMECH_ASSIGN_OR_RETURN(req.json, doc.getBool("json", false));
    GPUMECH_ASSIGN_OR_RETURN(req.varint, doc.getBool("varint", false));
    GPUMECH_ASSIGN_OR_RETURN(req.wantMetrics,
                             doc.getBool("metrics", false));

    GPUMECH_ASSIGN_OR_RETURN(req.jobs,
                             getPositiveCount(doc, "jobs", 0));

    double timeout = 0.0;
    GPUMECH_ASSIGN_OR_RETURN(timeout, doc.getNumber("timeout_ms", 0.0));
    if (timeout < 0.0 || timeout != std::floor(timeout)) {
        return Status(StatusCode::InvalidArgument,
                      msg("field 'timeout_ms' must be a non-negative "
                          "integer, got ", timeout));
    }
    req.timeoutMs = static_cast<std::uint64_t>(timeout);

    std::string inject;
    GPUMECH_ASSIGN_OR_RETURN(inject, doc.getString("inject"));
    GPUMECH_ASSIGN_OR_RETURN(req.faultPlan, parseInjectSpec(inject));

    if (req.verb == Verb::Sweep) {
        GPUMECH_ASSIGN_OR_RETURN(req.sweepParam,
                                 doc.getString("param", "warps"));
        GPUMECH_TRY(checkSweepParam(req.sweepParam));
        if (const JsonValue *values = doc.find("values")) {
            if (!values->isArray()) {
                return Status(
                    StatusCode::InvalidArgument,
                    "field 'values' must be an array of numbers");
            }
            for (const JsonValue &v : values->items()) {
                if (!v.isNumber()) {
                    return Status(
                        StatusCode::InvalidArgument,
                        "field 'values' must be an array of numbers");
                }
                req.sweepValues.push_back(v.number());
            }
        }
        if (req.sweepValues.empty()) {
            GPUMECH_ASSIGN_OR_RETURN(
                req.sweepValues,
                sweepValuesFromString("8,16,24,32,48"));
        }
        std::string mode;
        GPUMECH_ASSIGN_OR_RETURN(mode,
                                 doc.getString("sweep_mode", "rerun"));
        GPUMECH_ASSIGN_OR_RETURN(req.sweepMode,
                                 sweepModeFromString(mode));
        GPUMECH_ASSIGN_OR_RETURN(req.mrcRate,
                                 doc.getNumber("mrc_rate", 1.0));
        GPUMECH_TRY(checkMrcRate(req.mrcRate));
    }

    if (req.verb == Verb::Tune) {
        if (const JsonValue *dims = doc.find("dims")) {
            if (!dims->isArray()) {
                return Status(StatusCode::InvalidArgument,
                              "field 'dims' must be an array of "
                              "names or {name, values} objects");
            }
            for (const JsonValue &d : dims->items()) {
                TuneDimension dim;
                if (d.isString()) {
                    dim.name = d.string();
                } else if (d.isObject()) {
                    GPUMECH_ASSIGN_OR_RETURN(dim.name,
                                             d.getString("name"));
                    if (const JsonValue *values = d.find("values")) {
                        if (!values->isArray()) {
                            return Status(
                                StatusCode::InvalidArgument,
                                msg("dimension '", dim.name,
                                    "' \"values\" must be an array "
                                    "of numbers"));
                        }
                        for (const JsonValue &v : values->items()) {
                            if (!v.isNumber()) {
                                return Status(
                                    StatusCode::InvalidArgument,
                                    msg("dimension '", dim.name,
                                        "' \"values\" must be an "
                                        "array of numbers"));
                            }
                            dim.values.push_back(v.number());
                        }
                    }
                } else {
                    return Status(StatusCode::InvalidArgument,
                                  "field 'dims' must be an array of "
                                  "names or {name, values} objects");
                }
                if (!isTuneDimension(dim.name)) {
                    return Status(StatusCode::InvalidArgument,
                                  msg("unknown tune dimension '",
                                      dim.name, "' (use ",
                                      tuneDimensionNames(), ")"));
                }
                req.tune.dims.push_back(std::move(dim));
            }
        }
        if (req.tune.dims.empty()) {
            GPUMECH_ASSIGN_OR_RETURN(
                req.tune.dims,
                tuneDimsFromString("mshrs,bw,l1-kb,l2-kb"));
        }
        std::string objective;
        GPUMECH_ASSIGN_OR_RETURN(objective,
                                 doc.getString("objective", "cpi"));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.objective,
                                 tuneObjectiveFromString(objective));
        GPUMECH_ASSIGN_OR_RETURN(
            req.tune.restarts,
            getPositiveCount(doc, "restarts", req.tune.restarts));
        std::uint32_t seed = 1;
        GPUMECH_ASSIGN_OR_RETURN(seed, getPositiveCount(doc, "seed", 1));
        req.tune.seed = seed;
        GPUMECH_ASSIGN_OR_RETURN(req.tune.constraints.maxCost,
                                 doc.getNumber("max_cost", 0.0));
        GPUMECH_TRY(checkTuneBound("field 'max_cost'",
                                   req.tune.constraints.maxCost));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.constraints.maxCpi,
                                 doc.getNumber("max_cpi", 0.0));
        GPUMECH_TRY(checkTuneBound("field 'max_cpi'",
                                   req.tune.constraints.maxCpi));
        if (const JsonValue *weights = doc.find("cost_weights")) {
            if (!weights->isObject()) {
                return Status(StatusCode::InvalidArgument,
                              "field 'cost_weights' must be an "
                              "object of dim: weight");
            }
            for (const auto &member : weights->members()) {
                if (!member.second.isNumber()) {
                    return Status(StatusCode::InvalidArgument,
                                  msg("cost weight '", member.first,
                                      "' must be a number"));
                }
                GPUMECH_TRY(applyCostWeight(req.tune.cost, member.first,
                                            member.second.number()));
            }
        }
        GPUMECH_ASSIGN_OR_RETURN(req.tune.allowApprox,
                                 doc.getBool("allow_approx", false));
        std::string mode;
        GPUMECH_ASSIGN_OR_RETURN(mode,
                                 doc.getString("sweep_mode", "mrc"));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.mode,
                                 sweepModeFromString(mode));
        GPUMECH_ASSIGN_OR_RETURN(req.tune.mrcRate,
                                 doc.getNumber("mrc_rate", 1.0));
        if (req.tune.mode == SweepMode::Mrc)
            GPUMECH_TRY(checkMrcRate(req.tune.mrcRate));
    }

    // Target presence, mirroring requestFromArgs.
    switch (req.verb) {
      case Verb::Model:
      case Verb::Simulate:
      case Verb::Compare:
      case Verb::Sweep:
      case Verb::Tune:
      case Verb::Stack:
        if (req.kernel.empty()) {
            return Status(StatusCode::InvalidArgument,
                          msg("'", cmd, "' requires \"kernel\""));
        }
        break;
      case Verb::DumpTrace:
        if (req.kernel.empty() || req.paths.size() != 1 ||
            req.paths[0].empty()) {
            return Status(StatusCode::InvalidArgument,
                          "'dump-trace' requires \"kernel\" and one "
                          "output path in \"paths\"");
        }
        break;
      case Verb::Pack:
      case Verb::Unpack:
        if (req.paths.size() != 2 || req.paths[0].empty() ||
            req.paths[1].empty()) {
            return Status(StatusCode::InvalidArgument,
                          msg("'", cmd, "' requires \"paths\":[in,out]"));
        }
        break;
      case Verb::ModelTrace:
        if (req.paths.empty()) {
            return Status(StatusCode::InvalidArgument,
                          "'model-trace' requires a non-empty "
                          "\"paths\" array");
        }
        break;
      case Verb::Suite:
        if (req.suite.empty()) {
            return Status(StatusCode::InvalidArgument,
                          "'suite' requires \"suite\"");
        }
        break;
      case Verb::List:
      case Verb::Ping:
      case Verb::Stats:
      case Verb::Health:
        break;
    }
    return req;
}

std::string
responseToJsonLine(const Response &response, const std::string &id,
                   std::uint64_t seq, bool include_output)
{
    JsonWriter json;
    if (!id.empty())
        json.field("id", id);
    json.field("seq", seq);
    json.field("ok", response.status.ok());
    json.field("code", static_cast<std::uint64_t>(
                           static_cast<unsigned>(response.exitCode)));
    json.field("status", toString(response.status.code()));
    if (!response.status.ok())
        json.field("error", response.status.message());
    if (response.shed)
        json.field("shed", true);
    if (response.retryAfterMs)
        json.field("retry_after_ms", response.retryAfterMs);
    json.field("kernels",
               static_cast<std::uint64_t>(response.stats.kernels));
    json.field("failed",
               static_cast<std::uint64_t>(response.stats.failed));
    json.beginObject("cache");
    json.field("trace_hits", response.stats.traceHits);
    json.field("trace_misses", response.stats.traceMisses);
    json.field("collector_hits", response.stats.collectorHits);
    json.field("collector_misses", response.stats.collectorMisses);
    json.field("profiler_hits", response.stats.profilerHits);
    json.field("profiler_misses", response.stats.profilerMisses);
    json.endObject();
    json.field("wall_ms", response.stats.wallMs);
    if (response.mrcApproximate) {
        json.field("mrc_approximate", true);
        json.field("mrc_approximation", response.mrcApproximation);
    }
    if (!response.metricsJson.empty())
        json.field("metrics", response.metricsJson);
    if (include_output)
        json.field("output", response.output);
    return json.finish();
}

std::string
salvageRequestId(const std::string &line)
{
    Result<JsonValue> doc = parseJson(line);
    if (!doc.ok() || !doc.value().isObject())
        return "";
    const JsonValue *id = doc.value().find("id");
    return (id && id->isString()) ? id->string() : "";
}

} // namespace gpumech
