/**
 * @file
 * Typed request/response model shared by every front-end.
 *
 * The engine/front-end split (DESIGN.md section 13) factors the old
 * monolithic CLI into three pieces:
 *
 *   front-end   parses its native surface (argv, a JSON line) into a
 *               Request and renders the Response back out
 *   Request     one evaluation order: a verb, its target (kernel /
 *               suite / trace files), hardware-configuration
 *               overrides, scheduling/model options, a per-request
 *               deadline and fault plan, and a thread budget
 *   Response    the outcome: a Status, the CLI exit-code semantics
 *               (0 full success / 1 total failure / 2 partial), the
 *               rendered report text, and per-request work counters
 *
 * Both parsers return Status instead of dying: a malformed request is
 * one error response, never a dead process (the daemon) or an unclear
 * crash (the CLI).
 */

#ifndef GPUMECH_SERVICE_REQUEST_HH
#define GPUMECH_SERVICE_REQUEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/config.hh"
#include "common/isolation.hh"
#include "common/status.hh"
#include "core/gpumech.hh"
#include "harness/experiment.hh"
#include "harness/tune.hh"

namespace gpumech
{

/** Every operation the evaluation service performs. */
enum class Verb
{
    List,       //!< list registered workloads
    Model,      //!< GPUMech prediction + CPI stack for one kernel
    Simulate,   //!< detailed timing simulation for one kernel
    Compare,    //!< all five models vs the oracle for one kernel
    Sweep,      //!< sweep one hardware parameter for one kernel
    Tune,       //!< guided design-space search for one kernel
    Stack,      //!< CPI stacks across warp counts for one kernel
    DumpTrace,  //!< write a kernel's trace to disk
    Pack,       //!< convert a trace file to binary .gmt
    Unpack,     //!< convert a binary trace to text
    ModelTrace, //!< model one or more on-disk trace files
    Suite,      //!< evaluate a whole suite with fault isolation
    Ping,       //!< serve-only liveness probe
    Stats,      //!< serve-only session/cache/metrics report
    Health,     //!< serve-only supervisor health snapshot
};

/** Stable verb name (the CLI subcommand / JSON "cmd" value). */
std::string toString(Verb verb);

/** Parse a verb name; NotFound on an unknown command. */
Result<Verb> verbFromString(const std::string &name);

/** One evaluation order, front-end agnostic. */
struct Request
{
    Verb verb = Verb::List;

    /** Client correlation id, echoed in the daemon's response. */
    std::string id;

    std::string kernel; //!< single-kernel verbs
    std::string suite;  //!< Suite

    /**
     * File arguments: ModelTrace inputs (one or more), or
     * [kernel-or-input, output] for DumpTrace / Pack / Unpack.
     */
    std::vector<std::string> paths;

    /** Fully-resolved, validated machine description. */
    HardwareConfig config = HardwareConfig::baseline();

    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;
    ModelLevel level = ModelLevel::MT_MSHR_BAND;
    bool modelSfu = false;

    bool predict = false; //!< Suite: model-only fast path
    bool oracle = false;  //!< Sweep: add oracle columns
    bool verbose = false; //!< Suite: per-kernel progress on stderr
    bool json = false;    //!< Model/Simulate: JSON report
    bool varint = false;  //!< DumpTrace/Pack: varint line pool

    std::string sweepParam = "warps";   //!< Sweep axis
    std::vector<double> sweepValues;    //!< Sweep points

    /**
     * Sweep: how cells get collector inputs (--sweep-mode /
     * "sweep_mode"). Rerun replays the functional cache simulation per
     * cell; Mrc derives every cell from one shared reuse-distance
     * profile (fast path for the cache-geometry axes).
     */
    SweepMode sweepMode = SweepMode::Rerun;

    /** Sweep: SHARDS sampling rate in (0, 1] for SweepMode::Mrc. */
    double mrcRate = 1.0;

    /**
     * Tune (Verb::Tune): the search specification. The handler fills
     * policy/modelSfu/jobs from the request-level fields.
     */
    TuneOptions tune;

    /** Worker threads for fan-out; 0 = session default. */
    unsigned jobs = 0;

    /** Per-request cooperative deadline; 0 = session default. */
    std::uint64_t timeoutMs = 0;

    /** Deterministic fault plan (--inject / "inject"); may be null. */
    std::shared_ptr<FaultPlan> faultPlan;

    /**
     * Serve-only: attach a metrics-registry delta for this request.
     * Forces the request to run alone (snapshots are only safe with
     * no instrumented work in flight).
     */
    bool wantMetrics = false;
};

/** Per-request work counters for the response. */
struct ResponseStats
{
    std::size_t kernels = 0; //!< kernels (or trace files) evaluated
    std::size_t failed = 0;  //!< contained per-kernel failures

    // InputCache activity attributable to this request.
    std::uint64_t traceHits = 0, traceMisses = 0;
    std::uint64_t collectorHits = 0, collectorMisses = 0;
    std::uint64_t profilerHits = 0, profilerMisses = 0;

    double wallMs = 0.0; //!< handling wall time
};

/** Outcome of one request. */
struct Response
{
    /**
     * Request-level outcome. Ok for exit codes 0 and 2 (a partial
     * suite still produced a report); the failure for exit code 1.
     */
    Status status;

    /** CLI exit-code semantics: 0 success, 1 total failure, 2 partial. */
    int exitCode = 0;

    /** True when admission control rejected the request unprocessed. */
    bool shed = false;

    /**
     * Shed responses only: suggested client back-off before retrying,
     * derived from the current queue depth and recent service times.
     * Rendered as "retry_after_ms"; 0 = no hint.
     */
    std::uint64_t retryAfterMs = 0;

    /** Rendered report — byte-identical to the pre-split CLI stdout. */
    std::string output;

    /**
     * Metrics-registry delta (a JSON document, carried as a string)
     * when the request asked for one; empty otherwise.
     */
    std::string metricsJson;

    /**
     * MRC fast-path approximation surface (sweep / tune): set when
     * the request's collector inputs were derived approximately, with
     * the comma-joined reasons. Rendered as "mrc_approximate" /
     * "mrc_approximation" in the JSON response line, so machine
     * consumers see the signal the text report prints.
     */
    bool mrcApproximate = false;
    std::string mrcApproximation;

    ResponseStats stats;

    bool ok() const { return status.ok(); }
};

/**
 * Parse a command line into a Request. Errors (unknown command or
 * workload-independent bad values: malformed/zero/negative --warps,
 * --cores, --mshrs, --jobs, out-of-range configuration fields, bad
 * --policy/--level/--inject) come back as InvalidArgument/NotFound
 * instead of fatal(), so the CLI front-end owns the process exit.
 */
Result<Request> requestFromArgs(const ArgParser &args);

/**
 * Parse one JSON-lines request (the `gpumech_serve` protocol; see
 * README "Serving"). Shape:
 *
 *   {"cmd":"model","kernel":"vectorAdd",
 *    "config":{"warps":16,"cores":8,"mshrs":64,"bw":256,
 *              "sfu_lanes":16},
 *    "policy":"gto","level":"band","model_sfu":true,
 *    "timeout_ms":500,"jobs":2,"json":false,
 *    "id":"req-1"}
 *
 * plus per-verb fields: "suite" (+"predict","verbose"), "paths"
 * (ModelTrace/DumpTrace/Pack/Unpack), "param"/"values" (Sweep),
 * "oracle", "varint", "inject" (the --inject spec string).
 */
Result<Request> requestFromJson(const std::string &line);

/**
 * Parse a comma-separated --inject spec list
 * (kernel:site[:attempt[:stallMs]]) into a FaultPlan. Empty input
 * yields a null plan.
 */
Result<std::shared_ptr<FaultPlan>>
parseInjectSpec(const std::string &specs);

/**
 * Render a response as one JSON line (no trailing newline): id, seq,
 * ok/code/status (+error message when failed), shed flag and
 * retry_after_ms hint when set, work counters, cache activity, wall
 * time, and the rendered report text when @p include_output.
 */
std::string responseToJsonLine(const Response &response,
                               const std::string &id,
                               std::uint64_t seq,
                               bool include_output);

/**
 * Best-effort "id" extraction from a line that failed to parse as a
 * request, so the error response still correlates with whatever the
 * client thought it sent. Returns "" when no id field is salvageable.
 */
std::string salvageRequestId(const std::string &line);

} // namespace gpumech

#endif // GPUMECH_SERVICE_REQUEST_HH
