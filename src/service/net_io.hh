/**
 * @file
 * Hardened POSIX fd line I/O shared by every serving transport: the
 * stdin/stdout daemon mode, the single-connection serve loop, and the
 * multi-client connection supervisor.
 *
 * Writes loop over partial writes and EINTR, use MSG_NOSIGNAL on
 * sockets (no SIGPIPE from a vanished peer), and can bound their
 * total wall time with a poll()-based deadline so one slow reader
 * cannot wedge a writer thread forever. Reads enforce a maximum line
 * length (a garbage client cannot balloon the buffer), an optional
 * idle timeout, and check a caller-supplied stop flag between polls
 * so a drain request interrupts a parked reader within one tick.
 */

#ifndef GPUMECH_SERVICE_NET_IO_HH
#define GPUMECH_SERVICE_NET_IO_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gpumech
{

/** Outcome of a timed fd write. */
enum class WriteResult
{
    Ok,      //!< everything written
    Timeout, //!< deadline expired with bytes still pending
    Closed,  //!< peer gone (EPIPE/ECONNRESET) or unrecoverable error
};

/**
 * Write all @p size bytes of @p data to @p fd, looping over partial
 * writes, EINTR, and EAGAIN. @p timeout_ms bounds the total wall time
 * (0 = block until done or the peer closes). @p is_socket selects
 * send(MSG_NOSIGNAL) over write() so a dead socket peer yields EPIPE
 * instead of a process-killing SIGPIPE; pipe/tty writers should
 * additionally ignore SIGPIPE process-wide (gpumech_serve does).
 */
WriteResult writeAllFd(int fd, const char *data, std::size_t size,
                       std::uint64_t timeout_ms, bool is_socket);

/** Outcome of one FdLineReader::readLine call. */
enum class ReadResult
{
    Line,      //!< @p line holds the next input line (no terminator)
    Eof,       //!< orderly end of input (a final partial line, if
               //!< any, was delivered as its own Line first)
    Oversized, //!< line exceeded the byte cap; intake must stop
    Idle,      //!< no input within the idle timeout
    Stopped,   //!< the stop flag was raised
    Error,     //!< unrecoverable read error
};

/**
 * Buffered line reader over a POSIX fd with a per-line byte cap, an
 * optional idle timeout, and cooperative stopping. The fd may be
 * blocking or non-blocking; polling happens in short ticks so a
 * raised stop flag is noticed promptly either way.
 */
class FdLineReader
{
  public:
    /**
     * @param fd stream to read (not owned)
     * @param max_line_bytes cap on one line's length, terminator
     *        excluded (0 = unlimited)
     * @param idle_timeout_ms return Idle after this long without
     *        input (0 = wait forever)
     */
    FdLineReader(int fd, std::size_t max_line_bytes,
                 std::uint64_t idle_timeout_ms);

    /** Next line into @p line; see ReadResult for the outcomes. */
    ReadResult readLine(std::string &line,
                        const std::atomic<bool> &stop);

    /**
     * Complete ('\n'-terminated) lines still sitting unconsumed in
     * the buffer — requests that will never be answered once intake
     * stops (drain/disconnect reporting).
     */
    std::size_t bufferedLines() const;

  private:
    int fd;
    std::size_t maxLineBytes;
    std::uint64_t idleTimeoutMs;
    std::string buffer;
    bool sawEof = false;
};

} // namespace gpumech

#endif // GPUMECH_SERVICE_NET_IO_HH
