#include "service/serve_loop.hh"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "service/net_io.hh"

namespace gpumech
{

namespace
{

std::atomic<bool> drainRequested{false};

/** One line-oriented connection (stdin/stdout or an fd pair). */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Next input line (no terminator); false on EOF/error/drain. */
    virtual bool readLine(std::string &line) = 0;

    /** Write one line + '\n'; false once the peer is gone. */
    virtual bool writeLine(const std::string &line) = 0;
};

class StreamTransport : public Transport
{
  public:
    StreamTransport(std::istream &in, std::ostream &out)
        : in(in), out(out)
    {}

    bool
    readLine(std::string &line) override
    {
        if (drainRequested.load(std::memory_order_relaxed))
            return false;
        return static_cast<bool>(std::getline(in, line));
    }

    bool
    writeLine(const std::string &line) override
    {
        out << line << "\n";
        out.flush();
        return static_cast<bool>(out);
    }

  private:
    std::istream &in;
    std::ostream &out;
};

/**
 * Hardened line I/O over a POSIX fd pair (the daemon's stdin/stdout
 * mode): reads go through FdLineReader (drain noticed within one poll
 * tick, EINTR-safe), writes through writeAllFd (partial writes and
 * EINTR looped, no SIGPIPE surprises on redirected-to-socket stdout).
 */
class FdTransport : public Transport
{
  public:
    FdTransport(int in_fd, int out_fd)
        : reader(in_fd, /*max_line_bytes=*/0, /*idle_timeout_ms=*/0),
          outFd(out_fd)
    {}

    bool
    readLine(std::string &line) override
    {
        ReadResult r = reader.readLine(line, drainRequested);
        return r == ReadResult::Line;
    }

    bool
    writeLine(const std::string &line) override
    {
        std::string data = line + "\n";
        return writeAllFd(outFd, data.data(), data.size(),
                          /*timeout_ms=*/0,
                          /*is_socket=*/false) == WriteResult::Ok;
    }

  private:
    FdLineReader reader;
    int outFd;
};

struct QueuedRequest
{
    std::uint64_t seq = 0;
    Request request;

    /**
     * Response already computed at intake (a malformed line). Ready
     * entries ride the queue so their responses are written in seq
     * order with everything else, but never reach the engine; for
     * them `request` only carries the salvaged correlation id.
     */
    bool ready = false;
    Response response;
};

ServeSummary
serveTransport(EngineSession &engine, Transport &transport,
               const ServeOptions &options)
{
    const std::size_t max_queue = options.maxQueue > 0
                                      ? options.maxQueue
                                      : std::size_t{1};
    const unsigned max_batch =
        options.maxBatch > 0 ? options.maxBatch : 1u;

    ServeSummary summary;
    std::mutex mu;                // queue + summary
    std::condition_variable cv;
    std::deque<QueuedRequest> queue;
    bool intake_done = false;
    std::mutex write_mu;
    std::atomic<bool> write_failed{false};

    auto emit = [&](const Response &resp, const std::string &id,
                    std::uint64_t seq, bool force_output = false) {
        std::lock_guard<std::mutex> lock(write_mu);
        if (!transport.writeLine(responseToJsonLine(
                resp, id, seq,
                options.includeOutput || force_output)))
            write_failed.store(true);
    };

    // Intake: parse lines, shed on a full queue. Bad lines get their
    // error response here but are enqueued as ready entries so the
    // dispatcher writes them in seq order with the evaluated ones
    // (emitting directly from this thread raced the dispatcher's
    // writes and broke the strict ordering contract); only a full
    // queue falls back to an immediate out-of-band answer, exactly
    // like shedding. Runs concurrently with dispatch below.
    std::thread reader([&] {
        std::string line;
        std::uint64_t seq = 0;
        while (!write_failed.load() && transport.readLine(line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue; // blank keep-alive line
            ++seq;
            Result<Request> parsed = requestFromJson(line);
            if (!parsed.ok()) {
                Response resp;
                resp.status = parsed.status();
                resp.exitCode = 1;
                std::string salvaged = salvageRequestId(line);
                bool direct = false;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    ++summary.received;
                    ++summary.malformed;
                    if (queue.size() >= max_queue) {
                        direct = true;
                    } else {
                        QueuedRequest entry;
                        entry.seq = seq;
                        entry.ready = true;
                        entry.response = std::move(resp);
                        entry.request.id = salvaged;
                        queue.push_back(std::move(entry));
                    }
                }
                if (direct)
                    emit(resp, salvaged, seq);
                else
                    cv.notify_one();
                continue;
            }
            Request req = std::move(parsed).value();
            bool shed = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                ++summary.received;
                if (queue.size() >= max_queue) {
                    shed = true;
                    ++summary.shed;
                } else {
                    queue.push_back({seq, std::move(req)});
                }
            }
            if (shed) {
                Response resp;
                resp.status = Status(
                    StatusCode::ResourceExhausted,
                    msg("queue full (", max_queue,
                        " pending); request shed"));
                resp.exitCode = 1;
                resp.shed = true;
                emit(resp, req.id, seq);
            } else {
                cv.notify_one();
            }
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            intake_done = true;
        }
        cv.notify_one();
    });

    // Dispatch: pop a batch, evaluate it on the shared pool, write
    // the responses in seq order.
    for (;;) {
        std::vector<QueuedRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [&] { return !queue.empty() || intake_done; });
            if (queue.empty() && intake_done)
                break;
            // Metric-snapshot requests run alone: registry snapshots
            // are only consistent with no instrumented work in flight.
            while (!queue.empty() && batch.size() < max_batch) {
                if (queue.front().request.wantMetrics &&
                    !batch.empty())
                    break;
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
                if (batch.back().request.wantMetrics)
                    break;
            }
        }

        std::vector<Response> responses;
        if (batch.size() == 1) {
            if (batch[0].ready) {
                responses.push_back(std::move(batch[0].response));
            } else {
                const Request &req = batch[0].request;
                const bool with_metrics =
                    req.wantMetrics && Metrics::enabled();
                std::vector<MetricSnapshot> before;
                if (with_metrics)
                    before = Metrics::snapshot();
                Response resp = engine.handle(req);
                if (with_metrics) {
                    resp.metricsJson = metricsToJson(
                        snapshotDelta(before, Metrics::snapshot()));
                }
                responses.push_back(std::move(resp));
            }
        } else {
            responses = parallelMap<Response>(
                batch.size(),
                [&](std::size_t i) {
                    return batch[i].ready
                               ? std::move(batch[i].response)
                               : engine.handle(batch[i].request);
                },
                1, static_cast<unsigned>(batch.size()));
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!batch[i].ready) {
                // Ready entries were counted as malformed at intake;
                // only engine-evaluated requests tally here.
                std::lock_guard<std::mutex> lock(mu);
                ++summary.evaluated;
                if (!responses[i].ok())
                    ++summary.failed;
            }
            // Health/stats answers ARE their output; --no-output
            // must not strip them down to an empty success line.
            emit(responses[i], batch[i].request.id, batch[i].seq,
                 batch[i].request.verb == Verb::Health ||
                     batch[i].request.verb == Verb::Stats);
        }
    }

    reader.join();
    return summary;
}

} // namespace

ServeSummary
serveLines(EngineSession &engine, std::istream &in, std::ostream &out,
           const ServeOptions &options)
{
    StreamTransport transport(in, out);
    return serveTransport(engine, transport, options);
}

ServeSummary
serveFd(EngineSession &engine, int in_fd, int out_fd,
        const ServeOptions &options)
{
    FdTransport transport(in_fd, out_fd);
    return serveTransport(engine, transport, options);
}

void
requestServeDrain()
{
    drainRequested.store(true, std::memory_order_relaxed);
}

bool
serveDraining()
{
    return drainRequested.load(std::memory_order_relaxed);
}

void
resetServeDrain()
{
    drainRequested.store(false, std::memory_order_relaxed);
}

} // namespace gpumech
