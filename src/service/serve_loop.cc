#include "service/serve_loop.hh"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json_value.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"

namespace gpumech
{

namespace
{

std::atomic<bool> drainRequested{false};

/**
 * Best-effort id recovery for rejected lines: a request that fails
 * semantic validation may still be well-formed JSON carrying the
 * client's correlation id, and echoing it back lets the client match
 * the error to its request instead of falling back to seq counting.
 */
std::string
salvageRequestId(const std::string &line)
{
    Result<JsonValue> doc = parseJson(line);
    if (!doc.ok() || !doc.value().isObject())
        return "";
    const JsonValue *id = doc.value().find("id");
    return (id && id->isString()) ? id->string() : "";
}

/** One line-oriented connection (stdin/stdout or a socket fd). */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Next input line (no terminator); false on EOF/error/drain. */
    virtual bool readLine(std::string &line) = 0;

    /** Write one line + '\n'; false once the peer is gone. */
    virtual bool writeLine(const std::string &line) = 0;
};

class StreamTransport : public Transport
{
  public:
    StreamTransport(std::istream &in, std::ostream &out)
        : in(in), out(out)
    {}

    bool
    readLine(std::string &line) override
    {
        if (drainRequested.load(std::memory_order_relaxed))
            return false;
        return static_cast<bool>(std::getline(in, line));
    }

    bool
    writeLine(const std::string &line) override
    {
        out << line << "\n";
        out.flush();
        return static_cast<bool>(out);
    }

  private:
    std::istream &in;
    std::ostream &out;
};

/** Buffered line I/O over a POSIX fd (Unix-socket connections). */
class FdTransport : public Transport
{
  public:
    explicit FdTransport(int fd) : fd(fd) {}

    bool
    readLine(std::string &line) override
    {
        line.clear();
        for (;;) {
            if (drainRequested.load(std::memory_order_relaxed))
                return false;
            std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue; // re-check the drain flag
                return false;
            }
            if (n == 0) {
                // EOF: deliver a final unterminated line, if any.
                if (buffer.empty())
                    return false;
                line.swap(buffer);
                return true;
            }
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

    bool
    writeLine(const std::string &line) override
    {
        std::string data = line + "\n";
        std::size_t off = 0;
        while (off < data.size()) {
            ssize_t n = ::write(fd, data.data() + off,
                                data.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

  private:
    int fd;
    std::string buffer;
};

struct QueuedRequest
{
    std::uint64_t seq = 0;
    Request request;

    /**
     * Response already computed at intake (a malformed line). Ready
     * entries ride the queue so their responses are written in seq
     * order with everything else, but never reach the engine; for
     * them `request` only carries the salvaged correlation id.
     */
    bool ready = false;
    Response response;
};

ServeSummary
serveTransport(EngineSession &engine, Transport &transport,
               const ServeOptions &options)
{
    const std::size_t max_queue = options.maxQueue > 0
                                      ? options.maxQueue
                                      : std::size_t{1};
    const unsigned max_batch =
        options.maxBatch > 0 ? options.maxBatch : 1u;

    ServeSummary summary;
    std::mutex mu;                // queue + summary
    std::condition_variable cv;
    std::deque<QueuedRequest> queue;
    bool intake_done = false;
    std::mutex write_mu;
    std::atomic<bool> write_failed{false};

    auto emit = [&](const Response &resp, const std::string &id,
                    std::uint64_t seq) {
        std::lock_guard<std::mutex> lock(write_mu);
        if (!transport.writeLine(responseToJsonLine(
                resp, id, seq, options.includeOutput)))
            write_failed.store(true);
    };

    // Intake: parse lines, shed on a full queue. Bad lines get their
    // error response here but are enqueued as ready entries so the
    // dispatcher writes them in seq order with the evaluated ones
    // (emitting directly from this thread raced the dispatcher's
    // writes and broke the strict ordering contract); only a full
    // queue falls back to an immediate out-of-band answer, exactly
    // like shedding. Runs concurrently with dispatch below.
    std::thread reader([&] {
        std::string line;
        std::uint64_t seq = 0;
        while (!write_failed.load() && transport.readLine(line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue; // blank keep-alive line
            ++seq;
            Result<Request> parsed = requestFromJson(line);
            if (!parsed.ok()) {
                Response resp;
                resp.status = parsed.status();
                resp.exitCode = 1;
                std::string salvaged = salvageRequestId(line);
                bool direct = false;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    ++summary.received;
                    ++summary.malformed;
                    if (queue.size() >= max_queue) {
                        direct = true;
                    } else {
                        QueuedRequest entry;
                        entry.seq = seq;
                        entry.ready = true;
                        entry.response = std::move(resp);
                        entry.request.id = salvaged;
                        queue.push_back(std::move(entry));
                    }
                }
                if (direct)
                    emit(resp, salvaged, seq);
                else
                    cv.notify_one();
                continue;
            }
            Request req = std::move(parsed).value();
            bool shed = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                ++summary.received;
                if (queue.size() >= max_queue) {
                    shed = true;
                    ++summary.shed;
                } else {
                    queue.push_back({seq, std::move(req)});
                }
            }
            if (shed) {
                Response resp;
                resp.status = Status(
                    StatusCode::ResourceExhausted,
                    msg("queue full (", max_queue,
                        " pending); request shed"));
                resp.exitCode = 1;
                resp.shed = true;
                emit(resp, req.id, seq);
            } else {
                cv.notify_one();
            }
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            intake_done = true;
        }
        cv.notify_one();
    });

    // Dispatch: pop a batch, evaluate it on the shared pool, write
    // the responses in seq order.
    for (;;) {
        std::vector<QueuedRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [&] { return !queue.empty() || intake_done; });
            if (queue.empty() && intake_done)
                break;
            // Metric-snapshot requests run alone: registry snapshots
            // are only consistent with no instrumented work in flight.
            while (!queue.empty() && batch.size() < max_batch) {
                if (queue.front().request.wantMetrics &&
                    !batch.empty())
                    break;
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
                if (batch.back().request.wantMetrics)
                    break;
            }
        }

        std::vector<Response> responses;
        if (batch.size() == 1) {
            if (batch[0].ready) {
                responses.push_back(std::move(batch[0].response));
            } else {
                const Request &req = batch[0].request;
                const bool with_metrics =
                    req.wantMetrics && Metrics::enabled();
                std::vector<MetricSnapshot> before;
                if (with_metrics)
                    before = Metrics::snapshot();
                Response resp = engine.handle(req);
                if (with_metrics) {
                    resp.metricsJson = metricsToJson(
                        snapshotDelta(before, Metrics::snapshot()));
                }
                responses.push_back(std::move(resp));
            }
        } else {
            responses = parallelMap<Response>(
                batch.size(),
                [&](std::size_t i) {
                    return batch[i].ready
                               ? std::move(batch[i].response)
                               : engine.handle(batch[i].request);
                },
                1, static_cast<unsigned>(batch.size()));
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!batch[i].ready) {
                // Ready entries were counted as malformed at intake;
                // only engine-evaluated requests tally here.
                std::lock_guard<std::mutex> lock(mu);
                ++summary.evaluated;
                if (!responses[i].ok())
                    ++summary.failed;
            }
            emit(responses[i], batch[i].request.id, batch[i].seq);
        }
    }

    reader.join();
    return summary;
}

void
accumulate(ServeSummary &total, const ServeSummary &part)
{
    total.received += part.received;
    total.evaluated += part.evaluated;
    total.failed += part.failed;
    total.shed += part.shed;
    total.malformed += part.malformed;
}

} // namespace

ServeSummary
serveLines(EngineSession &engine, std::istream &in, std::ostream &out,
           const ServeOptions &options)
{
    StreamTransport transport(in, out);
    return serveTransport(engine, transport, options);
}

Result<ServeSummary>
serveUnixSocket(EngineSession &engine, const std::string &socket_path,
                const ServeOptions &options)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        return Status(StatusCode::InvalidArgument,
                      msg("socket path too long (",
                          socket_path.size(), " bytes, max ",
                          sizeof(addr.sun_path) - 1, "): ",
                          socket_path));
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status(StatusCode::Internal,
                      msg("socket(): ", std::strerror(errno)));
    }
    ::unlink(socket_path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status s(StatusCode::InvalidArgument,
                 msg("bind(", socket_path,
                     "): ", std::strerror(errno)));
        ::close(fd);
        return s;
    }
    if (::listen(fd, 8) != 0) {
        Status s(StatusCode::Internal,
                 msg("listen(", socket_path,
                     "): ", std::strerror(errno)));
        ::close(fd);
        ::unlink(socket_path.c_str());
        return s;
    }

    // One connection at a time; the engine's warm cache spans them.
    ServeSummary total;
    while (!drainRequested.load(std::memory_order_relaxed)) {
        int client = ::accept(fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue; // drain flag re-checked above
            Status s(StatusCode::Internal,
                     msg("accept(): ", std::strerror(errno)));
            ::close(fd);
            ::unlink(socket_path.c_str());
            return s;
        }
        FdTransport transport(client);
        accumulate(total, serveTransport(engine, transport, options));
        ::close(client);
    }
    ::close(fd);
    ::unlink(socket_path.c_str());
    return total;
}

void
requestServeDrain()
{
    drainRequested.store(true, std::memory_order_relaxed);
}

bool
serveDraining()
{
    return drainRequested.load(std::memory_order_relaxed);
}

void
resetServeDrain()
{
    drainRequested.store(false, std::memory_order_relaxed);
}

} // namespace gpumech
