/**
 * @file
 * Naive interval baseline (paper Eq. 1, Table II "Naive_Interval").
 *
 * Predicts the multithreaded core IPC as the single-warp IPC times the
 * warp count — the "optimistic overlap" assumption that every
 * instruction of the remaining warps hides the representative warp's
 * stalls. Capped at the machine's issue rate (the physical bound
 * implicit in Eq. 1's users).
 */

#ifndef GPUMECH_BASELINES_NAIVE_INTERVAL_HH
#define GPUMECH_BASELINES_NAIVE_INTERVAL_HH

#include "common/config.hh"
#include "core/interval.hh"

namespace gpumech
{

/** Prediction of a baseline multithreading model. */
struct BaselinePrediction
{
    double ipc = 0.0;
    double cpi = 0.0;
};

/**
 * Run the naive interval model (Eq. 1).
 *
 * @param rep representative warp's interval profile
 * @param num_warps warps per core
 * @param config machine description (issue rate)
 */
BaselinePrediction naiveInterval(const IntervalProfile &rep,
                                 std::uint32_t num_warps,
                                 const HardwareConfig &config);

} // namespace gpumech

#endif // GPUMECH_BASELINES_NAIVE_INTERVAL_HH
