/**
 * @file
 * Markov-chain multithreading baseline (Chen & Aamodt, HPCA'09;
 * paper Section VIII-A, Table II "Markov_Chain").
 *
 * Each warp is a two-state Markov chain: activated (can issue) or
 * suspended (stalled). The activated->suspended transition probability
 * p and the mean suspension length M are derived from the
 * representative warp's interval profile; the steady-state probability
 * of being activated is 1 / (1 + p*M), and core throughput is the
 * probability that at least one of the N independent warps is
 * activated in a cycle. The model does not represent any scheduling
 * policy and assumes at most one outstanding request per warp — the
 * two limitations Section VIII-A identifies.
 */

#ifndef GPUMECH_BASELINES_MARKOV_CHAIN_HH
#define GPUMECH_BASELINES_MARKOV_CHAIN_HH

#include "baselines/naive_interval.hh"
#include "common/config.hh"
#include "core/interval.hh"

namespace gpumech
{

/** Derived Markov-chain parameters (exposed for tests). */
struct MarkovParams
{
    double p = 0.0;         //!< P(activated -> suspended) per issue
    double m = 0.0;         //!< mean suspension length in cycles
    double piActive = 0.0;  //!< steady-state activated probability
};

/** Derive p, M and the steady state from an interval profile. */
MarkovParams markovParams(const IntervalProfile &rep);

/**
 * Run the Markov-chain model.
 *
 * @param rep representative warp's interval profile
 * @param num_warps warps per core
 * @param config machine description (issue rate)
 */
BaselinePrediction markovChain(const IntervalProfile &rep,
                               std::uint32_t num_warps,
                               const HardwareConfig &config);

} // namespace gpumech

#endif // GPUMECH_BASELINES_MARKOV_CHAIN_HH
