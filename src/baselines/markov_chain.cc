#include "baselines/markov_chain.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpumech
{

MarkovParams
markovParams(const IntervalProfile &rep)
{
    MarkovParams params;
    double insts = static_cast<double>(rep.totalInsts());
    if (insts == 0.0)
        return params;

    // A warp suspends after the last instruction of each stalling
    // interval: p = stalling intervals / instructions issued.
    double stalling = 0.0;
    double stall_cycles = 0.0;
    for (const auto &interval : rep.intervals) {
        if (interval.stallCycles > 0.0) {
            stalling += 1.0;
            stall_cycles += interval.stallCycles;
        }
    }
    params.p = stalling / insts;
    params.m = stalling > 0.0 ? stall_cycles / stalling : 0.0;
    params.piActive = 1.0 / (1.0 + params.p * params.m);
    return params;
}

BaselinePrediction
markovChain(const IntervalProfile &rep, std::uint32_t num_warps,
            const HardwareConfig &config)
{
    if (num_warps == 0)
        panic("markovChain: need at least one warp");

    MarkovParams params = markovParams(rep);
    BaselinePrediction result;

    // Utilization: probability at least one of the N independent
    // warps is activated in a cycle.
    double idle = std::pow(1.0 - params.piActive,
                           static_cast<double>(num_warps));
    result.ipc = (1.0 - idle) * config.issueRate;
    result.cpi = result.ipc > 0.0 ? 1.0 / result.ipc : 0.0;
    return result;
}

} // namespace gpumech
