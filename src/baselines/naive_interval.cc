#include "baselines/naive_interval.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

BaselinePrediction
naiveInterval(const IntervalProfile &rep, std::uint32_t num_warps,
              const HardwareConfig &config)
{
    if (num_warps == 0)
        panic("naiveInterval: need at least one warp");
    BaselinePrediction result;
    double single = rep.warpPerf(config.issueRate);
    result.ipc = std::min(single * static_cast<double>(num_warps),
                          config.issueRate);
    result.cpi = result.ipc > 0.0 ? 1.0 / result.ipc : 0.0;
    return result;
}

} // namespace gpumech
