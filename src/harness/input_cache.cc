#include "harness/input_cache.hh"

#include "common/isolation.hh"
#include "common/logging.hh"

namespace gpumech
{

std::shared_ptr<const KernelTrace>
InputCache::trace(const Workload &workload,
                  const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Cache);
    return traces.getOrCompute(
        msg(workload.name, '|', config.traceKey()), [&] {
            evalCheckpoint(FaultSite::Parse);
            return workload.generate(config);
        });
}

std::shared_ptr<const CollectorResult>
InputCache::inputs(const Workload &workload,
                   const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Cache);
    return collected.getOrCompute(
        msg(workload.name, '|', config.collectorKey()), [&] {
            return collectInputsParallel(*trace(workload, config),
                                         config);
        });
}

ProfiledKernel
InputCache::profiler(const Workload &workload,
                     const HardwareConfig &config,
                     RepSelection selection,
                     std::uint32_t num_clusters)
{
    evalCheckpoint(FaultSite::Cache);
    std::string key =
        msg(workload.name, '|', config.collectorKey(),
            "|ir=", config.issueRate, '|', toString(selection), '|',
            num_clusters);
    auto entry = profilers.getOrCompute(key, [&] {
        ProfiledKernel pk;
        pk.trace = trace(workload, config);
        pk.profiler = std::make_shared<const GpuMechProfiler>(
            *pk.trace, config, selection, num_clusters, 1,
            inputs(workload, config));
        return pk;
    });
    return *entry;
}

void
InputCache::clear()
{
    traces.clear();
    collected.clear();
    profilers.clear();
}

} // namespace gpumech
