#include "harness/input_cache.hh"

#include "collector/mrc_collector.hh"
#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace gpumech
{

namespace
{

/**
 * Cache observability, per key class. Lookups and misses are counted
 * separately (hits = lookups - misses); MemoCache never evicts on
 * capacity, so cache.evictions only counts entries dropped by an
 * explicit clear(). cache.trace.bytes is the flat-trace heap footprint
 * of freshly generated traces — what the cache is holding for reuse.
 */
struct CacheMetrics
{
    Counter traceLookups{"cache.trace.lookups"};
    Counter traceMisses{"cache.trace.misses"};
    Counter traceBytes{"cache.trace.bytes"};
    Counter collectorLookups{"cache.collector.lookups"};
    Counter collectorMisses{"cache.collector.misses"};
    Counter profilerLookups{"cache.profiler.lookups"};
    Counter profilerMisses{"cache.profiler.misses"};
    Counter mrcLookups{"cache.mrc.lookups"};
    Counter mrcMisses{"cache.mrc.misses"};
    Counter evictions{"cache.evictions"};
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

std::shared_ptr<const KernelTrace>
InputCache::trace(const Workload &workload,
                  const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Cache);
    cacheMetrics().traceLookups.add();
    return traces.getOrCompute(
        msg(workload.name, '|', config.traceKey()), [&] {
            cacheMetrics().traceMisses.add();
            Span span("parse", workload.name);
            evalCheckpoint(FaultSite::Parse);
            KernelTrace kernel = workload.generate(config);
            cacheMetrics().traceBytes.add(kernel.memoryFootprint());
            return kernel;
        });
}

std::shared_ptr<const CollectorResult>
InputCache::inputs(const Workload &workload,
                   const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Cache);
    cacheMetrics().collectorLookups.add();
    return collected.getOrCompute(
        msg(workload.name, '|', config.collectorKey()), [&] {
            cacheMetrics().collectorMisses.add();
            std::shared_ptr<const KernelTrace> kernel =
                trace(workload, config);
            Span span("collect", workload.name);
            return collectInputsParallel(*kernel, config);
        });
}

ProfiledKernel
InputCache::profiler(const Workload &workload,
                     const HardwareConfig &config,
                     RepSelection selection,
                     std::uint32_t num_clusters)
{
    evalCheckpoint(FaultSite::Cache);
    cacheMetrics().profilerLookups.add();
    std::string key =
        msg(workload.name, '|', config.collectorKey(),
            "|ir=", config.issueRate, '|', toString(selection), '|',
            num_clusters);
    auto entry = profilers.getOrCompute(key, [&] {
        cacheMetrics().profilerMisses.add();
        ProfiledKernel pk;
        pk.trace = trace(workload, config);
        std::shared_ptr<const CollectorResult> collected =
            inputs(workload, config);
        Span span("profile", workload.name);
        pk.profiler = std::make_shared<const GpuMechProfiler>(
            *pk.trace, config, selection, num_clusters, 1,
            std::move(collected));
        return pk;
    });
    return *entry;
}

std::shared_ptr<const MrcProfile>
InputCache::mrc(const Workload &workload, const HardwareConfig &config,
                double sampling_rate)
{
    evalCheckpoint(FaultSite::Cache);
    cacheMetrics().mrcLookups.add();
    return mrcs.getOrCompute(
        msg(workload.name, '|', config.traceKey(),
            "|mrc=", sampling_rate),
        [&] {
            cacheMetrics().mrcMisses.add();
            std::shared_ptr<const KernelTrace> kernel =
                trace(workload, config);
            Span span("mrc", workload.name);
            return collectMrcProfile(*kernel, config, sampling_rate);
        });
}

ProfiledKernel
InputCache::mrcProfiler(const Workload &workload,
                        const HardwareConfig &config,
                        double sampling_rate, RepSelection selection,
                        std::uint32_t num_clusters)
{
    evalCheckpoint(FaultSite::Cache);
    cacheMetrics().profilerLookups.add();
    std::string key =
        msg(workload.name, '|', config.collectorKey(),
            "|ir=", config.issueRate, '|', toString(selection), '|',
            num_clusters, "|mrc=", sampling_rate);
    auto entry = mrcProfilers.getOrCompute(key, [&] {
        cacheMetrics().profilerMisses.add();
        ProfiledKernel pk;
        pk.trace = trace(workload, config);
        std::shared_ptr<const MrcProfile> profile =
            mrc(workload, config, sampling_rate);
        Span span("profile", workload.name);
        pk.profiler = std::make_shared<const GpuMechProfiler>(
            *pk.trace, config, selection, num_clusters, 1, nullptr,
            std::move(profile));
        return pk;
    });
    return *entry;
}

void
InputCache::clear()
{
    cacheMetrics().evictions.add(traces.size() + collected.size() +
                                 profilers.size() + mrcs.size() +
                                 mrcProfilers.size());
    traces.clear();
    collected.clear();
    profilers.clear();
    mrcs.clear();
    mrcProfilers.clear();
}

} // namespace gpumech
