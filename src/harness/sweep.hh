/**
 * @file
 * Configuration-sweep helper for the Figure 13/14/15 benches: runs
 * the full model-vs-oracle comparison at each configuration point and
 * aggregates the average error per model.
 */

#ifndef GPUMECH_HARNESS_SWEEP_HH
#define GPUMECH_HARNESS_SWEEP_HH

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace gpumech
{

/** One sweep point: a labeled configuration. */
struct SweepPoint
{
    std::string label;
    HardwareConfig config;
};

/** Average error of each model at each sweep point. */
struct SweepResult
{
    std::vector<std::string> labels;
    /** averages[model][point] = mean relative error. */
    std::map<ModelKind, std::vector<double>> averages;
};

/**
 * Run a sweep: evaluate every workload at every point and average the
 * per-kernel errors per model.
 *
 * @param workloads kernels to evaluate
 * @param points labeled configurations
 * @param policy scheduling policy
 * @param verbose log progress via inform()
 */
SweepResult runSweep(const std::vector<Workload> &workloads,
                     const std::vector<SweepPoint> &points,
                     SchedulingPolicy policy, bool verbose = false);

/** Render a sweep as a table (rows = models, columns = points). */
void printSweep(std::ostream &os, const SweepResult &result);

/** Render a sweep as CSV (same layout, machine readable). */
void printSweepCsv(std::ostream &os, const SweepResult &result);

} // namespace gpumech

#endif // GPUMECH_HARNESS_SWEEP_HH
