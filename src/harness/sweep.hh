/**
 * @file
 * Configuration-sweep helper for the Figure 13/14/15 benches: runs
 * the full model-vs-oracle comparison at each configuration point and
 * aggregates the average error per model.
 */

#ifndef GPUMECH_HARNESS_SWEEP_HH
#define GPUMECH_HARNESS_SWEEP_HH

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace gpumech
{

/** One sweep point: a labeled configuration. */
struct SweepPoint
{
    std::string label;
    HardwareConfig config;
};

/**
 * Sweep evaluation knobs. The default (SweepMode::Rerun, rate 1)
 * reproduces the historical behaviour bit-for-bit; SweepMode::Mrc
 * derives each cell's cache behaviour from one shared reuse-distance
 * profile per kernel (see harness/experiment.hh).
 */
struct SweepOptions
{
    SweepMode mode = SweepMode::Rerun;
    double mrcRate = 1.0; //!< SHARDS sampling rate for SweepMode::Mrc
};

/** One contained per-cell failure of a sweep. */
struct SweepFailure
{
    std::string point;  //!< sweep-point label
    std::string kernel; //!< workload name
    Status status;      //!< the contained failure
};

/** Average error of each model at each sweep point. */
struct SweepResult
{
    std::vector<std::string> labels;
    /** averages[model][point] = mean relative error. */
    std::map<ModelKind, std::vector<double>> averages;

    /**
     * Failed (point, kernel) cells. Averages are over the surviving
     * kernels of each point; a point whose kernels all failed reports
     * 0 (mean of nothing).
     */
    std::vector<SweepFailure> failures;

    /**
     * Per point: true when any kernel's model inputs were
     * MRC-approximate at that point (SweepMode::Mrc only; rerun
     * sweeps leave every entry false). printSweepCsv appends an
     * "mrc_approx" 0/1 row when any entry is set, so machine
     * consumers of the CSV see the signal the text report prints.
     */
    std::vector<bool> mrcApproximate;

    bool anyMrcApproximate() const
    {
        for (bool b : mrcApproximate) {
            if (b)
                return true;
        }
        return false;
    }

    bool complete() const { return failures.empty(); }
};

/**
 * Run a sweep: evaluate every workload at every point and average the
 * per-kernel errors per model.
 *
 * The (point x workload) grid fans out across the shared thread pool,
 * and an input cache is shared across the whole sweep: points that
 * only differ in model parameters (MSHR count, DRAM bandwidth) reuse
 * each workload's trace, collector result, and warp profiles instead
 * of recomputing them. Result layout and every number are
 * bit-identical to a serial, uncached sweep.
 *
 * @param workloads kernels to evaluate
 * @param points labeled configurations
 * @param policy scheduling policy
 * @param verbose log progress via inform()
 * @param jobs total threads; 0 = defaultJobs(), 1 = serial
 * @param cache shared input cache; nullptr uses one private to this
 *        sweep
 * @param isolation per-kernel deadline / fault plan; a failing cell
 *        lands in SweepResult::failures, the rest of the grid still
 *        runs
 * @param options sweep mode (rerun vs MRC-derived) and sampling rate
 */
SweepResult runSweep(const std::vector<Workload> &workloads,
                     const std::vector<SweepPoint> &points,
                     SchedulingPolicy policy, bool verbose = false,
                     unsigned jobs = 0, InputCache *cache = nullptr,
                     const IsolationOptions &isolation = {},
                     const SweepOptions &options = {});

struct EvalSession;

/**
 * Session-based sweep: runSweep with the session's cache, jobs, and
 * isolation defaults (see harness/session.hh).
 */
SweepResult runSweep(EvalSession &session,
                     const std::vector<Workload> &workloads,
                     const std::vector<SweepPoint> &points,
                     SchedulingPolicy policy, bool verbose = false,
                     const SweepOptions &options = {});

/** Render a sweep as a table (rows = models, columns = points). */
void printSweep(std::ostream &os, const SweepResult &result);

/** Render a sweep as CSV (same layout, machine readable). */
void printSweepCsv(std::ostream &os, const SweepResult &result);

} // namespace gpumech

#endif // GPUMECH_HARNESS_SWEEP_HH
