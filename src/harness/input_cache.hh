/**
 * @file
 * Keyed input cache for the evaluation harness.
 *
 * Sweeps that only vary model parameters (MSHR count, DRAM bandwidth,
 * issue rate — figs 13-15's non-warp axes) used to re-generate the
 * kernel trace, re-run the functional cache simulation, and re-profile
 * every warp at every point. InputCache memoizes the three artifacts
 * by (workload, relevant-config-fields) keys:
 *
 *   trace     (workload.name, HardwareConfig::traceKey())
 *   collector (workload.name, HardwareConfig::collectorKey())
 *   profiler  (collector key + issue rate + selection + k)
 *   mrc       (workload.name, traceKey(), sampling rate)
 *   mrcProfiler (profiler key + sampling rate)
 *
 * The mrc entries back --sweep-mode=mrc cache-geometry sweeps: the
 * reuse-distance profile is keyed only by trace-shaping fields
 * (traceKey), so every cache-geometry cell of a sweep shares ONE
 * profile, and each cell's collector result is derived from it in
 * O(histogram) time instead of a functional-simulation walk.
 *
 * Every artifact is a deterministic function of its key, so cached
 * evaluation results are bit-identical to fresh ones (asserted by
 * tests/test_parallel.cc). All lookups are thread-safe and
 * compute-once, so a parallel sweep's points share work instead of
 * duplicating it.
 */

#ifndef GPUMECH_HARNESS_INPUT_CACHE_HH
#define GPUMECH_HARNESS_INPUT_CACHE_HH

#include <memory>
#include <string>

#include "common/memo.hh"
#include "core/gpumech.hh"
#include "workloads/workload.hh"

namespace gpumech
{

/** A cached profiler plus the trace that keeps its reference valid. */
struct ProfiledKernel
{
    std::shared_ptr<const KernelTrace> trace;
    std::shared_ptr<const GpuMechProfiler> profiler;
};

/** Shared memoization of traces, collector results, and profilers. */
class InputCache
{
  public:
    /** Kernel trace for a workload at a configuration. */
    std::shared_ptr<const KernelTrace>
    trace(const Workload &workload, const HardwareConfig &config);

    /** Collector result for a workload at a configuration. */
    std::shared_ptr<const CollectorResult>
    inputs(const Workload &workload, const HardwareConfig &config);

    /**
     * Fully-profiled kernel (inputs + all warp profiles + selected
     * representative). The profiler may have been constructed at a
     * different configuration with the same key, so evaluate through
     * GpuMechProfiler::evaluateAt(config, ...) — never evaluate() —
     * when using a cached profiler.
     */
    ProfiledKernel
    profiler(const Workload &workload, const HardwareConfig &config,
             RepSelection selection = RepSelection::Clustering,
             std::uint32_t num_clusters = 2);

    /**
     * Reuse-distance profile for a workload (collector/mrc_collector
     * .hh). Keyed by trace-shaping fields only — cache geometry does
     * not participate — so one entry serves a whole geometry sweep.
     *
     * @param sampling_rate SHARDS rate in (0, 1]; part of the key
     */
    std::shared_ptr<const MrcProfile>
    mrc(const Workload &workload, const HardwareConfig &config,
        double sampling_rate = 1.0);

    /**
     * Like profiler(), but the GpuMechProfiler carries the shared
     * reuse-distance profile: its collector inputs (and every
     * evaluateAt() re-collection) are derived from the profile instead
     * of simulated. Evaluate through evaluateAt(config, ...), exactly
     * as with profiler().
     */
    ProfiledKernel
    mrcProfiler(const Workload &workload, const HardwareConfig &config,
                double sampling_rate = 1.0,
                RepSelection selection = RepSelection::Clustering,
                std::uint32_t num_clusters = 2);

    std::size_t traceHits() const { return traces.hits(); }
    std::size_t traceMisses() const { return traces.misses(); }
    std::size_t collectorHits() const { return collected.hits(); }
    std::size_t collectorMisses() const { return collected.misses(); }
    std::size_t profilerHits() const { return profilers.hits(); }
    std::size_t profilerMisses() const { return profilers.misses(); }
    std::size_t mrcHits() const { return mrcs.hits(); }
    std::size_t mrcMisses() const { return mrcs.misses(); }

    /** Drop every cached artifact. */
    void clear();

  private:
    MemoCache<KernelTrace> traces;
    MemoCache<CollectorResult> collected;
    MemoCache<ProfiledKernel> profilers;
    MemoCache<MrcProfile> mrcs;
    MemoCache<ProfiledKernel> mrcProfilers;
};

} // namespace gpumech

#endif // GPUMECH_HARNESS_INPUT_CACHE_HH
