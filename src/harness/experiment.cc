#include "harness/experiment.hh"

#include "baselines/markov_chain.hh"
#include "baselines/naive_interval.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace gpumech
{

std::string
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::NaiveInterval:
        return "Naive_Interval";
      case ModelKind::MarkovChain:
        return "Markov_Chain";
      case ModelKind::MT:
        return "MT";
      case ModelKind::MT_MSHR:
        return "MT_MSHR";
      case ModelKind::MT_MSHR_BAND:
        return "MT_MSHR_BAND";
    }
    return "?";
}

const std::vector<ModelKind> &
allModels()
{
    static const std::vector<ModelKind> models = {
        ModelKind::NaiveInterval, ModelKind::MarkovChain, ModelKind::MT,
        ModelKind::MT_MSHR, ModelKind::MT_MSHR_BAND};
    return models;
}

double
KernelEvaluation::error(ModelKind kind) const
{
    auto it = predictedIpc.find(kind);
    if (it == predictedIpc.end())
        panic(msg("no prediction recorded for ", toString(kind)));
    return relativeError(it->second, oracleIpc);
}

KernelEvaluation
evaluateKernel(const Workload &workload, const HardwareConfig &config,
               SchedulingPolicy policy,
               const std::vector<ModelKind> &models)
{
    KernelTrace kernel = workload.generate(config);
    KernelEvaluation eval;
    eval.kernel = workload.name;
    eval.policy = policy;

    GpuTiming oracle(kernel, config, policy);
    TimingStats stats = oracle.run();
    eval.oracleCpi = stats.cpi();
    eval.oracleIpc = eval.oracleCpi > 0.0 ? 1.0 / eval.oracleCpi : 0.0;

    GpuMechProfiler profiler(kernel, config);
    const IntervalProfile &rep = profiler.repProfile();

    for (ModelKind kind : models) {
        double ipc = 0.0;
        switch (kind) {
          case ModelKind::NaiveInterval:
            ipc = naiveInterval(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MarkovChain:
            ipc = markovChain(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MT:
            ipc = profiler.evaluate(policy, ModelLevel::MT).ipc;
            break;
          case ModelKind::MT_MSHR:
            ipc = profiler.evaluate(policy, ModelLevel::MT_MSHR).ipc;
            break;
          case ModelKind::MT_MSHR_BAND:
            ipc = profiler.evaluate(policy,
                                    ModelLevel::MT_MSHR_BAND).ipc;
            break;
        }
        eval.predictedIpc[kind] = ipc;
    }
    return eval;
}

std::vector<KernelEvaluation>
evaluateSuite(const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models, bool verbose)
{
    std::vector<KernelEvaluation> evals;
    evals.reserve(workloads.size());
    for (const auto &workload : workloads) {
        if (verbose)
            inform(msg("evaluating ", workload.name, " (",
                       toString(policy), ")"));
        evals.push_back(evaluateKernel(workload, config, policy,
                                       models));
    }
    return evals;
}

double
averageError(const std::vector<KernelEvaluation> &evals, ModelKind kind)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals)
        errors.push_back(eval.error(kind));
    return mean(errors);
}

double
fractionWithin(const std::vector<KernelEvaluation> &evals,
               ModelKind kind, double threshold)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals)
        errors.push_back(eval.error(kind));
    return fractionBelow(errors, threshold);
}

StackEvaluation
evaluateStack(const Workload &workload, const HardwareConfig &config,
              SchedulingPolicy policy)
{
    KernelTrace kernel = workload.generate(config);
    StackEvaluation result;
    GpuTiming oracle(kernel, config, policy);
    result.oracle = oracle.run();
    result.model = runGpuMech(kernel, config,
                              GpuMechOptions{policy,
                                             ModelLevel::MT_MSHR_BAND,
                                             RepSelection::Clustering,
                                             2});
    return result;
}

} // namespace gpumech
