#include "harness/experiment.hh"

#include "baselines/markov_chain.hh"
#include "baselines/naive_interval.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"

namespace gpumech
{

namespace
{

/** Harness-level observability (no-ops while metrics are disabled). */
struct HarnessMetrics
{
    Counter kernels{"harness.kernels"};
    Counter containedFailures{"harness.contained_failures"};
    /** Margin left on the watchdog when a kernel finished in time. */
    Histogram deadlineMarginMs{"harness.deadline_margin.ms"};
};

HarnessMetrics &
harnessMetrics()
{
    static HarnessMetrics m;
    return m;
}

} // namespace

std::string
toString(SweepMode mode)
{
    switch (mode) {
      case SweepMode::Rerun:
        return "rerun";
      case SweepMode::Mrc:
        return "mrc";
    }
    return "?";
}

bool
parseSweepMode(const std::string &text, SweepMode &out)
{
    if (text == "rerun") {
        out = SweepMode::Rerun;
        return true;
    }
    if (text == "mrc") {
        out = SweepMode::Mrc;
        return true;
    }
    return false;
}

std::string
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::NaiveInterval:
        return "Naive_Interval";
      case ModelKind::MarkovChain:
        return "Markov_Chain";
      case ModelKind::MT:
        return "MT";
      case ModelKind::MT_MSHR:
        return "MT_MSHR";
      case ModelKind::MT_MSHR_BAND:
        return "MT_MSHR_BAND";
    }
    return "?";
}

const std::vector<ModelKind> &
allModels()
{
    static const std::vector<ModelKind> models = {
        ModelKind::NaiveInterval, ModelKind::MarkovChain, ModelKind::MT,
        ModelKind::MT_MSHR, ModelKind::MT_MSHR_BAND};
    return models;
}

double
KernelEvaluation::error(ModelKind kind) const
{
    if (!status.ok())
        panic(msg("error() on failed evaluation of ", kernel, ": ",
                  status.toString()));
    auto it = predictedIpc.find(kind);
    if (it == predictedIpc.end())
        panic(msg("no prediction recorded for ", toString(kind)));
    return relativeError(it->second, oracleIpc);
}

namespace
{

/**
 * Per-kernel containment boundary. Installs the thread-local
 * isolation frame (deadline token + fault plan) around @p fn and
 * converts anything it throws into a returned Status, so one kernel's
 * failure cannot take down its siblings or the process. A fresh token
 * is minted per call: the deadline covers one kernel's evaluation,
 * not the whole suite.
 */
template <typename Fn>
Status
runContained(const std::string &kernel_name,
             const IsolationOptions &isolation, Fn &&fn)
{
    CancelToken token =
        CancelToken::withTimeoutMs(isolation.kernelTimeoutMs);
    ScopedEvalContext scope(kernel_name, token, isolation.faultPlan);
    Span span("kernel", kernel_name);
    harnessMetrics().kernels.add();
    try {
        fn();
        if (token.active() && Metrics::enabled())
            harnessMetrics().deadlineMarginMs.observe(
                token.remainingMs());
        return Status();
    } catch (const StatusException &e) {
        harnessMetrics().containedFailures.add();
        return e.status().withContext(msg("kernel ", kernel_name));
    } catch (const std::exception &e) {
        harnessMetrics().containedFailures.add();
        return Status(StatusCode::Internal,
                      msg("kernel ", kernel_name,
                          ": unexpected exception: ", e.what()));
    }
}

/** Model predictions for one kernel given its (possibly cached)
 *  profiler. Evaluation goes through evaluateAt so a profiler cached
 *  at a key-equal configuration still sees this point's MSHR/bandwidth
 *  values. */
void
predictModels(KernelEvaluation &eval, const GpuMechProfiler &profiler,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models)
{
    const IntervalProfile &rep = profiler.repProfile();
    for (ModelKind kind : models) {
        double ipc = 0.0;
        switch (kind) {
          case ModelKind::NaiveInterval:
            ipc = naiveInterval(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MarkovChain:
            ipc = markovChain(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MT:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT).ipc;
            break;
          case ModelKind::MT_MSHR:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT_MSHR).ipc;
            break;
          case ModelKind::MT_MSHR_BAND:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT_MSHR_BAND).ipc;
            break;
        }
        eval.predictedIpc[kind] = ipc;
    }
}

} // namespace

KernelEvaluation
evaluateKernel(const Workload &workload, const HardwareConfig &config,
               SchedulingPolicy policy,
               const std::vector<ModelKind> &models, InputCache *cache,
               const IsolationOptions &isolation, SweepMode mode,
               double mrc_rate)
{
    KernelEvaluation eval;
    eval.kernel = workload.name;
    eval.policy = policy;

    // The MRC fast path needs a cache to share the reuse-distance
    // profile across cells; without one, fall back to a call-local
    // cache (correct, just no cross-call reuse).
    InputCache local;
    if (mode == SweepMode::Mrc && !cache)
        cache = &local;

    eval.status = runContained(workload.name, isolation, [&] {
        if (cache) {
            std::shared_ptr<const KernelTrace> kernel =
                cache->trace(workload, config);
            {
                Span span("oracle", workload.name);
                GpuTiming oracle(*kernel, config, policy);
                TimingStats stats = oracle.run();
                eval.oracleCpi = stats.cpi();
            }
            eval.oracleIpc =
                eval.oracleCpi > 0.0 ? 1.0 / eval.oracleCpi : 0.0;
            ProfiledKernel pk = mode == SweepMode::Mrc
                ? cache->mrcProfiler(workload, config, mrc_rate)
                : cache->profiler(workload, config);
            if (mode == SweepMode::Mrc) {
                const CollectorResult &inputs = pk.profiler->inputs();
                eval.mrcApproximate = inputs.mrcApproximate;
                eval.mrcApproximation = inputs.mrcApproximation;
            }
            predictModels(eval, *pk.profiler, config, policy, models);
            return;
        }

        evalCheckpoint(FaultSite::Parse);
        KernelTrace kernel = [&] {
            Span span("parse", workload.name);
            return workload.generate(config);
        }();
        {
            Span span("oracle", workload.name);
            GpuTiming oracle(kernel, config, policy);
            TimingStats stats = oracle.run();
            eval.oracleCpi = stats.cpi();
        }
        eval.oracleIpc =
            eval.oracleCpi > 0.0 ? 1.0 / eval.oracleCpi : 0.0;

        GpuMechProfiler profiler(kernel, config);
        predictModels(eval, profiler, config, policy, models);
    });
    return eval;
}

std::vector<KernelEvaluation>
evaluateSuite(const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models, bool verbose,
              unsigned jobs, InputCache *cache,
              const IsolationOptions &isolation)
{
    // Each evaluation is independent: own trace, own timing oracle,
    // own profiler. Fan out over the shared pool; parallelMap keeps
    // slot order, so results match the serial path exactly. Failures
    // are contained inside evaluateKernel, so one bad kernel never
    // aborts the map.
    return parallelMap<KernelEvaluation>(
        workloads.size(),
        [&](std::size_t i) {
            if (verbose)
                inform(msg("evaluating ", workloads[i].name, " (",
                           toString(policy), ")"));
            return evaluateKernel(workloads[i], config, policy, models,
                                  cache, isolation);
        },
        1, jobs);
}

std::vector<KernelPrediction>
predictSuite(const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options, unsigned jobs,
             InputCache *cache, const IsolationOptions &isolation)
{
    return parallelMap<KernelPrediction>(
        workloads.size(),
        [&](std::size_t i) {
            KernelPrediction pred;
            pred.kernel = workloads[i].name;
            pred.status = runContained(
                workloads[i].name, isolation, [&] {
                    if (cache) {
                        ProfiledKernel pk = cache->profiler(
                            workloads[i], config, options.selection,
                            options.numClusters);
                        pred.result = pk.profiler->evaluateAt(
                            config, options.policy, options.level,
                            options.modelSfu);
                        return;
                    }
                    evalCheckpoint(FaultSite::Parse);
                    KernelTrace kernel = [&] {
                        Span span("parse", workloads[i].name);
                        return workloads[i].generate(config);
                    }();
                    pred.result = runGpuMech(kernel, config, options);
                });
            return pred;
        },
        1, jobs);
}

std::size_t
countFailures(const std::vector<KernelEvaluation> &evals)
{
    std::size_t n = 0;
    for (const auto &eval : evals)
        n += eval.ok() ? 0 : 1;
    return n;
}

std::size_t
countFailures(const std::vector<KernelPrediction> &preds)
{
    std::size_t n = 0;
    for (const auto &pred : preds)
        n += pred.ok() ? 0 : 1;
    return n;
}

namespace
{

template <typename Entry>
std::string
summarizeFailures(const std::vector<Entry> &entries)
{
    std::string out;
    for (const auto &entry : entries) {
        if (entry.ok())
            continue;
        if (!out.empty())
            out += '\n';
        out += msg(entry.kernel, ": ", entry.status.toString());
    }
    return out;
}

} // namespace

std::string
failureSummary(const std::vector<KernelEvaluation> &evals)
{
    return summarizeFailures(evals);
}

std::string
failureSummary(const std::vector<KernelPrediction> &preds)
{
    return summarizeFailures(preds);
}

double
averageError(const std::vector<KernelEvaluation> &evals, ModelKind kind)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals) {
        if (eval.ok())
            errors.push_back(eval.error(kind));
    }
    return mean(errors);
}

double
fractionWithin(const std::vector<KernelEvaluation> &evals,
               ModelKind kind, double threshold)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals) {
        if (eval.ok())
            errors.push_back(eval.error(kind));
    }
    return fractionBelow(errors, threshold);
}

StackEvaluation
evaluateStack(const Workload &workload, const HardwareConfig &config,
              SchedulingPolicy policy)
{
    KernelTrace kernel = workload.generate(config);
    StackEvaluation result;
    GpuTiming oracle(kernel, config, policy);
    result.oracle = oracle.run();
    result.model = runGpuMech(kernel, config,
                              GpuMechOptions{policy,
                                             ModelLevel::MT_MSHR_BAND,
                                             RepSelection::Clustering,
                                             2});
    return result;
}

} // namespace gpumech
