#include "harness/experiment.hh"

#include "baselines/markov_chain.hh"
#include "baselines/naive_interval.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace gpumech
{

std::string
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::NaiveInterval:
        return "Naive_Interval";
      case ModelKind::MarkovChain:
        return "Markov_Chain";
      case ModelKind::MT:
        return "MT";
      case ModelKind::MT_MSHR:
        return "MT_MSHR";
      case ModelKind::MT_MSHR_BAND:
        return "MT_MSHR_BAND";
    }
    return "?";
}

const std::vector<ModelKind> &
allModels()
{
    static const std::vector<ModelKind> models = {
        ModelKind::NaiveInterval, ModelKind::MarkovChain, ModelKind::MT,
        ModelKind::MT_MSHR, ModelKind::MT_MSHR_BAND};
    return models;
}

double
KernelEvaluation::error(ModelKind kind) const
{
    auto it = predictedIpc.find(kind);
    if (it == predictedIpc.end())
        panic(msg("no prediction recorded for ", toString(kind)));
    return relativeError(it->second, oracleIpc);
}

namespace
{

/** Model predictions for one kernel given its (possibly cached)
 *  profiler. Evaluation goes through evaluateAt so a profiler cached
 *  at a key-equal configuration still sees this point's MSHR/bandwidth
 *  values. */
void
predictModels(KernelEvaluation &eval, const GpuMechProfiler &profiler,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models)
{
    const IntervalProfile &rep = profiler.repProfile();
    for (ModelKind kind : models) {
        double ipc = 0.0;
        switch (kind) {
          case ModelKind::NaiveInterval:
            ipc = naiveInterval(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MarkovChain:
            ipc = markovChain(rep, config.warpsPerCore, config).ipc;
            break;
          case ModelKind::MT:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT).ipc;
            break;
          case ModelKind::MT_MSHR:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT_MSHR).ipc;
            break;
          case ModelKind::MT_MSHR_BAND:
            ipc = profiler.evaluateAt(config, policy,
                                      ModelLevel::MT_MSHR_BAND).ipc;
            break;
        }
        eval.predictedIpc[kind] = ipc;
    }
}

} // namespace

KernelEvaluation
evaluateKernel(const Workload &workload, const HardwareConfig &config,
               SchedulingPolicy policy,
               const std::vector<ModelKind> &models, InputCache *cache)
{
    KernelEvaluation eval;
    eval.kernel = workload.name;
    eval.policy = policy;

    if (cache) {
        std::shared_ptr<const KernelTrace> kernel =
            cache->trace(workload, config);
        GpuTiming oracle(*kernel, config, policy);
        TimingStats stats = oracle.run();
        eval.oracleCpi = stats.cpi();
        eval.oracleIpc =
            eval.oracleCpi > 0.0 ? 1.0 / eval.oracleCpi : 0.0;
        ProfiledKernel pk = cache->profiler(workload, config);
        predictModels(eval, *pk.profiler, config, policy, models);
        return eval;
    }

    KernelTrace kernel = workload.generate(config);
    GpuTiming oracle(kernel, config, policy);
    TimingStats stats = oracle.run();
    eval.oracleCpi = stats.cpi();
    eval.oracleIpc = eval.oracleCpi > 0.0 ? 1.0 / eval.oracleCpi : 0.0;

    GpuMechProfiler profiler(kernel, config);
    predictModels(eval, profiler, config, policy, models);
    return eval;
}

std::vector<KernelEvaluation>
evaluateSuite(const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models, bool verbose,
              unsigned jobs, InputCache *cache)
{
    // Each evaluation is independent: own trace, own timing oracle,
    // own profiler. Fan out over the shared pool; parallelMap keeps
    // slot order, so results match the serial path exactly.
    return parallelMap<KernelEvaluation>(
        workloads.size(),
        [&](std::size_t i) {
            if (verbose)
                inform(msg("evaluating ", workloads[i].name, " (",
                           toString(policy), ")"));
            return evaluateKernel(workloads[i], config, policy, models,
                                  cache);
        },
        1, jobs);
}

std::vector<GpuMechResult>
predictSuite(const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options, unsigned jobs,
             InputCache *cache)
{
    return parallelMap<GpuMechResult>(
        workloads.size(),
        [&](std::size_t i) {
            if (cache) {
                ProfiledKernel pk = cache->profiler(
                    workloads[i], config, options.selection,
                    options.numClusters);
                return pk.profiler->evaluateAt(config, options.policy,
                                               options.level,
                                               options.modelSfu);
            }
            KernelTrace kernel = workloads[i].generate(config);
            return runGpuMech(kernel, config, options);
        },
        1, jobs);
}

double
averageError(const std::vector<KernelEvaluation> &evals, ModelKind kind)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals)
        errors.push_back(eval.error(kind));
    return mean(errors);
}

double
fractionWithin(const std::vector<KernelEvaluation> &evals,
               ModelKind kind, double threshold)
{
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto &eval : evals)
        errors.push_back(eval.error(kind));
    return fractionBelow(errors, threshold);
}

StackEvaluation
evaluateStack(const Workload &workload, const HardwareConfig &config,
              SchedulingPolicy policy)
{
    KernelTrace kernel = workload.generate(config);
    StackEvaluation result;
    GpuTiming oracle(kernel, config, policy);
    result.oracle = oracle.run();
    result.model = runGpuMech(kernel, config,
                              GpuMechOptions{policy,
                                             ModelLevel::MT_MSHR_BAND,
                                             RepSelection::Clustering,
                                             2});
    return result;
}

} // namespace gpumech
