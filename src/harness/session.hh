/**
 * @file
 * Long-lived evaluation session state for the harness.
 *
 * The harness entry points (evaluateSuite / predictSuite / runSweep)
 * historically took their cross-cutting state — input cache, thread
 * count, isolation knobs — as trailing parameters, and every front-end
 * re-plumbed them per call. EvalSession bundles that state into one
 * object with the lifetime a serving process wants: construct once,
 * keep the InputCache warm across requests, and pass per-request
 * overrides alongside.
 *
 * EvalSession is the harness-level half of the engine/front-end split;
 * the service layer's EngineSession (src/service/) owns one and adds
 * the request/response model on top. Library users who only run one
 * batch can keep calling the parameter-style overloads — they are thin
 * wrappers over the same implementations.
 */

#ifndef GPUMECH_HARNESS_SESSION_HH
#define GPUMECH_HARNESS_SESSION_HH

#include <cstdint>

#include "harness/experiment.hh"
#include "harness/input_cache.hh"

namespace gpumech
{

/**
 * Cross-request harness state: the warm artifact cache plus the
 * session-wide defaults a request inherits unless it overrides them.
 * Thread-safe to share across concurrently-handled requests (the
 * cache is compute-once; the defaults are read-only after setup).
 */
struct EvalSession
{
    /** Memoized trace / collector / profiler artifacts. */
    InputCache cache;

    /**
     * Default worker-thread count for suite/sweep fan-out;
     * 0 = defaultJobs(). A request's explicit jobs value wins.
     */
    unsigned jobs = 0;

    /** Default per-kernel deadline / fault plan. */
    IsolationOptions isolation;

    /**
     * Effective isolation for one request: the request's deadline (ms)
     * when nonzero, else the session default; the session fault plan
     * is kept either way.
     */
    IsolationOptions
    isolationFor(std::uint64_t request_timeout_ms) const
    {
        IsolationOptions opts = isolation;
        if (request_timeout_ms != 0)
            opts.kernelTimeoutMs = request_timeout_ms;
        return opts;
    }

    /** Effective jobs for one request (request value wins when set). */
    unsigned
    jobsFor(unsigned request_jobs) const
    {
        return request_jobs != 0 ? request_jobs : jobs;
    }
};

/**
 * Session-based suite evaluation: evaluateSuite with the session's
 * cache, jobs, and isolation defaults. Bit-identical to the
 * parameter-style overload with the same effective arguments.
 */
std::vector<KernelEvaluation>
evaluateSuite(EvalSession &session,
              const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models = allModels(),
              bool verbose = false);

/** Session-based model-only prediction (see predictSuite). */
std::vector<KernelPrediction>
predictSuite(EvalSession &session,
             const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options = {});

} // namespace gpumech

#endif // GPUMECH_HARNESS_SESSION_HH
