/**
 * @file
 * Experiment harness: evaluates the five models of Table II against
 * the detailed timing simulator over kernel sets and configuration
 * sweeps, and aggregates the relative errors the paper's figures
 * report.
 *
 * Error metric: relative error of predicted performance,
 * |IPC_model - IPC_oracle| / IPC_oracle. (The paper reports errors
 * above 100% for models that overestimate performance, which is only
 * possible on the performance axis; see DESIGN.md.)
 */

#ifndef GPUMECH_HARNESS_EXPERIMENT_HH
#define GPUMECH_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/isolation.hh"
#include "common/status.hh"
#include "core/gpumech.hh"
#include "harness/input_cache.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

namespace gpumech
{

/**
 * How configuration sweeps obtain collector inputs at each cell.
 *
 * Rerun replays the functional cache simulation per cell (the exact
 * reference). Mrc profiles reuse distances once per kernel and derives
 * every cache geometry from that one profile
 * (collector/mrc_collector.hh) — typically several times faster on
 * cache-geometry sweeps, exact on fully-associative LRU geometries and
 * a close approximation elsewhere.
 */
enum class SweepMode
{
    Rerun,
    Mrc,
};

/** CLI name of a sweep mode ("rerun" / "mrc"). */
std::string toString(SweepMode mode);

/**
 * Parse a CLI sweep-mode name; returns false (leaving @p out
 * untouched) on anything but "rerun" or "mrc".
 */
bool parseSweepMode(const std::string &text, SweepMode &out);

/** The evaluated models (Table II). */
enum class ModelKind
{
    NaiveInterval,
    MarkovChain,
    MT,
    MT_MSHR,
    MT_MSHR_BAND, //!< full GPUMech
};

/** Table II name of a model. */
std::string toString(ModelKind kind);

/** All five models in Table II order. */
const std::vector<ModelKind> &allModels();

/**
 * Per-kernel fault-isolation knobs. Default-constructed options are
 * free: no deadline, no fault plan, checkpoints reduce to one
 * thread-local load.
 */
struct IsolationOptions
{
    /** Per-kernel deadline in milliseconds; 0 disables the watchdog. */
    std::uint64_t kernelTimeoutMs = 0;

    /**
     * Deterministic fault schedule (tests / ext_fault_injection);
     * nullptr injects nothing. Not owned; must outlive the run.
     */
    const FaultPlan *faultPlan = nullptr;
};

/** Per-kernel evaluation outcome. */
struct KernelEvaluation
{
    std::string kernel;
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;

    /**
     * Ok when the kernel evaluated fully; otherwise the contained
     * failure (its code names the failing stage / injected site) and
     * the numeric fields below are meaningless.
     */
    Status status;

    double oracleCpi = 0.0;
    double oracleIpc = 0.0;

    /** Predicted IPC per model. */
    std::map<ModelKind, double> predictedIpc;

    /**
     * SweepMode::Mrc only: the model inputs were derived from the
     * reuse-distance profile approximately (sampling, set-associative
     * conversion, non-LRU policy), with the comma-joined reasons.
     * Rerun-mode evaluations always leave this false.
     */
    bool mrcApproximate = false;
    std::string mrcApproximation;

    bool ok() const { return status.ok(); }

    /**
     * Relative performance error of one model. Panics on a failed
     * evaluation (aggregators skip those).
     */
    double error(ModelKind kind) const;
};

/**
 * Evaluate one kernel: run the oracle and every requested model.
 *
 * @param workload kernel generator
 * @param config machine description
 * @param policy scheduling policy for both oracle and models
 * @param models which models to run (default: all five)
 * @param cache optional shared input cache; when given, the trace,
 *        collector result, and profiler are memoized across calls
 *        (results stay bit-identical — every cached artifact is a
 *        deterministic function of its key)
 * @param isolation per-kernel deadline / fault plan. Any failure —
 *        StatusException from a pipeline stage, deadline expiry,
 *        injected fault, or an unexpected std::exception — is
 *        contained: it is returned in KernelEvaluation::status and
 *        never escapes to the caller.
 * @param mode collector-input source for the model side (the oracle
 *        always runs the timing simulator): SweepMode::Mrc derives
 *        cache behaviour from a shared reuse-distance profile instead
 *        of re-running the functional simulation
 * @param mrc_rate SHARDS sampling rate in (0, 1] for SweepMode::Mrc;
 *        1.0 profiles every line
 */
KernelEvaluation evaluateKernel(const Workload &workload,
                                const HardwareConfig &config,
                                SchedulingPolicy policy,
                                const std::vector<ModelKind> &models =
                                    allModels(),
                                InputCache *cache = nullptr,
                                const IsolationOptions &isolation = {},
                                SweepMode mode = SweepMode::Rerun,
                                double mrc_rate = 1.0);

/**
 * Evaluate a set of kernels; optionally logs per-kernel progress via
 * inform().
 *
 * Kernels are independent (own trace, own oracle, own profiler), so
 * they fan out across the shared thread pool. Output order and every
 * result are bit-identical to the serial path.
 *
 * Failure containment: one kernel's failure (thrown Status, deadline,
 * injected fault, unexpected exception) marks only that entry's
 * status; every other kernel still evaluates and the suite returns
 * normally. Surviving entries are bit-identical to a run without the
 * failing kernel.
 *
 * @param jobs total threads; 0 = defaultJobs() (GPUMECH_JOBS or
 *        hardware concurrency), 1 = serial
 * @param cache optional shared input cache (see evaluateKernel)
 * @param isolation per-kernel deadline / fault plan
 */
std::vector<KernelEvaluation>
evaluateSuite(const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models = allModels(),
              bool verbose = false, unsigned jobs = 0,
              InputCache *cache = nullptr,
              const IsolationOptions &isolation = {});

/** Model-only prediction outcome for one kernel. */
struct KernelPrediction
{
    std::string kernel;
    Status status;        //!< Ok on success
    GpuMechResult result; //!< meaningful only when status.ok()

    bool ok() const { return status.ok(); }
};

/**
 * Model-only fast path: run full GPUMech (no oracle, no baselines)
 * over a set of kernels — the production use case where the paper's
 * ~97x model speedup matters. Parallel and cache-aware like
 * evaluateSuite, with the same per-kernel failure containment; result
 * i corresponds to workloads[i].
 */
std::vector<KernelPrediction>
predictSuite(const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options = {}, unsigned jobs = 0,
             InputCache *cache = nullptr,
             const IsolationOptions &isolation = {});

/** Number of failed entries. */
std::size_t countFailures(const std::vector<KernelEvaluation> &evals);
std::size_t countFailures(const std::vector<KernelPrediction> &preds);

/**
 * Human-readable per-kernel failure lines ("kernel: code: message"),
 * one per failed entry; empty string when everything succeeded.
 */
std::string failureSummary(const std::vector<KernelEvaluation> &evals);
std::string failureSummary(const std::vector<KernelPrediction> &preds);

/**
 * Mean relative error of one model over the successful evaluations
 * (failed kernels are excluded from the mean, not counted as zero).
 */
double averageError(const std::vector<KernelEvaluation> &evals,
                    ModelKind kind);

/** Fraction of successful kernels with error below a threshold. */
double fractionWithin(const std::vector<KernelEvaluation> &evals,
                      ModelKind kind, double threshold);

/**
 * Full GPUMech result (CPI stack etc.) plus the oracle CPI for one
 * kernel at one configuration — what the Figure 16 bench needs.
 */
struct StackEvaluation
{
    GpuMechResult model;
    TimingStats oracle;
};

/** Run full GPUMech and the oracle on one kernel. */
StackEvaluation evaluateStack(const Workload &workload,
                              const HardwareConfig &config,
                              SchedulingPolicy policy);

} // namespace gpumech

#endif // GPUMECH_HARNESS_EXPERIMENT_HH
