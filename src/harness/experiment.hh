/**
 * @file
 * Experiment harness: evaluates the five models of Table II against
 * the detailed timing simulator over kernel sets and configuration
 * sweeps, and aggregates the relative errors the paper's figures
 * report.
 *
 * Error metric: relative error of predicted performance,
 * |IPC_model - IPC_oracle| / IPC_oracle. (The paper reports errors
 * above 100% for models that overestimate performance, which is only
 * possible on the performance axis; see DESIGN.md.)
 */

#ifndef GPUMECH_HARNESS_EXPERIMENT_HH
#define GPUMECH_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/gpumech.hh"
#include "harness/input_cache.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

namespace gpumech
{

/** The evaluated models (Table II). */
enum class ModelKind
{
    NaiveInterval,
    MarkovChain,
    MT,
    MT_MSHR,
    MT_MSHR_BAND, //!< full GPUMech
};

/** Table II name of a model. */
std::string toString(ModelKind kind);

/** All five models in Table II order. */
const std::vector<ModelKind> &allModels();

/** Per-kernel evaluation outcome. */
struct KernelEvaluation
{
    std::string kernel;
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;

    double oracleCpi = 0.0;
    double oracleIpc = 0.0;

    /** Predicted IPC per model. */
    std::map<ModelKind, double> predictedIpc;

    /** Relative performance error of one model. */
    double error(ModelKind kind) const;
};

/**
 * Evaluate one kernel: run the oracle and every requested model.
 *
 * @param workload kernel generator
 * @param config machine description
 * @param policy scheduling policy for both oracle and models
 * @param models which models to run (default: all five)
 * @param cache optional shared input cache; when given, the trace,
 *        collector result, and profiler are memoized across calls
 *        (results stay bit-identical — every cached artifact is a
 *        deterministic function of its key)
 */
KernelEvaluation evaluateKernel(const Workload &workload,
                                const HardwareConfig &config,
                                SchedulingPolicy policy,
                                const std::vector<ModelKind> &models =
                                    allModels(),
                                InputCache *cache = nullptr);

/**
 * Evaluate a set of kernels; optionally logs per-kernel progress via
 * inform().
 *
 * Kernels are independent (own trace, own oracle, own profiler), so
 * they fan out across the shared thread pool. Output order and every
 * result are bit-identical to the serial path.
 *
 * @param jobs total threads; 0 = defaultJobs() (GPUMECH_JOBS or
 *        hardware concurrency), 1 = serial
 * @param cache optional shared input cache (see evaluateKernel)
 */
std::vector<KernelEvaluation>
evaluateSuite(const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models = allModels(),
              bool verbose = false, unsigned jobs = 0,
              InputCache *cache = nullptr);

/**
 * Model-only fast path: run full GPUMech (no oracle, no baselines)
 * over a set of kernels — the production use case where the paper's
 * ~97x model speedup matters. Parallel and cache-aware like
 * evaluateSuite; result i corresponds to workloads[i].
 */
std::vector<GpuMechResult>
predictSuite(const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options = {}, unsigned jobs = 0,
             InputCache *cache = nullptr);

/** Mean relative error of one model over a set of evaluations. */
double averageError(const std::vector<KernelEvaluation> &evals,
                    ModelKind kind);

/** Fraction of kernels with error below a threshold for one model. */
double fractionWithin(const std::vector<KernelEvaluation> &evals,
                      ModelKind kind, double threshold);

/**
 * Full GPUMech result (CPI stack etc.) plus the oracle CPI for one
 * kernel at one configuration — what the Figure 16 bench needs.
 */
struct StackEvaluation
{
    GpuMechResult model;
    TimingStats oracle;
};

/** Run full GPUMech and the oracle on one kernel. */
StackEvaluation evaluateStack(const Workload &workload,
                              const HardwareConfig &config,
                              SchedulingPolicy policy);

} // namespace gpumech

#endif // GPUMECH_HARNESS_EXPERIMENT_HH
