#include "harness/session.hh"

#include "harness/sweep.hh"

namespace gpumech
{

std::vector<KernelEvaluation>
evaluateSuite(EvalSession &session,
              const std::vector<Workload> &workloads,
              const HardwareConfig &config, SchedulingPolicy policy,
              const std::vector<ModelKind> &models, bool verbose)
{
    return evaluateSuite(workloads, config, policy, models, verbose,
                         session.jobs, &session.cache,
                         session.isolation);
}

std::vector<KernelPrediction>
predictSuite(EvalSession &session,
             const std::vector<Workload> &workloads,
             const HardwareConfig &config,
             const GpuMechOptions &options)
{
    return predictSuite(workloads, config, options, session.jobs,
                        &session.cache, session.isolation);
}

SweepResult
runSweep(EvalSession &session, const std::vector<Workload> &workloads,
         const std::vector<SweepPoint> &points, SchedulingPolicy policy,
         bool verbose, const SweepOptions &options)
{
    return runSweep(workloads, points, policy, verbose, session.jobs,
                    &session.cache, session.isolation, options);
}

} // namespace gpumech
