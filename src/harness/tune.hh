/**
 * @file
 * Guided design-space exploration (ROADMAP item 4): random-restart
 * coordinate descent over a user-declared subset of HardwareConfig
 * dimensions, with a CPI-stack bottleneck advisor.
 *
 * The search spends the model's ~100x speed advantage over the
 * cycle-level oracle: every candidate configuration is one analytical
 * evaluation through the session's warm InputCache, line sweeps fan
 * out on the shared ThreadPool, and in SweepMode::Mrc the cache
 * geometry dimensions (l1-kb / l2-kb) are derived from one shared
 * reuse-distance profile per trace shape, so they are near-free to
 * search.
 *
 * Output is a Pareto frontier (model CPI vs a declared resource cost)
 * plus the best point under the objective. Every frontier point
 * carries an explanation derived from the CPI-stack delta against the
 * baseline — which component (MSHR, QUEUE, DRAM, DEP, ...) the moves
 * relieved — and the best point gets an advisor naming its residual
 * bottleneck and the knob that could relieve it (docs/MODEL.md maps
 * components to knobs).
 *
 * Determinism: restart starting points come from an owned
 * xorshift64* generator seeded by (seed, restart); candidate
 * evaluation uses the ordered parallelMap and all selections break
 * ties toward the lowest candidate index, so results are bit-identical
 * at any --jobs.
 */

#ifndef GPUMECH_HARNESS_TUNE_HH
#define GPUMECH_HARNESS_TUNE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/cpi_stack.hh"
#include "harness/session.hh"

namespace gpumech
{

/**
 * One searchable dimension: a HardwareConfig knob plus its candidate
 * ladder. Known names: cores, warps, mshrs, bw, l1-kb, l2-kb,
 * scheduler (values 0 = rr, 1 = gto).
 */
struct TuneDimension
{
    std::string name;
    std::vector<double> values; //!< candidate values, search order
};

/** True for a name tune knows how to search. */
bool isTuneDimension(const std::string &name);

/** Default candidate ladder of a known dimension. */
std::vector<double> defaultTuneValues(const std::string &name);

/** Comma list of every searchable dimension (usage strings). */
std::string tuneDimensionNames();

/** What the search minimizes. */
enum class TuneObjective
{
    MinCpi,     //!< model CPI alone
    MinCpiCost, //!< model CPI x resource cost
};

/** CLI name of an objective ("cpi" / "cpi-cost"). */
std::string toString(TuneObjective objective);

/** Parse an objective name; false leaves @p out untouched. */
bool parseTuneObjective(const std::string &text, TuneObjective &out);

/**
 * Declared resource-cost function: a weighted sum of each priced
 * knob's value relative to the baseline configuration,
 *
 *   cost = sum_d weight[d] * value_d(config) / value_d(baseline)
 *
 * so the baseline costs exactly sum(weights) and doubling a knob adds
 * its weight. The scheduler dimension is free (policy choice has no
 * hardware cost). Weights are overridable per dimension
 * (--cost-weights / "cost_weights").
 */
struct TuneCostModel
{
    std::map<std::string, double> weights;

    TuneCostModel();

    /** Cost of @p config relative to @p baseline. */
    double cost(const HardwareConfig &config,
                const HardwareConfig &baseline) const;
};

/** Search constraints; 0 disables a bound. */
struct TuneConstraints
{
    double maxCost = 0.0; //!< reject points costing more than this
    double maxCpi = 0.0;  //!< reject points slower than this CPI
};

/** Full search specification. */
struct TuneOptions
{
    std::vector<TuneDimension> dims;
    TuneObjective objective = TuneObjective::MinCpi;
    TuneCostModel cost;
    TuneConstraints constraints;

    /** Coordinate-descent restarts (restart 0 starts at baseline). */
    std::uint32_t restarts = 4;

    /** Deterministic seed for restart starting points. */
    std::uint64_t seed = 1;

    /**
     * Collector-input source, as in sweeps. Tune defaults to the MRC
     * fast path; use SweepMode::Rerun for exact functional-simulation
     * inputs at every cell.
     */
    SweepMode mode = SweepMode::Mrc;
    double mrcRate = 1.0; //!< SHARDS rate in (0, 1] for SweepMode::Mrc

    /**
     * Accept MRC-approximate inputs for a non-LRU replacement policy
     * (modeled as LRU stack distances). Without this, tune refuses:
     * ranking configurations on inputs known to misrepresent the
     * configured policy silently skews the search.
     */
    bool allowApprox = false;

    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;
    bool modelSfu = false;
    unsigned jobs = 0; //!< threads for line sweeps; 0 = default
};

/** Explanation attached to every reported point. */
struct TuneExplanation
{
    StallType relieved = StallType::Base; //!< most-relieved component
    double reliefCpi = 0.0;   //!< its CPI change vs baseline (<= 0 = relief)
    double totalDeltaCpi = 0.0; //!< total CPI change vs baseline
    std::string moves; //!< "mshrs 32->64, l1-kb 16->32"; "" = baseline
    std::string text;  //!< full sentence for reports
};

/** One evaluated configuration. */
struct TunePoint
{
    /** Chosen value per declared dimension, in dims order. */
    std::vector<double> coords;

    HardwareConfig config;
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;

    double cpi = 0.0;
    double ipc = 0.0;
    double cost = 0.0;
    double objective = 0.0;
    bool feasible = true; //!< false = violates a constraint

    CpiStack stack;
    TuneExplanation explanation;
};

/** The advisor: the best point's residual bottleneck. */
struct TuneAdvisor
{
    StallType bottleneck = StallType::Base;
    double share = 0.0; //!< bottleneck CPI / total CPI
    std::string knob;   //!< dimension that relieves it (MODEL.md table)
    std::string text;
};

/** Everything a tune run reports. */
struct TuneResult
{
    /** Declared dimensions with default ladders resolved. */
    std::vector<TuneDimension> dims;

    TunePoint baseline; //!< base configuration snapped onto the grid
    TunePoint best;     //!< feasible argmin of the objective

    /**
     * Pareto frontier over all evaluated feasible points: sorted by
     * ascending cost, strictly decreasing CPI (each point is the
     * cheapest way to reach its CPI among everything evaluated).
     */
    std::vector<TunePoint> frontier;

    TuneAdvisor advisor;

    std::size_t evaluations = 0;  //!< distinct model evaluations
    std::size_t spaceSize = 0;    //!< full grid size
    std::uint32_t restartsRun = 0;

    bool mrcApproximate = false;    //!< inputs carried approximations
    std::string mrcApproximation;   //!< the reasons, comma-joined
};

/**
 * Run the search. Errors (unknown/duplicate/empty dimension, invalid
 * baseline, non-LRU policy under SweepMode::Mrc without allowApprox)
 * come back as a Status; per-point validation failures just mark the
 * cell infeasible and the search continues around them.
 */
Result<TuneResult> runTune(EvalSession &session,
                           const Workload &workload,
                           const HardwareConfig &base,
                           const TuneOptions &options);

/**
 * Render a result as one JSON document (the report every front-end
 * emits; see README "Tuning" for the shape).
 */
std::string tuneResultToJson(const TuneResult &result,
                             const std::string &kernel,
                             const TuneOptions &options);

} // namespace gpumech

#endif // GPUMECH_HARNESS_TUNE_HH
