#include "harness/sweep.hh"

#include <ostream>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace gpumech
{

SweepResult
runSweep(const std::vector<Workload> &workloads,
         const std::vector<SweepPoint> &points, SchedulingPolicy policy,
         bool verbose, unsigned jobs, InputCache *cache,
         const IsolationOptions &isolation, const SweepOptions &options)
{
    InputCache local;
    if (!cache)
        cache = &local;

    // Flatten the (point x workload) grid so the pool balances across
    // both axes; aggregation below restores per-point order.
    std::size_t num_tasks = points.size() * workloads.size();
    static const Counter sweep_cells("sweep.cells");
    sweep_cells.add(num_tasks);
    if (verbose)
        inform(msg("sweep: ", points.size(), " points x ",
                   workloads.size(), " kernels"));
    std::vector<KernelEvaluation> evals =
        parallelMap<KernelEvaluation>(
            num_tasks,
            [&](std::size_t t) {
                const SweepPoint &point = points[t / workloads.size()];
                const Workload &workload =
                    workloads[t % workloads.size()];
                if (verbose)
                    inform(msg("evaluating ", workload.name, " @ ",
                               point.label));
                return evaluateKernel(workload, point.config, policy,
                                      allModels(), cache, isolation,
                                      options.mode, options.mrcRate);
            },
            1, jobs);

    SweepResult result;
    for (std::size_t p = 0; p < points.size(); ++p) {
        result.labels.push_back(points[p].label);
        std::vector<KernelEvaluation> point_evals(
            evals.begin() + p * workloads.size(),
            evals.begin() + (p + 1) * workloads.size());
        bool approx = false;
        for (const KernelEvaluation &eval : point_evals) {
            if (!eval.ok()) {
                result.failures.push_back(SweepFailure{
                    points[p].label, eval.kernel, eval.status});
            }
            approx = approx || (eval.ok() && eval.mrcApproximate);
        }
        result.mrcApproximate.push_back(approx);
        for (ModelKind kind : allModels()) {
            result.averages[kind].push_back(
                averageError(point_evals, kind));
        }
    }
    return result;
}

namespace
{

Table
sweepTable(const SweepResult &result, bool raw)
{
    std::vector<std::string> header{"model"};
    for (const auto &label : result.labels)
        header.push_back(label);
    Table t(header);
    for (ModelKind kind : allModels()) {
        std::vector<std::string> row{toString(kind)};
        for (double err : result.averages.at(kind))
            row.push_back(raw ? fmtDouble(err, 6) : fmtPercent(err));
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace

void
printSweep(std::ostream &os, const SweepResult &result)
{
    sweepTable(result, false).print(os);
}

void
printSweepCsv(std::ostream &os, const SweepResult &result)
{
    Table t = sweepTable(result, true);
    // Machine consumers need the approximation signal in-band. Only
    // sweeps that actually carried an approximation grow the row:
    // rerun-mode output stays byte-identical to the historical CSV.
    if (result.anyMrcApproximate()) {
        std::vector<std::string> row{"mrc_approx"};
        for (bool b : result.mrcApproximate)
            row.push_back(b ? "1" : "0");
        t.addRow(std::move(row));
    }
    t.printCsv(os);
}

} // namespace gpumech
