#include "harness/sweep.hh"

#include <ostream>

#include "common/logging.hh"
#include "common/table.hh"

namespace gpumech
{

SweepResult
runSweep(const std::vector<Workload> &workloads,
         const std::vector<SweepPoint> &points, SchedulingPolicy policy,
         bool verbose)
{
    SweepResult result;
    for (const auto &point : points) {
        if (verbose)
            inform(msg("sweep point ", point.label));
        result.labels.push_back(point.label);
        auto evals = evaluateSuite(workloads, point.config, policy,
                                   allModels(), verbose);
        for (ModelKind kind : allModels())
            result.averages[kind].push_back(averageError(evals, kind));
    }
    return result;
}

namespace
{

Table
sweepTable(const SweepResult &result, bool raw)
{
    std::vector<std::string> header{"model"};
    for (const auto &label : result.labels)
        header.push_back(label);
    Table t(header);
    for (ModelKind kind : allModels()) {
        std::vector<std::string> row{toString(kind)};
        for (double err : result.averages.at(kind))
            row.push_back(raw ? fmtDouble(err, 6) : fmtPercent(err));
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace

void
printSweep(std::ostream &os, const SweepResult &result)
{
    sweepTable(result, false).print(os);
}

void
printSweepCsv(std::ostream &os, const SweepResult &result)
{
    sweepTable(result, true).printCsv(os);
}

} // namespace gpumech
