#include "harness/tune.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace gpumech
{

namespace
{

/** Static description of one searchable knob. */
struct DimSpec
{
    const char *name;
    double weight;               //!< default resource-cost weight
    std::vector<double> ladder;  //!< default candidate values
    bool shapesTrace;            //!< participates in traceKey()
    bool integral;               //!< values must be whole numbers
};

const std::vector<DimSpec> &
dimSpecs()
{
    // Ladders bracket the Table I baseline (16 cores, 32 warps/core,
    // 32 MSHRs, 192 GB/s, 32KB L1, 768KB L2, RR) so restart 0 snaps
    // onto the grid exactly. Cache sizes stay multiples of
    // line x assoc = 1KB, which validate() requires.
    static const std::vector<DimSpec> specs = {
        {"cores", 1.0, {4, 8, 16, 24, 32}, true, true},
        {"warps", 0.25, {8, 16, 24, 32, 48}, true, true},
        {"mshrs", 0.1, {8, 16, 32, 64, 128}, false, true},
        {"bw", 0.5, {96, 192, 288, 384, 512}, false, false},
        {"l1-kb", 0.15, {8, 16, 32, 64}, false, true},
        {"l2-kb", 0.3, {192, 384, 768, 1536}, false, true},
        {"scheduler", 0.0, {0, 1}, false, true},
    };
    return specs;
}

const DimSpec *
findSpec(const std::string &name)
{
    for (const DimSpec &spec : dimSpecs()) {
        if (name == spec.name)
            return &spec;
    }
    return nullptr;
}

/** Apply one dimension's value onto a configuration. */
void
applyDim(const std::string &name, double v, HardwareConfig &config,
         SchedulingPolicy &policy)
{
    auto u32 = [](double x) { return static_cast<std::uint32_t>(x); };
    if (name == "cores") {
        config.numCores = u32(v);
    } else if (name == "warps") {
        config.warpsPerCore = u32(v);
    } else if (name == "mshrs") {
        config.numMshrs = u32(v);
    } else if (name == "bw") {
        config.dramBandwidthGBs = v;
    } else if (name == "l1-kb") {
        config.l1SizeBytes = u32(v) * 1024;
    } else if (name == "l2-kb") {
        config.l2SizeBytes = u32(v) * 1024;
    } else if (name == "scheduler") {
        policy = v != 0.0 ? SchedulingPolicy::GreedyThenOldest
                          : SchedulingPolicy::RoundRobin;
    } else {
        panic(msg("applyDim: unknown tune dimension '", name, "'"));
    }
}

/** Current value of a knob in a configuration (snapping / cost). */
double
knobValue(const std::string &name, const HardwareConfig &config,
          SchedulingPolicy policy)
{
    if (name == "cores")
        return config.numCores;
    if (name == "warps")
        return config.warpsPerCore;
    if (name == "mshrs")
        return config.numMshrs;
    if (name == "bw")
        return config.dramBandwidthGBs;
    if (name == "l1-kb")
        return config.l1SizeBytes / 1024.0;
    if (name == "l2-kb")
        return config.l2SizeBytes / 1024.0;
    if (name == "scheduler")
        return policy == SchedulingPolicy::GreedyThenOldest ? 1.0 : 0.0;
    panic(msg("knobValue: unknown tune dimension '", name, "'"));
}

/** Compact value formatting for moves / coords ("96.5", "32"). */
std::string
fmtValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Value label in a moves string (scheduler shows rr/gto). */
std::string
valueLabel(const std::string &dim, double v)
{
    if (dim == "scheduler")
        return v != 0.0 ? "gto" : "rr";
    return fmtValue(v);
}

/** MODEL.md: the knob that relieves each CPI-stack component. */
std::string
advisorKnob(StallType type)
{
    switch (type) {
      case StallType::Base:
        return "issue width (BASE is the issue floor; not a tune "
               "dimension)";
      case StallType::Dep:
        return "warps";
      case StallType::L1:
        return "l1-kb";
      case StallType::L2:
        return "l2-kb";
      case StallType::Dram:
        return "warps or bw";
      case StallType::Mshr:
        return "mshrs";
      case StallType::Queue:
        return "bw";
      case StallType::Sfu:
        return "sfu-lanes (not a tune dimension)";
    }
    return "?";
}

} // namespace

bool
isTuneDimension(const std::string &name)
{
    return findSpec(name) != nullptr;
}

std::vector<double>
defaultTuneValues(const std::string &name)
{
    const DimSpec *spec = findSpec(name);
    if (spec == nullptr)
        panic(msg("defaultTuneValues: unknown dimension '", name, "'"));
    return spec->ladder;
}

std::string
tuneDimensionNames()
{
    std::string names;
    for (const DimSpec &spec : dimSpecs()) {
        if (!names.empty())
            names += ",";
        names += spec.name;
    }
    return names;
}

std::string
toString(TuneObjective objective)
{
    switch (objective) {
      case TuneObjective::MinCpi:
        return "cpi";
      case TuneObjective::MinCpiCost:
        return "cpi-cost";
    }
    return "?";
}

bool
parseTuneObjective(const std::string &text, TuneObjective &out)
{
    if (text == "cpi") {
        out = TuneObjective::MinCpi;
        return true;
    }
    if (text == "cpi-cost") {
        out = TuneObjective::MinCpiCost;
        return true;
    }
    return false;
}

TuneCostModel::TuneCostModel()
{
    for (const DimSpec &spec : dimSpecs()) {
        if (spec.weight > 0.0)
            weights[spec.name] = spec.weight;
    }
}

double
TuneCostModel::cost(const HardwareConfig &config,
                    const HardwareConfig &baseline) const
{
    // The policy argument to knobValue is irrelevant here: scheduler
    // carries no weight (a policy choice costs no silicon).
    double total = 0.0;
    for (const auto &entry : weights) {
        if (entry.second <= 0.0 || entry.first == "scheduler")
            continue;
        double b = knobValue(entry.first, baseline,
                             SchedulingPolicy::RoundRobin);
        double v = knobValue(entry.first, config,
                             SchedulingPolicy::RoundRobin);
        if (b > 0.0)
            total += entry.second * (v / b);
    }
    return total;
}

namespace
{

/** One memoized grid cell. */
struct Cell
{
    bool valid = false; //!< false: validate() rejected the config
    TunePoint point;
};

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

double
objectiveOf(const Cell &cell)
{
    return cell.valid && cell.point.feasible ? cell.point.objective
                                             : kInfeasible;
}

/** The search state shared by every restart. */
struct TuneSearch
{
    EvalSession &session;
    const Workload &workload;
    const HardwareConfig &base;
    const TuneOptions &options;
    const std::vector<TuneDimension> &dims;

    std::map<std::vector<std::size_t>, Cell> memo;
    std::size_t modelEvals = 0;

    TuneSearch(EvalSession &s, const Workload &w,
               const HardwareConfig &b, const TuneOptions &o)
        : session(s), workload(w), base(b), options(o), dims(o.dims)
    {}

    /** Configuration/policy of a grid index vector. */
    void
    configAt(const std::vector<std::size_t> &idx, HardwareConfig &config,
             SchedulingPolicy &policy, HardwareConfig &trace_config) const
    {
        config = base;
        trace_config = base;
        policy = options.policy;
        SchedulingPolicy ignored = options.policy;
        for (std::size_t d = 0; d < dims.size(); ++d) {
            double v = dims[d].values[idx[d]];
            applyDim(dims[d].name, v, config, policy);
            // The profiler is keyed by the trace-shaping fields only:
            // like handleSweep, non-trace dimensions re-evaluate the
            // one profile selected at the base configuration, so
            // tune's CPI at a cell is bit-identical to a sweep's.
            const DimSpec *spec = findSpec(dims[d].name);
            if (spec != nullptr && spec->shapesTrace)
                applyDim(dims[d].name, v, trace_config, ignored);
        }
    }

    /** Evaluate one cell (thread-safe; exceptions become invalid). */
    Cell
    evaluateCell(const std::vector<std::size_t> &idx) const
    {
        Cell cell;
        HardwareConfig config, trace_config;
        SchedulingPolicy policy;
        configAt(idx, config, policy, trace_config);
        if (!config.validate().ok())
            return cell;
        try {
            ProfiledKernel pk =
                options.mode == SweepMode::Mrc
                    ? session.cache.mrcProfiler(workload, trace_config,
                                                options.mrcRate)
                    : session.cache.profiler(workload, trace_config);
            GpuMechResult r = pk.profiler->evaluateAt(
                config, policy, ModelLevel::MT_MSHR_BAND,
                options.modelSfu);
            TunePoint &p = cell.point;
            for (std::size_t d = 0; d < dims.size(); ++d)
                p.coords.push_back(dims[d].values[idx[d]]);
            p.config = config;
            p.policy = policy;
            p.cpi = r.cpi;
            p.ipc = r.ipc;
            p.stack = r.stack;
            p.cost = options.cost.cost(config, base);
            p.objective = options.objective == TuneObjective::MinCpi
                              ? p.cpi
                              : p.cpi * p.cost;
            p.feasible = !(options.constraints.maxCost > 0.0 &&
                           p.cost > options.constraints.maxCost) &&
                         !(options.constraints.maxCpi > 0.0 &&
                           p.cpi > options.constraints.maxCpi);
            cell.valid = true;
        } catch (const std::exception &) {
            cell.valid = false;
        }
        return cell;
    }

    /**
     * Evaluate every not-yet-memoized index in @p wanted, fanning the
     * misses onto the pool in order (deterministic at any job count).
     */
    void
    ensure(const std::vector<std::vector<std::size_t>> &wanted)
    {
        std::vector<std::vector<std::size_t>> pending;
        for (const auto &idx : wanted) {
            if (memo.find(idx) == memo.end() &&
                std::find(pending.begin(), pending.end(), idx) ==
                    pending.end())
                pending.push_back(idx);
        }
        if (pending.empty())
            return;
        std::vector<Cell> cells = parallelMap<Cell>(
            pending.size(),
            [&](std::size_t i) { return evaluateCell(pending[i]); }, 1,
            options.jobs);
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (cells[i].valid)
                ++modelEvals;
            memo.emplace(pending[i], std::move(cells[i]));
        }
    }

    /**
     * One coordinate descent from @p start: sweep each dimension's
     * full line, take the strictly best feasible move (ties toward the
     * lowest candidate index), repeat until a full pass stands still.
     */
    void
    descend(std::vector<std::size_t> start)
    {
        ensure({start});
        std::vector<std::size_t> cur = std::move(start);
        double cur_obj = objectiveOf(memo.at(cur));
        // A strict-improvement rule cannot cycle; the pass cap is a
        // safety net, not a tuning knob.
        for (int pass = 0; pass < 64; ++pass) {
            bool moved = false;
            for (std::size_t d = 0; d < dims.size(); ++d) {
                std::vector<std::vector<std::size_t>> line;
                for (std::size_t j = 0; j < dims[d].values.size();
                     ++j) {
                    std::vector<std::size_t> idx = cur;
                    idx[d] = j;
                    line.push_back(std::move(idx));
                }
                ensure(line);
                std::size_t best_j = cur[d];
                double best_obj = cur_obj;
                for (std::size_t j = 0; j < line.size(); ++j) {
                    double obj = objectiveOf(memo.at(line[j]));
                    if (obj < best_obj) {
                        best_obj = obj;
                        best_j = j;
                    }
                }
                if (best_j != cur[d]) {
                    cur[d] = best_j;
                    cur_obj = best_obj;
                    moved = true;
                }
            }
            if (!moved)
                break;
        }
    }
};

} // namespace

Result<TuneResult>
runTune(EvalSession &session, const Workload &workload,
        const HardwareConfig &base, const TuneOptions &options_in)
{
    TuneOptions options = options_in;
    options.jobs = session.jobsFor(options.jobs);

    // --- validate the search specification -------------------------
    if (options.dims.empty()) {
        return Status(StatusCode::InvalidArgument,
                      "tune: no search dimensions declared");
    }
    std::set<std::string> seen;
    for (TuneDimension &dim : options.dims) {
        const DimSpec *spec = findSpec(dim.name);
        if (spec == nullptr) {
            return Status(StatusCode::InvalidArgument,
                          msg("tune: unknown dimension '", dim.name,
                              "' (use ", tuneDimensionNames(), ")"));
        }
        if (!seen.insert(dim.name).second) {
            return Status(StatusCode::InvalidArgument,
                          msg("tune: dimension '", dim.name,
                              "' declared twice"));
        }
        if (dim.values.empty())
            dim.values = spec->ladder;
        for (double v : dim.values) {
            bool ok = std::isfinite(v);
            if (dim.name == "scheduler")
                ok = ok && (v == 0.0 || v == 1.0);
            else
                ok = ok && v > 0.0 && v <= 4294967295.0 &&
                     (!spec->integral || v == std::floor(v));
            if (!ok) {
                return Status(StatusCode::InvalidArgument,
                              msg("tune: bad value ", fmtValue(v),
                                  " for dimension '", dim.name, "'"));
            }
        }
    }
    for (const auto &entry : options.cost.weights) {
        if (!isTuneDimension(entry.first)) {
            return Status(StatusCode::InvalidArgument,
                          msg("tune: cost weight for unknown "
                              "dimension '", entry.first, "'"));
        }
        if (!std::isfinite(entry.second) || entry.second < 0.0) {
            return Status(StatusCode::InvalidArgument,
                          msg("tune: cost weight for '", entry.first,
                              "' must be finite and >= 0"));
        }
    }
    if (options.mode == SweepMode::Mrc &&
        !(options.mrcRate > 0.0 && options.mrcRate <= 1.0)) {
        return Status(StatusCode::InvalidArgument,
                      msg("tune: mrc rate must be in (0, 1], got ",
                          options.mrcRate));
    }
    GPUMECH_TRY(base.validate());

    TuneSearch search(session, workload, base, options);
    const std::vector<TuneDimension> &dims = options.dims;

    TuneResult result;
    result.dims = dims;
    result.spaceSize = 1;
    for (const TuneDimension &dim : dims)
        result.spaceSize *= dim.values.size();

    // Snap the base configuration onto the grid: per dimension, the
    // candidate closest to the base value (ties toward the smaller).
    std::vector<std::size_t> snapped(dims.size(), 0);
    for (std::size_t d = 0; d < dims.size(); ++d) {
        double want = knobValue(dims[d].name, base, options.policy);
        std::size_t best = 0;
        for (std::size_t j = 1; j < dims[d].values.size(); ++j) {
            if (std::abs(dims[d].values[j] - want) <
                std::abs(dims[d].values[best] - want))
                best = j;
        }
        snapped[d] = best;
    }

    // --- MRC approximation policy (satellite 2) --------------------
    // The approximation reasons depend on rate / geometry / policy,
    // none of which the snapped baseline and the search cells differ
    // on in a way that changes the non-LRU refusal, so one probe at
    // the snapped baseline decides for the whole run.
    if (options.mode == SweepMode::Mrc) {
        HardwareConfig config, trace_config;
        SchedulingPolicy policy;
        search.configAt(snapped, config, policy, trace_config);
        GPUMECH_TRY(trace_config.validate());
        ProfiledKernel probe = session.cache.mrcProfiler(
            workload, trace_config, options.mrcRate);
        const CollectorResult &inputs = probe.profiler->inputs();
        if (inputs.mrcApproximate) {
            result.mrcApproximate = true;
            result.mrcApproximation = inputs.mrcApproximation;
            if (base.replacementPolicy != 0) {
                if (!options.allowApprox) {
                    return Status(
                        StatusCode::FailedValidation,
                        msg("tune: MRC-derived inputs are approximate "
                            "under a non-LRU replacement policy (",
                            inputs.mrcApproximation,
                            "); use --sweep-mode rerun, or accept "
                            "with --allow-approx"));
                }
                warn(msg("tune: continuing on approximate MRC inputs "
                         "(--allow-approx): ",
                         inputs.mrcApproximation));
            }
        }
    }

    // --- search ----------------------------------------------------
    result.restartsRun = std::max<std::uint32_t>(options.restarts, 1);
    for (std::uint32_t r = 0; r < result.restartsRun; ++r) {
        std::vector<std::size_t> start = snapped;
        if (r > 0) {
            // Deterministic restart points: an owned generator seeded
            // by (seed, restart), drawn serially — independent of the
            // job count and of every other restart.
            Rng rng(options.seed +
                    0x9e3779b97f4a7c15ULL * (r + 1));
            for (std::size_t d = 0; d < dims.size(); ++d)
                start[d] = rng.nextBelow(dims[d].values.size());
        }
        search.descend(std::move(start));
    }
    result.evaluations = search.modelEvals;

    // --- baseline / best / frontier --------------------------------
    const Cell &base_cell = search.memo.at(snapped);
    if (!base_cell.valid) {
        HardwareConfig config, trace_config;
        SchedulingPolicy policy;
        search.configAt(snapped, config, policy, trace_config);
        Status status = config.validate();
        if (status.ok()) {
            status = Status(StatusCode::Internal,
                            "tune: baseline evaluation failed");
        }
        return status.withContext("tune baseline");
    }
    result.baseline = base_cell.point;

    const Cell *best = nullptr;
    for (const auto &entry : search.memo) {
        // Map order is lexicographic in grid indices, so the first
        // strict minimum is the deterministic tie-break winner.
        if (objectiveOf(entry.second) <
            (best ? objectiveOf(*best) : kInfeasible))
            best = &entry.second;
    }
    if (best == nullptr) {
        return Status(StatusCode::NotFound,
                      msg("tune: no feasible configuration among ",
                          search.memo.size(),
                          " evaluated points (relax --max-cost / "
                          "--max-cpi)"));
    }

    auto explain = [&](TunePoint &point) {
        StackDelta delta =
            stackDelta(result.baseline.stack, point.stack);
        TuneExplanation &e = point.explanation;
        e.relieved = delta.mostRelieved;
        e.reliefCpi = delta.relief;
        e.totalDeltaCpi = delta.totalDelta;
        std::string moves;
        for (std::size_t d = 0; d < point.coords.size(); ++d) {
            if (point.coords[d] == result.baseline.coords[d])
                continue;
            if (!moves.empty())
                moves += ", ";
            moves += dims[d].name;
            moves += " ";
            moves += valueLabel(dims[d].name,
                                result.baseline.coords[d]);
            moves += "->";
            moves += valueLabel(dims[d].name, point.coords[d]);
        }
        e.moves = moves;
        e.text = moves.empty()
                     ? "baseline"
                     : msg(moves, ": ", describeRelief(delta));
    };

    explain(result.baseline);
    result.best = best->point;
    explain(result.best);

    // Pareto frontier: among every evaluated feasible point, keep the
    // cost-ascending sequence of strict CPI improvements.
    std::vector<const TunePoint *> feasible;
    for (const auto &entry : search.memo) {
        if (entry.second.valid && entry.second.point.feasible)
            feasible.push_back(&entry.second.point);
    }
    std::stable_sort(feasible.begin(), feasible.end(),
                     [](const TunePoint *a, const TunePoint *b) {
                         if (a->cost != b->cost)
                             return a->cost < b->cost;
                         return a->cpi < b->cpi;
                     });
    double best_cpi = kInfeasible;
    for (const TunePoint *p : feasible) {
        if (p->cpi < best_cpi) {
            best_cpi = p->cpi;
            result.frontier.push_back(*p);
            explain(result.frontier.back());
        }
    }

    // --- advisor ---------------------------------------------------
    TuneAdvisor &advisor = result.advisor;
    advisor.bottleneck = dominantComponent(result.best.stack);
    double total = result.best.stack.total();
    advisor.share =
        total > 0.0 ? result.best.stack[advisor.bottleneck] / total
                    : 0.0;
    advisor.knob = advisorKnob(advisor.bottleneck);
    advisor.text = msg("residual bottleneck ",
                       toString(advisor.bottleneck), " (",
                       fmtPercent(advisor.share), " of CPI ",
                       fmtDouble(result.best.cpi, 3),
                       "); relieve via ", advisor.knob);
    return result;
}

namespace
{

void
writePoint(JsonWriter &json, const TunePoint &point,
           const std::vector<TuneDimension> &dims)
{
    json.beginObject("coords");
    for (std::size_t d = 0; d < dims.size(); ++d)
        json.field(dims[d].name, point.coords[d]);
    json.endObject();
    json.field("policy", toString(point.policy));
    json.field("cpi", point.cpi);
    json.field("ipc", point.ipc);
    json.field("cost", point.cost);
    json.field("objective", point.objective);
    json.field("feasible", point.feasible);
    json.beginObject("stack");
    for (std::size_t i = 0; i < numStallTypes; ++i)
        json.field(toString(static_cast<StallType>(i)),
                   point.stack.cpi[i]);
    json.endObject();
    json.beginObject("explanation");
    json.field("relieves", toString(point.explanation.relieved));
    json.field("relief_cpi", point.explanation.reliefCpi);
    json.field("total_delta_cpi", point.explanation.totalDeltaCpi);
    json.field("moves", point.explanation.moves);
    json.field("text", point.explanation.text);
    json.endObject();
}

} // namespace

std::string
tuneResultToJson(const TuneResult &result, const std::string &kernel,
                 const TuneOptions &options)
{
    JsonWriter json;
    json.field("kernel", kernel);
    json.field("objective", toString(options.objective));
    json.field("policy", toString(options.policy));
    json.field("sweep_mode", toString(options.mode));
    if (options.mode == SweepMode::Mrc)
        json.field("mrc_rate", options.mrcRate);
    json.field("seed", static_cast<std::uint64_t>(options.seed));
    json.field("restarts",
               static_cast<std::uint64_t>(result.restartsRun));
    json.beginArray("dims");
    for (const TuneDimension &dim : result.dims) {
        json.beginArrayObject();
        json.field("name", dim.name);
        json.beginArray("values");
        for (double v : dim.values)
            json.element(v);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.field("space_size",
               static_cast<std::uint64_t>(result.spaceSize));
    json.field("evaluations",
               static_cast<std::uint64_t>(result.evaluations));
    json.field("eval_fraction",
               result.spaceSize
                   ? static_cast<double>(result.evaluations) /
                         static_cast<double>(result.spaceSize)
                   : 0.0);
    json.field("mrc_approximate", result.mrcApproximate);
    if (result.mrcApproximate)
        json.field("mrc_approximation", result.mrcApproximation);
    json.beginObject("baseline");
    writePoint(json, result.baseline, result.dims);
    json.endObject();
    json.beginObject("best");
    writePoint(json, result.best, result.dims);
    json.endObject();
    json.beginArray("frontier");
    for (const TunePoint &point : result.frontier) {
        json.beginArrayObject();
        writePoint(json, point, result.dims);
        json.endObject();
    }
    json.endArray();
    json.beginObject("advisor");
    json.field("bottleneck", toString(result.advisor.bottleneck));
    json.field("share", result.advisor.share);
    json.field("knob", result.advisor.knob);
    json.field("text", result.advisor.text);
    json.endObject();
    return json.finish();
}

} // namespace gpumech
