/**
 * @file
 * Multithreading model (paper Section IV-A).
 *
 * Given the representative warp's interval profile, estimates the
 * core's CPI when #warps run concurrently without resource
 * contention, by probabilistically counting the instructions from the
 * remaining warps that do NOT hide the representative warp's stall
 * cycles (Eq. 7-16) under the RR and GTO scheduling policies.
 */

#ifndef GPUMECH_CORE_MULTIWARP_HH
#define GPUMECH_CORE_MULTIWARP_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "core/interval.hh"

namespace gpumech
{

/** Output of the multithreading model. */
struct MultithreadingResult
{
    /** Predicted CPI per warp-instruction under multithreading. */
    double cpi = 0.0;

    /** IPC form of the same prediction. */
    double ipc = 0.0;

    /** Total non-overlapped instructions (Eq. 8). */
    double nonoverlappedInsts = 0.0;

    /** Issue probability of a single warp (Eq. 9). */
    double issueProb = 0.0;

    /** Single-warp total cycles of the representative warp. */
    double singleWarpCycles = 0.0;

    /** Per-interval non-overlapped instructions (for diagnostics). */
    std::vector<double> perInterval;
};

/**
 * Run the multithreading model.
 *
 * The paper's Eq. 7 is dimensionally an IPC; we return both the IPC
 * and its reciprocal CPI, clamped so the core never exceeds the issue
 * rate (a physical bound the probabilistic counting can otherwise
 * violate for compute-bound kernels; see DESIGN.md).
 *
 * @param rep representative warp's interval profile
 * @param num_warps warps per core
 * @param config machine description (issue rate)
 * @param policy scheduling policy to model
 */
MultithreadingResult
modelMultithreading(const IntervalProfile &rep, std::uint32_t num_warps,
                    const HardwareConfig &config, SchedulingPolicy policy);

/**
 * Non-overlapped instructions of one interval under round-robin
 * (Eq. 10-11).
 */
double nonoverlappedRR(const Interval &interval, double issue_prob,
                       std::uint32_t num_warps);

/**
 * Non-overlapped instructions of one interval under greedy-then-oldest
 * (Eq. 12-16, with the min/max typo corrected per DESIGN.md).
 */
double nonoverlappedGTO(const Interval &interval, double issue_prob,
                        double avg_interval_insts, std::uint32_t num_warps,
                        double issue_rate);

} // namespace gpumech

#endif // GPUMECH_CORE_MULTIWARP_HH
