#include "core/cpi_stack.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace gpumech
{

std::string
toString(StallType type)
{
    switch (type) {
      case StallType::Base:
        return "BASE";
      case StallType::Dep:
        return "DEP";
      case StallType::L1:
        return "L1";
      case StallType::L2:
        return "L2";
      case StallType::Dram:
        return "DRAM";
      case StallType::Mshr:
        return "MSHR";
      case StallType::Queue:
        return "QUEUE";
      case StallType::Sfu:
        return "SFU";
    }
    return "?";
}

double
CpiStack::total() const
{
    double t = 0.0;
    for (double v : cpi)
        t += v;
    return t;
}

std::string
CpiStack::toLine(int precision) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < numStallTypes; ++i) {
        if (i)
            os << " ";
        os << toString(static_cast<StallType>(i)) << "="
           << fmtDouble(cpi[i], precision);
    }
    return os.str();
}

StackDelta
stackDelta(const CpiStack &from, const CpiStack &to)
{
    StackDelta d;
    for (std::size_t i = 0; i < numStallTypes; ++i) {
        d.delta[i] = to.cpi[i] - from.cpi[i];
        if (d.delta[i] < d.delta[static_cast<int>(d.mostRelieved)])
            d.mostRelieved = static_cast<StallType>(i);
    }
    d.relief = d.delta[static_cast<int>(d.mostRelieved)];
    d.totalDelta = to.total() - from.total();
    return d;
}

std::string
describeRelief(const StackDelta &delta, int precision)
{
    std::ostringstream os;
    const char *sign = delta.totalDelta < 0.0 ? "-" : "+";
    if (delta.relief < 0.0) {
        os << "relieves " << toString(delta.mostRelieved) << " by "
           << fmtDouble(-delta.relief, precision) << " CPI (total "
           << sign << fmtDouble(std::abs(delta.totalDelta), precision)
           << ")";
    } else {
        os << "no component relieved (total " << sign
           << fmtDouble(std::abs(delta.totalDelta), precision)
           << " CPI)";
    }
    return os.str();
}

StallType
dominantComponent(const CpiStack &stack)
{
    StallType top = StallType::Base;
    for (std::size_t i = 1; i < numStallTypes; ++i) {
        if (stack.cpi[i] > stack.cpi[static_cast<int>(top)])
            top = static_cast<StallType>(i);
    }
    return top;
}

CpiStack
buildSingleWarpStack(const IntervalProfile &rep,
                     const CollectorResult &inputs,
                     const HardwareConfig &config)
{
    CpiStack stack;
    double insts = static_cast<double>(rep.totalInsts());
    if (insts == 0.0)
        return stack;

    stack[StallType::Base] = 1.0 / config.issueRate;

    double dep = 0.0, l1 = 0.0, l2 = 0.0, dram = 0.0;
    for (const auto &interval : rep.intervals) {
        switch (interval.cause) {
          case StallCause::None:
            break;
          case StallCause::Compute:
            dep += interval.stallCycles;
            break;
          case StallCause::Memory: {
            const PcProfile &pc = inputs.pcs[interval.causePc];
            l1 += interval.stallCycles * pc.fracL1Hit();
            l2 += interval.stallCycles * pc.fracL2Hit();
            dram += interval.stallCycles * pc.fracL2Miss();
            break;
          }
        }
    }
    stack[StallType::Dep] = dep / insts;
    stack[StallType::L1] = l1 / insts;
    stack[StallType::L2] = l2 / insts;
    stack[StallType::Dram] = dram / insts;
    return stack;
}

CpiStack
buildCpiStack(const IntervalProfile &rep, const CollectorResult &inputs,
              const HardwareConfig &config, const MultithreadingResult &mt,
              const ContentionResult &contention)
{
    CpiStack stack = buildSingleWarpStack(rep, inputs, config);
    double insts = static_cast<double>(rep.totalInsts());
    if (insts == 0.0)
        return stack;

    // Shrink the stall categories so the stack totals the
    // multithreading CPI while BASE stays the configured issue cost
    // (footnote 3: BASE is a constant of the configuration). The
    // relative importance of the stall categories is preserved,
    // as Section VII prescribes.
    double base = stack[StallType::Base];
    double single_stalls = stack.total() - base;
    double mt_stalls = std::max(mt.cpi - base, 0.0);
    double factor =
        single_stalls > 0.0 ? mt_stalls / single_stalls : 0.0;
    for (StallType t : {StallType::Dep, StallType::L1, StallType::L2,
                        StallType::Dram}) {
        stack[t] *= factor;
    }

    // Stack the modeled queuing delays on top (Section VII third
    // bullet), on the same per-core scale as the rest of the stack so
    // the stack total equals CPI_final.
    stack[StallType::Mshr] = contention.mshrCpi;
    stack[StallType::Queue] = contention.queueCpi;
    stack[StallType::Sfu] = contention.sfuCpi;
    return stack;
}

} // namespace gpumech
