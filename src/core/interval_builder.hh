/**
 * @file
 * The interval algorithm (paper Section III-B).
 *
 * Traverses one warp's trace assuming in-order execution at the
 * configured issue rate and forms intervals wherever the dependence-
 * constrained issue cycle of an instruction leaves a gap (Eq. 4):
 *
 *   issue(k+1) = max(issue(k) + 1, done(source of k+1) + 1)
 *
 * Instruction latencies come from the input collector: fixed latencies
 * for compute PCs, AMAT for memory PCs. The traversal reads the
 * kernel's SoA field arrays through the warp view, so the hot loop
 * touches dense memory only.
 */

#ifndef GPUMECH_CORE_INTERVAL_BUILDER_HH
#define GPUMECH_CORE_INTERVAL_BUILDER_HH

#include <vector>

#include "collector/input_collector.hh"
#include "core/interval.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/**
 * Build the interval profile of one warp.
 *
 * @param warp view of the warp's dynamic trace
 * @param inputs per-PC latencies and miss profiles from the collector
 * @param config machine description (issue rate)
 */
IntervalProfile buildIntervalProfile(const WarpView &warp,
                                     const CollectorResult &inputs,
                                     const HardwareConfig &config);

/** Build the interval profiles of every warp in a kernel. */
std::vector<IntervalProfile>
buildAllProfiles(const KernelTrace &kernel, const CollectorResult &inputs,
                 const HardwareConfig &config);

/**
 * Warp count below which buildAllProfilesParallel runs serially: the
 * pool handoff costs more than profiling a handful of warps.
 */
inline constexpr std::uint32_t parallelWarpThreshold = 32;

/**
 * Parallel variant: each warp's interval algorithm is independent, so
 * warps are profiled on the shared thread pool with chunked dynamic
 * scheduling (the speedup opportunity Section VI-D notes but does not
 * explore). Kernels under parallelWarpThreshold warps run serially.
 * Results are bit-identical to the serial version.
 *
 * @param num_threads total threads; 0 uses defaultJobs()
 */
std::vector<IntervalProfile>
buildAllProfilesParallel(const KernelTrace &kernel,
                         const CollectorResult &inputs,
                         const HardwareConfig &config,
                         unsigned num_threads = 0);

} // namespace gpumech

#endif // GPUMECH_CORE_INTERVAL_BUILDER_HH
