#include "core/interval.hh"

namespace gpumech
{

std::uint64_t
IntervalProfile::totalInsts() const
{
    std::uint64_t n = 0;
    for (const auto &iv : intervals)
        n += iv.numInsts;
    return n;
}

double
IntervalProfile::totalStallCycles() const
{
    double s = 0.0;
    for (const auto &iv : intervals)
        s += iv.stallCycles;
    return s;
}

double
IntervalProfile::totalCycles(double issue_rate) const
{
    return static_cast<double>(totalInsts()) / issue_rate +
           totalStallCycles();
}

double
IntervalProfile::warpPerf(double issue_rate) const
{
    double cycles = totalCycles(issue_rate);
    return cycles == 0.0
        ? 0.0
        : static_cast<double>(totalInsts()) / cycles;
}

double
IntervalProfile::avgIntervalInsts() const
{
    if (intervals.empty())
        return 0.0;
    return static_cast<double>(totalInsts()) /
           static_cast<double>(intervals.size());
}

} // namespace gpumech
