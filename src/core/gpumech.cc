#include "core/gpumech.hh"

#include "collector/mrc_collector.hh"
#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "common/trace_span.hh"

namespace gpumech
{

std::string
toString(ModelLevel level)
{
    switch (level) {
      case ModelLevel::MT:
        return "MT";
      case ModelLevel::MT_MSHR:
        return "MT_MSHR";
      case ModelLevel::MT_MSHR_BAND:
        return "MT_MSHR_BAND";
    }
    return "?";
}

namespace
{

/** Assemble a result from a representative profile and inputs. */
GpuMechResult
assemble(const IntervalProfile &rep, std::uint32_t rep_index,
         const CollectorResult &inputs, const HardwareConfig &config,
         SchedulingPolicy policy, ModelLevel level, bool model_sfu)
{
    // The multi-warp + contention model evaluation — cheap analytic
    // math, but it runs once per sweep point, so it gets its own
    // stage span (the kernel name lives on the enclosing "kernel"
    // span installed by the harness).
    Span span("contention");

    GpuMechResult result;
    result.repWarpIndex = rep_index;
    result.repWarpPerf = rep.warpPerf(config.issueRate);
    result.repNumIntervals = rep.intervals.size();

    result.multithreading = modelMultithreading(
        rep, config.warpsPerCore, config, policy);
    result.cpiMultithreading = result.multithreading.cpi;

    bool mshr = level != ModelLevel::MT;
    bool band = level == ModelLevel::MT_MSHR_BAND;
    result.contention =
        modelContention(rep, result.multithreading, inputs, config,
                        mshr, band, model_sfu);
    result.cpiContention = result.contention.cpi;

    // Eq. 3.
    result.cpi = result.cpiMultithreading + result.cpiContention;
    result.ipc = result.cpi > 0.0 ? 1.0 / result.cpi : 0.0;

    result.stack = buildCpiStack(rep, inputs, config,
                                 result.multithreading,
                                 result.contention);
    return result;
}

} // namespace

namespace
{

/** Memo key of a representative-warp profile: inputs + issue rate. */
std::string
repKey(const HardwareConfig &config)
{
    return msg(config.collectorKey(), "|ir=", config.issueRate);
}

} // namespace

GpuMechProfiler::GpuMechProfiler(
    const KernelTrace &kernel, const HardwareConfig &config,
    RepSelection selection, std::uint32_t num_clusters,
    unsigned profile_threads,
    std::shared_ptr<const CollectorResult> precollected,
    std::shared_ptr<const MrcProfile> mrc)
    : kernel(kernel), config(config), mrcProfile(std::move(mrc))
{
    if (kernel.numWarps() == 0) {
        // Thrown (not fatal) so the per-kernel containment boundary in
        // the harness can fail just this kernel.
        throw StatusException(
            Status(StatusCode::FailedValidation,
                   msg("GpuMechProfiler: kernel '", kernel.name(),
                       "' has no warps")));
    }
    if (precollected) {
        collected = std::move(precollected);
    } else if (mrcProfile) {
        Span span("derive", kernel.name());
        collected = std::make_shared<const CollectorResult>(
            deriveCollectorResult(*mrcProfile, kernel, config));
    } else {
        Span span("collect", kernel.name());
        collected = std::make_shared<const CollectorResult>(
            collectInputsParallel(kernel, config, profile_threads));
    }
    {
        Span span("profile", kernel.name());
        warpProfiles = profile_threads == 1
            ? buildAllProfiles(kernel, *collected, config)
            : buildAllProfilesParallel(kernel, *collected, config,
                                       profile_threads);
        repWarp = selectRepresentative(warpProfiles, config, selection,
                                       num_clusters);
    }
    // Seed the evaluateAt memos with the profiling configuration's
    // artifacts so re-evaluating at (or near) it is free.
    collectorMemo.put(config.collectorKey(), collected);
    repMemo.put(repKey(config),
                std::make_shared<const IntervalProfile>(
                    warpProfiles[repWarp]));
}

GpuMechResult
GpuMechProfiler::evaluate(SchedulingPolicy policy, ModelLevel level,
                          bool model_sfu) const
{
    return assemble(warpProfiles[repWarp], repWarp, *collected, config,
                    policy, level, model_sfu);
}

GpuMechResult
GpuMechProfiler::evaluateAt(const HardwareConfig &new_config,
                            SchedulingPolicy policy, ModelLevel level,
                            bool model_sfu) const
{
    // Re-collect cache behaviour and rebuild only the representative
    // warp's interval profile at the new configuration (Section VI-D:
    // clustering and the remaining warps' profiles are per-input work
    // and are reused). Both steps are memoized by the configuration
    // fields they read, so sweeping model-only parameters or repeating
    // a configuration skips them entirely.
    std::shared_ptr<const CollectorResult> new_inputs =
        collectorMemo.getOrCompute(new_config.collectorKey(), [&] {
            if (mrcProfile) {
                Span span("derive", kernel.name());
                return deriveCollectorResult(*mrcProfile, kernel,
                                             new_config);
            }
            Span span("collect", kernel.name());
            return collectInputsParallel(kernel, new_config);
        });
    std::shared_ptr<const IntervalProfile> rep =
        repMemo.getOrCompute(repKey(new_config), [&] {
            Span span("profile", kernel.name());
            return buildIntervalProfile(kernel.warp(repWarp),
                                        *new_inputs, new_config);
        });
    return assemble(*rep, repWarp, *new_inputs, new_config, policy,
                    level, model_sfu);
}

GpuMechResult
runGpuMech(const KernelTrace &kernel, const HardwareConfig &config,
           const GpuMechOptions &options)
{
    GpuMechProfiler profiler(kernel, config, options.selection,
                             options.numClusters);
    return profiler.evaluate(options.policy, options.level,
                             options.modelSfu);
}

} // namespace gpumech
