/**
 * @file
 * GPUMech top-level pipeline (paper Figure 5): input collection,
 * per-warp interval profiles, representative-warp selection, the
 * multi-warp model, and the CPI stack.
 *
 * This is the library's primary public entry point:
 *
 * @code
 *   KernelTrace kernel = someWorkload(config);
 *   GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
 *   std::cout << r.cpi << "\n" << r.stack.toLine() << "\n";
 * @endcode
 */

#ifndef GPUMECH_CORE_GPUMECH_HH
#define GPUMECH_CORE_GPUMECH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collector/input_collector.hh"
#include "common/config.hh"
#include "common/memo.hh"
#include "mem/mrc.hh"
#include "core/contention.hh"
#include "core/cpi_stack.hh"
#include "core/interval_builder.hh"
#include "core/multiwarp.hh"
#include "core/representative.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Model levels of Table II (each adds one mechanism). */
enum class ModelLevel
{
    MT,           //!< multithreading only (Section IV-A)
    MT_MSHR,      //!< + MSHR queuing (Section IV-B1)
    MT_MSHR_BAND, //!< + DRAM bandwidth queuing = full GPUMech
};

/** Human-readable model-level name matching Table II. */
std::string toString(ModelLevel level);

/** Options for a GPUMech run. */
struct GpuMechOptions
{
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin;
    ModelLevel level = ModelLevel::MT_MSHR_BAND;
    RepSelection selection = RepSelection::Clustering;
    std::uint32_t numClusters = 2; //!< k for the clustering selector

    /**
     * Extension: model SFU structural contention (the paper's
     * Section IV-B future-work item). Off by default — the paper
     * assumes a balanced design with no normal-operation contention.
     */
    bool modelSfu = false;
};

/** Full output of a GPUMech run. */
struct GpuMechResult
{
    double cpi = 0.0; //!< CPI_final (Eq. 3)
    double ipc = 0.0; //!< 1 / cpi

    double cpiMultithreading = 0.0;
    double cpiContention = 0.0;

    /** Warp chosen as representative (index into the kernel's warps). */
    std::uint32_t repWarpIndex = 0;

    /** Single-warp IPC of the representative warp (Eq. 5). */
    double repWarpPerf = 0.0;

    /** Number of intervals in the representative profile. */
    std::size_t repNumIntervals = 0;

    /** The predicted CPI stack (Section VII). */
    CpiStack stack;

    MultithreadingResult multithreading;
    ContentionResult contention;
};

/**
 * Run the full GPUMech pipeline on a kernel trace.
 *
 * Prefer this function unless intermediate artifacts need reuse
 * across sweep points (then see GpuMechProfiler below).
 */
GpuMechResult runGpuMech(const KernelTrace &kernel,
                         const HardwareConfig &config,
                         const GpuMechOptions &options = {});

/**
 * Reusable profiling front end.
 *
 * Splits the pipeline the way Section VI-D describes: collecting
 * inputs + profiling all warps + clustering happen once per kernel
 * input, while evaluating a new hardware configuration only reruns
 * the cache simulation and the representative warp's interval
 * algorithm.
 */
class GpuMechProfiler
{
  public:
    /**
     * Profile a kernel: run the input collector, build every warp's
     * interval profile and select the representative warp.
     *
     * @param profile_threads threads for the per-warp interval
     *        algorithm (Section VI-D's unexplored parallelization);
     *        1 = serial, 0 = defaultJobs(). Results are identical
     *        either way.
     * @param precollected collector result for (kernel, config) from a
     *        shared InputCache; when null, collectInputs() runs here.
     * @param mrc optional reuse-distance profile (the MRC fast path):
     *        when set, every collector result — the profiling one
     *        (unless @p precollected is given) and every evaluateAt()
     *        geometry re-collection — is derived from the profile
     *        instead of re-running the functional cache simulation.
     */
    GpuMechProfiler(const KernelTrace &kernel,
                    const HardwareConfig &config,
                    RepSelection selection = RepSelection::Clustering,
                    std::uint32_t num_clusters = 2,
                    unsigned profile_threads = 1,
                    std::shared_ptr<const CollectorResult> precollected =
                        nullptr,
                    std::shared_ptr<const MrcProfile> mrc = nullptr);

    /** Evaluate the multi-warp model at the profiling configuration. */
    GpuMechResult evaluate(SchedulingPolicy policy,
                           ModelLevel level = ModelLevel::MT_MSHR_BAND,
                           bool model_sfu = false) const;

    /**
     * Re-evaluate at a different hardware configuration, reusing the
     * already-selected representative warp (Section VI-D). The cache
     * simulation and the representative warp's interval profile are
     * memoized by the configuration fields they actually read, so
     * design-space sweeps over model-only parameters (MSHRs, DRAM
     * bandwidth) and repeated calls with the same configuration skip
     * collectInputs() entirely. Thread-safe; results are bit-identical
     * to recomputing from scratch.
     */
    GpuMechResult evaluateAt(const HardwareConfig &new_config,
                             SchedulingPolicy policy,
                             ModelLevel level = ModelLevel::MT_MSHR_BAND,
                             bool model_sfu = false) const;

    /** Memo hits of evaluateAt's collector cache (reuse diagnostics). */
    std::size_t collectorCacheHits() const
    {
        return collectorMemo.hits();
    }

    const CollectorResult &inputs() const { return *collected; }
    const std::vector<IntervalProfile> &profiles() const
    {
        return warpProfiles;
    }
    std::uint32_t repIndex() const { return repWarp; }
    const IntervalProfile &repProfile() const
    {
        return warpProfiles[repWarp];
    }

  private:
    const KernelTrace &kernel;
    HardwareConfig config;
    std::shared_ptr<const MrcProfile> mrcProfile; //!< null = rerun mode
    std::shared_ptr<const CollectorResult> collected;
    std::vector<IntervalProfile> warpProfiles;
    std::uint32_t repWarp = 0;

    // evaluateAt memos, keyed by the configuration fields each stage
    // reads (seeded with the profiling configuration's results).
    mutable MemoCache<CollectorResult> collectorMemo;
    mutable MemoCache<IntervalProfile> repMemo;
};

} // namespace gpumech

#endif // GPUMECH_CORE_GPUMECH_HH
