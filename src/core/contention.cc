#include "core/contention.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpumech
{

double
expectedMshrQueuingDelay(double core_reqs, std::uint32_t num_mshrs,
                         double avg_miss_latency)
{
    if (core_reqs <= 0.0 || num_mshrs == 0)
        return 0.0;
    // Eq. 19: request j in arrival order completes after
    // avg_miss_latency * ceil(j / #MSHR); averaging over j and
    // subtracting the uncontended latency gives the expected queuing
    // delay. The sum of ceil(j/M) for j = 1..N has the closed form
    // below (g full batches of M plus a partial batch).
    double n = std::floor(core_reqs);
    double m = static_cast<double>(num_mshrs);
    if (n < 1.0)
        return 0.0;
    double g = std::floor(n / m);
    double sum_ceil = m * g * (g + 1.0) / 2.0 + (n - g * m) * (g + 1.0);
    double expected_latency = avg_miss_latency * sum_ceil / n;
    return std::max(expected_latency - avg_miss_latency, 0.0);
}

double
bandwidthQueuingDelay(double lambda, double service_cycles,
                      double total_reqs)
{
    if (lambda <= 0.0 || service_cycles <= 0.0 || total_reqs <= 0.0)
        return 0.0;
    // Eq. 22: utilization of the deterministic server, clamped below
    // saturation so the waiting time stays finite and continuous (the
    // deficit past rho = 1 is modelContention's to charge).
    double rho = std::min(lambda * service_cycles, kBandwidthRhoClamp);
    // Eq. 21 cap: a request arrives with half the maximum number of
    // requests ahead of it.
    double cap = service_cycles * total_reqs / 2.0;
    double wq = rho * service_cycles / (2.0 * (1.0 - rho));
    return std::min(wq, cap);
}

ContentionResult
modelContention(const IntervalProfile &rep, const MultithreadingResult &mt,
                const CollectorResult &inputs,
                const HardwareConfig &config, bool model_mshr,
                bool model_bandwidth, bool model_sfu)
{
    ContentionResult result;
    double total_insts = static_cast<double>(rep.totalInsts());
    if (total_insts == 0.0)
        return result;

    const double warps = static_cast<double>(config.warpsPerCore);
    const double cores = static_cast<double>(config.numCores);
    const double service = config.dramServiceCycles();

    // Per-core instructions and the span the multithreading model
    // already accounts for.
    double core_insts = total_insts * warps;
    double mt_span = mt.cpi * core_insts;
    result.multithreadedSpan = mt_span;

    // Aggregate the profile's request populations (per core).
    double mshr_reqs = 0.0;     //!< L1-missing load requests
    double dram_reqs = 0.0;     //!< DRAM-bound requests
    double sfu_insts = 0.0;     //!< SFU instructions
    double mem_intervals = 0.0; //!< intervals issuing DRAM requests
    for (const auto &interval : rep.intervals) {
        mshr_reqs += interval.mshrReqs;
        dram_reqs += interval.dramReqs;
        sfu_insts += interval.sfuInsts;
        if (interval.dramReqs > 0.0)
            mem_intervals += 1.0;
    }
    mshr_reqs *= warps;
    dram_reqs *= warps;
    sfu_insts *= warps;

    // --- MSHR model (Eq. 18-20, steady-state aggregation) ---
    // The MSHR file drains at #MSHR / avg_miss_latency requests per
    // cycle; when the profile's demand exceeds what drains within the
    // multithreaded span, the deficit stalls the core.
    if (model_mshr && mshr_reqs > 0.0) {
        double needed =
            mshr_reqs * inputs.avgMissLatency / config.numMshrs;
        result.mshrServiceNeeded = needed;
        result.mshrDelay = std::max(needed - mt_span, 0.0);
    }

    // --- DRAM bandwidth model (Eq. 21-23) ---
    // The channel serves all cores: the M/D/1 waiting time (clamped at
    // kBandwidthRhoClamp so it plateaus instead of diverging) charges
    // each memory interval's requests once (a divergent burst's
    // requests overlap their queuing), and demand beyond the channel's
    // service rate additionally stretches execution by the saturation
    // deficit. Summing the two terms instead of branching on rho >= 1
    // keeps the queue delay continuous and monotone across saturation
    // (pinned by test_contention's QueueDelay*AcrossSaturation tests).
    if (model_bandwidth && dram_reqs > 0.0) {
        double span = mt_span + result.mshrDelay;
        double gpu_reqs = dram_reqs * cores;
        double needed = gpu_reqs * service;
        result.dramServiceNeeded = needed;
        double lambda = gpu_reqs / span;
        result.dramUtilization = lambda * service;
        double wq = bandwidthQueuingDelay(lambda, service, gpu_reqs);
        result.bandwidthDelay =
            wq * mem_intervals + std::max(needed - span, 0.0);
    }

    // --- SFU structural contention (extension) ---
    // Each SFU warp-instruction occupies the unit for
    // warpSize / sfuLanes cycles; the per-core SFU service time
    // beyond the multithreaded span stalls the core. This is the
    // generalization the paper's Section IV-B sketches as future
    // work.
    if (model_sfu && sfu_insts > 0.0) {
        double occupancy =
            static_cast<double>(config.sfuOccupancyCycles());
        double needed = sfu_insts * occupancy;
        double span = mt_span + result.mshrDelay + result.bandwidthDelay;
        result.sfuDelay = std::max(needed - span, 0.0);
    }

    result.mshrCpi = result.mshrDelay / core_insts;
    result.queueCpi = result.bandwidthDelay / core_insts;
    result.sfuCpi = result.sfuDelay / core_insts;
    result.cpi = result.mshrCpi + result.queueCpi + result.sfuCpi;
    return result;
}

} // namespace gpumech
