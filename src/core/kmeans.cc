#include "core/kmeans.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.hh"

namespace gpumech
{

std::uint32_t
KmeansResult::largestCluster() const
{
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < sizes.size(); ++c) {
        if (sizes[c] > sizes[best])
            best = c;
    }
    return best;
}

std::uint32_t
KmeansResult::closestToCenter(const std::vector<FeatureVector> &points,
                              std::uint32_t cluster) const
{
    double best_dist = std::numeric_limits<double>::infinity();
    std::uint32_t best = 0;
    bool found = false;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
        if (assignment[i] != cluster)
            continue;
        double d = squaredDistance(points[i], centers[cluster]);
        if (!found || d < best_dist) {
            best_dist = d;
            best = i;
            found = true;
        }
    }
    if (!found)
        panic("closestToCenter: empty cluster");
    return best;
}

double
squaredDistance(const FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("squaredDistance: dimension mismatch");
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

KmeansResult
kmeans(const std::vector<FeatureVector> &points, std::uint32_t k,
       std::uint32_t max_iters)
{
    if (points.empty())
        panic("kmeans: no points");
    if (k == 0)
        panic("kmeans: k must be positive");
    k = std::min<std::uint32_t>(k,
                                static_cast<std::uint32_t>(points.size()));

    // Deterministic init: order points by their first feature and pick
    // centers at evenly spaced ranks, so k=2 starts from the slowest
    // and fastest warps.
    std::vector<std::uint32_t> order(points.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return points[a][0] < points[b][0];
                     });

    KmeansResult result;
    result.centers.reserve(k);
    for (std::uint32_t c = 0; c < k; ++c) {
        std::size_t rank = (k == 1)
            ? 0
            : static_cast<std::size_t>(c) * (points.size() - 1) / (k - 1);
        result.centers.push_back(points[order[rank]]);
    }

    result.assignment.assign(points.size(), 0);
    result.sizes.assign(k, 0);

    for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
        result.iterations = iter + 1;
        bool changed = false;

        // Assignment step.
        for (std::uint32_t i = 0; i < points.size(); ++i) {
            std::uint32_t best = 0;
            double best_dist = squaredDistance(points[i],
                                               result.centers[0]);
            for (std::uint32_t c = 1; c < k; ++c) {
                double d = squaredDistance(points[i], result.centers[c]);
                if (d < best_dist) {
                    best_dist = d;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                changed = true;
            }
        }

        // Update step.
        std::vector<FeatureVector> sums(
            k, FeatureVector(points[0].size(), 0.0));
        std::vector<std::uint32_t> counts(k, 0);
        for (std::uint32_t i = 0; i < points.size(); ++i) {
            std::uint32_t c = result.assignment[i];
            ++counts[c];
            for (std::size_t d = 0; d < points[i].size(); ++d)
                sums[c][d] += points[i][d];
        }
        for (std::uint32_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // keep the stale center; cluster may refill
            for (std::size_t d = 0; d < sums[c].size(); ++d)
                result.centers[c][d] = sums[c][d] / counts[c];
        }
        result.sizes = counts;

        if (!changed && iter > 0)
            break;
    }
    return result;
}

} // namespace gpumech
