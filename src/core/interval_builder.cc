#include "core/interval_builder.hh"

#include <algorithm>
#include <cmath>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace gpumech
{

namespace
{

/** Accumulate a finished interval's contention annotations. */
void
annotateInterval(Interval &interval, const Opcode *ops,
                 const std::uint32_t *pcs,
                 const std::uint32_t *line_counts, std::size_t first,
                 std::size_t last, const CollectorResult &inputs)
{
    for (std::size_t k = first; k <= last; ++k) {
        if (ops[k] == Opcode::GlobalLoad) {
            const PcProfile &pc = inputs.pcs[pcs[k]];
            double reqs = static_cast<double>(line_counts[k]);
            interval.mshrReqs += reqs * pc.reqL1MissRate();
            interval.dramReqs += reqs * pc.reqL2MissRate();
            interval.memInsts += 1.0 - pc.fracL1Hit();
        } else if (ops[k] == Opcode::GlobalStore) {
            // Write-through: every store request is DRAM-bound but
            // never allocates an MSHR.
            interval.dramReqs += static_cast<double>(line_counts[k]);
        } else if (ops[k] == Opcode::Sfu) {
            interval.sfuInsts += 1.0;
        }
    }
}

} // namespace

IntervalProfile
buildIntervalProfile(const WarpView &warp, const CollectorResult &inputs,
                     const HardwareConfig &config)
{
    IntervalProfile profile;
    profile.warpId = warp.warpId();
    const std::size_t num_insts = warp.numInsts();
    if (num_insts == 0)
        return profile;

    // Dense SoA windows over this warp's instructions.
    const Opcode *ops = warp.opData();
    const std::uint32_t *pcs = warp.pcData();
    const DepArray *deps = warp.depData();
    const std::uint32_t *line_counts = warp.lineCountData();

    const double rate = config.issueRate;
    const double issue_step = 1.0 / rate;

    std::vector<double> done(num_insts, 0.0);

    double prev_issue = 0.0;
    std::size_t interval_first = 0;

    for (std::size_t k = 0; k < num_insts; ++k) {
        if (k % deadlineCheckStride == 0)
            deadlineCheckpoint();
        // Dependence-constrained earliest issue (Eq. 4).
        double dep_ready = 0.0;
        std::int32_t binding_dep = noDep;
        for (std::int32_t d : deps[k]) {
            if (d == noDep)
                continue;
            double avail = done[static_cast<std::size_t>(d)] + 1.0;
            if (avail > dep_ready) {
                dep_ready = avail;
                binding_dep = d;
            }
        }

        double issue;
        if (k == 0) {
            issue = 0.0;
        } else {
            issue = std::max(prev_issue + issue_step, dep_ready);
        }
        done[k] = issue + inputs.latencyOf(pcs[k]);

        if (k > 0 && issue > prev_issue + issue_step) {
            // Stall detected: close the interval ending at k-1.
            Interval interval;
            interval.numInsts = k - interval_first;
            interval.stallCycles = issue - (prev_issue + issue_step);
            const auto src = static_cast<std::size_t>(binding_dep);
            if (ops[src] == Opcode::GlobalLoad) {
                interval.cause = StallCause::Memory;
                interval.causePc = pcs[src];
            } else {
                interval.cause = StallCause::Compute;
            }
            annotateInterval(interval, ops, pcs, line_counts,
                             interval_first, k - 1, inputs);
            profile.intervals.push_back(std::move(interval));
            interval_first = k;
        }
        prev_issue = issue;
    }

    // Final interval: the remaining instructions with no trailing
    // stall.
    Interval last;
    last.numInsts = num_insts - interval_first;
    last.stallCycles = 0.0;
    last.cause = StallCause::None;
    annotateInterval(last, ops, pcs, line_counts, interval_first,
                     num_insts - 1, inputs);
    profile.intervals.push_back(std::move(last));
    return profile;
}

std::vector<IntervalProfile>
buildAllProfiles(const KernelTrace &kernel, const CollectorResult &inputs,
                 const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Profile);

    std::vector<IntervalProfile> profiles;
    profiles.reserve(kernel.numWarps());
    for (WarpView warp : kernel.warps()) {
        deadlineCheckpoint();
        profiles.push_back(buildIntervalProfile(warp, inputs, config));
    }
    return profiles;
}

std::vector<IntervalProfile>
buildAllProfilesParallel(const KernelTrace &kernel,
                         const CollectorResult &inputs,
                         const HardwareConfig &config,
                         unsigned num_threads)
{
    std::uint32_t num_warps = kernel.numWarps();
    if (num_threads == 0)
        num_threads = defaultJobs();
    // Tiny kernels are not worth the pool handoff.
    if (num_threads <= 1 || num_warps < parallelWarpThreshold)
        return buildAllProfiles(kernel, inputs, config);

    evalCheckpoint(FaultSite::Profile);

    std::vector<IntervalProfile> profiles(num_warps);
    // Chunked dynamic scheduling on the shared pool: warps are claimed
    // in chunks as workers free up, so one phase's long warps spread
    // across workers instead of pinning to warp_id % num_threads.
    parallelFor(
        num_warps,
        [&](std::size_t w) {
            profiles[w] = buildIntervalProfile(
                kernel.warp(static_cast<std::uint32_t>(w)), inputs,
                config);
        },
        4, num_threads);
    return profiles;
}

} // namespace gpumech
