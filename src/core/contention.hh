/**
 * @file
 * Resource-contention model (paper Section IV-B): queuing delays from
 * a finite MSHR file (Eq. 18-20) and from limited DRAM bandwidth via
 * an M/D/1 queue (Eq. 21-23).
 *
 * The per-request expected delays follow the paper's equations; their
 * aggregation is applied in steady state over the representative
 * warp's whole profile rather than per interval in isolation: the
 * service time each shared resource needs for the profile's requests
 * (MSHR: requests * avg_miss_latency / #MSHR; DRAM: requests *
 * service_time) is compared against the multithreaded execution span,
 * and only the deficit is charged. This captures the same saturation
 * physics while crediting requests that drain during the other
 * intervals of a loop iteration (see DESIGN.md).
 */

#ifndef GPUMECH_CORE_CONTENTION_HH
#define GPUMECH_CORE_CONTENTION_HH

#include <cstdint>

#include "collector/input_collector.hh"
#include "common/config.hh"
#include "core/interval.hh"
#include "core/multiwarp.hh"

namespace gpumech
{

/** Output of the contention model. */
struct ContentionResult
{
    /** Combined contention CPI (Eq. 17's role, per-core scale). */
    double cpi = 0.0;

    /** Per-core cycles lost to MSHR saturation. */
    double mshrDelay = 0.0;

    /** Per-core cycles lost to DRAM-bandwidth queuing. */
    double bandwidthDelay = 0.0;

    /**
     * Per-core cycles lost to SFU structural contention (extension:
     * the paper's Section IV-B future-work item).
     */
    double sfuDelay = 0.0;

    /** CPI share of the MSHR category (for the CPI stack). */
    double mshrCpi = 0.0;

    /** CPI share of the QUEUE category. */
    double queueCpi = 0.0;

    /** CPI share of the SFU category (extension). */
    double sfuCpi = 0.0;

    // Diagnostics.
    double mshrServiceNeeded = 0.0;  //!< MSHR-throughput cycles needed
    double dramServiceNeeded = 0.0;  //!< DRAM service cycles needed
    double multithreadedSpan = 0.0;  //!< baseline span from the MT model
    double dramUtilization = 0.0;    //!< rho of the DRAM channel
};

/**
 * Expected per-request MSHR queuing delay (Eq. 19) for a burst of
 * @p core_reqs concurrent requests on a core with @p num_mshrs
 * entries and uncontended miss latency @p avg_miss_latency.
 */
double expectedMshrQueuingDelay(double core_reqs, std::uint32_t num_mshrs,
                                double avg_miss_latency);

/**
 * Utilization ceiling at which the M/D/1 waiting time (Eq. 21) is
 * evaluated. The raw formula diverges as rho -> 1 while the
 * saturation deficit (Eq. 23's regime) starts from zero at rho = 1,
 * which used to leave a cliff exactly at the regime boundary:
 * sub-percent input shifts around saturation flipped the branch and
 * swung the predicted CPI. Clamping rho keeps the queuing term a
 * smooth plateau that the linearly growing deficit takes over from,
 * making total queue delay continuous and monotone across rho = 1.
 */
constexpr double kBandwidthRhoClamp = 0.95;

/**
 * M/D/1 waiting time (Eq. 21) with the paper's cap of half the
 * maximum number of requests ahead: arrival rate lambda,
 * deterministic service time s. The utilization is evaluated at no
 * more than kBandwidthRhoClamp, so the return value is continuous and
 * monotonically non-decreasing in lambda even across saturation; the
 * service deficit beyond rho = 1 is charged separately by
 * modelContention.
 */
double bandwidthQueuingDelay(double lambda, double service_cycles,
                             double total_reqs);

/**
 * Run the contention model over the representative warp's profile.
 *
 * @param rep representative warp's interval profile (annotated with
 *        per-interval request counts by the interval builder)
 * @param mt multithreading-model result (provides the baseline span)
 * @param inputs collector outputs (avg_miss_latency)
 * @param config machine description
 * @param model_mshr enable the MSHR model (Eq. 18-20)
 * @param model_bandwidth enable the DRAM bandwidth model (Eq. 21-23)
 * @param model_sfu enable the SFU structural-contention extension
 */
ContentionResult
modelContention(const IntervalProfile &rep, const MultithreadingResult &mt,
                const CollectorResult &inputs,
                const HardwareConfig &config, bool model_mshr,
                bool model_bandwidth, bool model_sfu = false);

} // namespace gpumech

#endif // GPUMECH_CORE_CONTENTION_HH
