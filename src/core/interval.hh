/**
 * @file
 * Interval profile data structures (paper Eq. 2).
 *
 * An interval is a run of instructions issued back-to-back at the
 * maximum issue rate, followed by stall cycles. The profile of a warp
 * is the ordered list of its intervals; it is the only thing the
 * multi-warp model needs about a warp.
 */

#ifndef GPUMECH_CORE_INTERVAL_HH
#define GPUMECH_CORE_INTERVAL_HH

#include <cstdint>
#include <vector>

namespace gpumech
{

/** What ended an interval (used for CPI-stack attribution). */
enum class StallCause : std::uint8_t
{
    None,    //!< final interval: trace ended without a stall
    Compute, //!< dependence on a compute instruction (DEP category)
    Memory,  //!< dependence on a global load (split by miss events)
};

/** One interval of a warp (Eq. 2 entry plus model annotations). */
struct Interval
{
    /** Instructions issued at full rate in this interval. */
    std::uint64_t numInsts = 0;

    /** Stall cycles following the last instruction. */
    double stallCycles = 0.0;

    /** What the stall was waiting on. */
    StallCause cause = StallCause::None;

    /** PC of the load causing a Memory stall (valid iff Memory). */
    std::uint32_t causePc = 0;

    // ---- contention-model annotations (from the input collector) ----

    /** Expected L1-missing load requests issued in this interval. */
    double mshrReqs = 0.0;

    /** Expected DRAM-bound requests (load L2 misses + all stores). */
    double dramReqs = 0.0;

    /** Expected number of L1-missing load instructions. */
    double memInsts = 0.0;

    /** SFU instructions in this interval (extension: SFU model). */
    double sfuInsts = 0.0;
};

/** Interval profile of one warp (Eq. 2). */
struct IntervalProfile
{
    std::uint32_t warpId = 0;
    std::vector<Interval> intervals;

    /** Total instructions across intervals. */
    std::uint64_t totalInsts() const;

    /** Total stall cycles across intervals. */
    double totalStallCycles() const;

    /**
     * Total single-warp execution cycles:
     * sum(insts / issue_rate + stalls).
     */
    double totalCycles(double issue_rate) const;

    /**
     * Warp performance — IPC of the warp running alone (Eq. 5); also
     * the issue probability of Eq. 9.
     */
    double warpPerf(double issue_rate) const;

    /** Average instructions per interval (Eq. 13). */
    double avgIntervalInsts() const;
};

} // namespace gpumech

#endif // GPUMECH_CORE_INTERVAL_HH
