/**
 * @file
 * Representative-warp selection (paper Section III-C).
 *
 * Each warp is reduced to the 2-D feature vector of Eq. 6 —
 * (warp performance, instruction count), both normalized by their
 * averages — and 2-cluster k-means picks the warp closest to the
 * center of the largest cluster. The MAX/MIN selectors of Figure 7
 * are provided for the comparison bench.
 */

#ifndef GPUMECH_CORE_REPRESENTATIVE_HH
#define GPUMECH_CORE_REPRESENTATIVE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "core/interval.hh"
#include "core/kmeans.hh"

namespace gpumech
{

/** Representative-warp selection method (Figure 7). */
enum class RepSelection
{
    Clustering, //!< k-means, largest cluster's center (the paper's pick)
    MaxPerf,    //!< warp with the maximum single-warp IPC
    MinPerf,    //!< warp with the minimum single-warp IPC
};

/** Human-readable selection name. */
std::string toString(RepSelection sel);

/** Build the Eq. 6 feature vectors for a set of warp profiles. */
std::vector<FeatureVector>
warpFeatures(const std::vector<IntervalProfile> &profiles,
             const HardwareConfig &config);

/**
 * Pick the representative warp.
 *
 * @param profiles interval profiles of every warp (non-empty)
 * @param config machine description (issue rate)
 * @param sel selection method
 * @param num_clusters k for the Clustering method (the paper uses 2)
 * @return index into @p profiles of the representative warp
 */
std::uint32_t selectRepresentative(
    const std::vector<IntervalProfile> &profiles,
    const HardwareConfig &config,
    RepSelection sel = RepSelection::Clustering,
    std::uint32_t num_clusters = 2);

} // namespace gpumech

#endif // GPUMECH_CORE_REPRESENTATIVE_HH
