/**
 * @file
 * Small deterministic k-means for the representative-warp selection
 * (paper Section III-C uses k = 2, but the implementation is generic
 * so the cluster-count ablation bench can sweep k).
 */

#ifndef GPUMECH_CORE_KMEANS_HH
#define GPUMECH_CORE_KMEANS_HH

#include <cstdint>
#include <vector>

namespace gpumech
{

/** A point in feature space. */
using FeatureVector = std::vector<double>;

/** Result of a k-means run. */
struct KmeansResult
{
    /** Cluster index of each input point. */
    std::vector<std::uint32_t> assignment;

    /** Final cluster centers. */
    std::vector<FeatureVector> centers;

    /** Number of points per cluster. */
    std::vector<std::uint32_t> sizes;

    /** Iterations executed before convergence (or the cap). */
    std::uint32_t iterations = 0;

    /** Index of the largest cluster. */
    std::uint32_t largestCluster() const;

    /**
     * Index (into the input points) of the point closest to the given
     * cluster's center; the points must be the ones clustered.
     */
    std::uint32_t closestToCenter(const std::vector<FeatureVector> &points,
                                  std::uint32_t cluster) const;
};

/** Squared Euclidean distance. */
double squaredDistance(const FeatureVector &a, const FeatureVector &b);

/**
 * Run k-means with deterministic initialization (centers seeded from
 * points spread across the first-feature range) and Lloyd iterations
 * until assignments stabilize or max_iters is hit.
 *
 * @param points input feature vectors (all the same dimension)
 * @param k number of clusters (clamped to the point count)
 * @param max_iters iteration cap
 */
KmeansResult kmeans(const std::vector<FeatureVector> &points,
                    std::uint32_t k, std::uint32_t max_iters = 100);

} // namespace gpumech

#endif // GPUMECH_CORE_KMEANS_HH
