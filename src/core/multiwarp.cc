#include "core/multiwarp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

double
nonoverlappedRR(const Interval &interval, double issue_prob,
                std::uint32_t num_warps)
{
    if (interval.numInsts == 0)
        return 0.0;
    // Eq. 10: one waiting slot between each pair of scheduled
    // instructions of the representative warp.
    double waiting_slots = static_cast<double>(interval.numInsts - 1);
    // Eq. 11: every remaining warp is scheduled once per slot and
    // issues with the uniform issue probability.
    return issue_prob * static_cast<double>(num_warps - 1) *
           waiting_slots;
}

double
nonoverlappedGTO(const Interval &interval, double issue_prob,
                 double avg_interval_insts, std::uint32_t num_warps,
                 double issue_rate)
{
    // Eq. 15 (corrected): probability a remaining warp gets scheduled
    // during this interval's stall window, capped at 1.
    double prob_in_stall =
        std::min(issue_prob * interval.stallCycles, 1.0);
    // Eq. 14: expected warps issuing during the stall.
    double issue_warps =
        prob_in_stall * static_cast<double>(num_warps - 1);
    // Eq. 12: each issuing warp runs one interval's worth of
    // instructions before yielding back.
    double issue_insts = avg_interval_insts * issue_warps;
    // Eq. 16 (corrected): instructions beyond the stall cycles do not
    // overlap.
    return std::max(issue_insts - interval.stallCycles * issue_rate,
                    0.0);
}

MultithreadingResult
modelMultithreading(const IntervalProfile &rep, std::uint32_t num_warps,
                    const HardwareConfig &config, SchedulingPolicy policy)
{
    if (num_warps == 0)
        panic("modelMultithreading: need at least one warp");
    if (rep.intervals.empty())
        panic("modelMultithreading: empty interval profile");

    const double rate = config.issueRate;
    MultithreadingResult result;
    result.issueProb = rep.warpPerf(rate); // Eq. 9
    result.singleWarpCycles = rep.totalCycles(rate);

    double total_insts = static_cast<double>(rep.totalInsts());
    double avg_insts = rep.avgIntervalInsts();

    result.perInterval.reserve(rep.intervals.size());
    double nonoverlapped = 0.0;
    if (num_warps > 1) {
        for (const auto &interval : rep.intervals) {
            double n;
            if (policy == SchedulingPolicy::RoundRobin) {
                n = nonoverlappedRR(interval, result.issueProb,
                                    num_warps);
            } else {
                n = nonoverlappedGTO(interval, result.issueProb,
                                     avg_insts, num_warps, rate);
            }
            result.perInterval.push_back(n);
            nonoverlapped += n;
        }
    } else {
        result.perInterval.assign(rep.intervals.size(), 0.0);
    }
    result.nonoverlappedInsts = nonoverlapped;

    // Eq. 7, inverted to a true CPI, with two physical bounds: the
    // core cannot issue faster than the issue rate, and multithreading
    // cannot make the kernel slower than serializing all warps.
    double cycles = result.singleWarpCycles + nonoverlapped / rate;
    double min_cycles = num_warps * total_insts / rate;
    double max_cycles = num_warps * result.singleWarpCycles;
    cycles = std::clamp(cycles, min_cycles, max_cycles);

    result.ipc = num_warps * total_insts / cycles;
    result.cpi = 1.0 / result.ipc;
    return result;
}

} // namespace gpumech
