/**
 * @file
 * CPI stacks (paper Section VII, Table III): the breakdown of a
 * kernel's predicted CPI into issue cycles (BASE), compute-dependence
 * stalls (DEP), memory stalls split by miss level (L1/L2/DRAM), and
 * the modeled queuing delays (MSHR/QUEUE).
 */

#ifndef GPUMECH_CORE_CPI_STACK_HH
#define GPUMECH_CORE_CPI_STACK_HH

#include <array>
#include <cstdint>
#include <string>

#include "collector/input_collector.hh"
#include "common/config.hh"
#include "core/contention.hh"
#include "core/interval.hh"
#include "core/multiwarp.hh"

namespace gpumech
{

/** Stall categories of Table III. */
enum class StallType : std::uint8_t
{
    Base,  //!< instruction issue cycles
    Dep,   //!< compute dependencies
    L1,    //!< L1 hits
    L2,    //!< L2 hits
    Dram,  //!< DRAM access latency (no queuing)
    Mshr,  //!< MSHR queuing delay
    Queue, //!< DRAM-bandwidth queuing delay
    Sfu,   //!< SFU structural contention (extension, off by default)
};

/** Number of stack categories. */
constexpr std::size_t numStallTypes = 8;

/** Table III abbreviation for a category. */
std::string toString(StallType type);

/** A CPI stack: cycles-per-instruction in each category. */
struct CpiStack
{
    std::array<double, numStallTypes> cpi{};

    double &operator[](StallType t) { return cpi[static_cast<int>(t)]; }
    double
    operator[](StallType t) const
    {
        return cpi[static_cast<int>(t)];
    }

    /** Sum of all categories (the total predicted CPI). */
    double total() const;

    /** Render the stack as one line, e.g. "BASE=1.00 DEP=0.42 ...". */
    std::string toLine(int precision = 3) const;
};

/**
 * Component-wise difference between two CPI stacks, plus the
 * attribution the tune mode's explanations are built from: which
 * component a configuration move relieved the most, and by how much.
 */
struct StackDelta
{
    /** Per-category CPI change, to - from (negative = relieved). */
    std::array<double, numStallTypes> delta{};

    /**
     * Category with the most negative delta (ties break toward the
     * lowest Table III index, so attribution is deterministic). When
     * no category decreased, this is the argmin all the same and
     * relief is >= 0.
     */
    StallType mostRelieved = StallType::Base;

    /** delta[mostRelieved]; <= 0 whenever any category was relieved. */
    double relief = 0.0;

    /** to.total() - from.total(). */
    double totalDelta = 0.0;
};

/** Compute the delta/attribution of moving from @p from to @p to. */
StackDelta stackDelta(const CpiStack &from, const CpiStack &to);

/**
 * One-phrase attribution, e.g. "relieves QUEUE by 0.412 CPI (total
 * -0.502)"; when nothing was relieved, "no component relieved (total
 * +0.120 CPI)".
 */
std::string describeRelief(const StackDelta &delta, int precision = 3);

/**
 * Largest category of a stack (ties break toward the lowest Table III
 * index) — the residual bottleneck the tune advisor names.
 */
StallType dominantComponent(const CpiStack &stack);

/**
 * Build the CPI stack of the representative warp running alone
 * (Section VII first bullet): BASE is 1/issue_rate per instruction;
 * each interval's stall cycles are attributed to DEP or split across
 * L1/L2/DRAM by the causing load's miss-event distribution.
 */
CpiStack buildSingleWarpStack(const IntervalProfile &rep,
                              const CollectorResult &inputs,
                              const HardwareConfig &config);

/**
 * Build the multithreaded CPI stack (Section VII): the single-warp
 * stall categories are shrunk so the stack totals the multithreading
 * CPI (BASE stays constant per footnote 3), then the modeled MSHR and
 * QUEUE delays are stacked on top.
 */
CpiStack buildCpiStack(const IntervalProfile &rep,
                       const CollectorResult &inputs,
                       const HardwareConfig &config,
                       const MultithreadingResult &mt,
                       const ContentionResult &contention);

} // namespace gpumech

#endif // GPUMECH_CORE_CPI_STACK_HH
