#include "core/representative.hh"

#include "common/logging.hh"

namespace gpumech
{

std::string
toString(RepSelection sel)
{
    switch (sel) {
      case RepSelection::Clustering:
        return "Clustering";
      case RepSelection::MaxPerf:
        return "MAX";
      case RepSelection::MinPerf:
        return "MIN";
    }
    return "?";
}

std::vector<FeatureVector>
warpFeatures(const std::vector<IntervalProfile> &profiles,
             const HardwareConfig &config)
{
    if (profiles.empty())
        panic("warpFeatures: no profiles");

    double avg_perf = 0.0;
    double avg_insts = 0.0;
    for (const auto &p : profiles) {
        avg_perf += p.warpPerf(config.issueRate);
        avg_insts += static_cast<double>(p.totalInsts());
    }
    avg_perf /= static_cast<double>(profiles.size());
    avg_insts /= static_cast<double>(profiles.size());
    if (avg_perf == 0.0 || avg_insts == 0.0)
        panic("warpFeatures: degenerate profiles (zero average)");

    std::vector<FeatureVector> features;
    features.reserve(profiles.size());
    for (const auto &p : profiles) {
        features.push_back(
            {p.warpPerf(config.issueRate) / avg_perf,
             static_cast<double>(p.totalInsts()) / avg_insts});
    }
    return features;
}

std::uint32_t
selectRepresentative(const std::vector<IntervalProfile> &profiles,
                     const HardwareConfig &config, RepSelection sel,
                     std::uint32_t num_clusters)
{
    if (profiles.empty())
        panic("selectRepresentative: no profiles");
    if (profiles.size() == 1)
        return 0;

    if (sel == RepSelection::MaxPerf || sel == RepSelection::MinPerf) {
        std::uint32_t best = 0;
        for (std::uint32_t i = 1; i < profiles.size(); ++i) {
            double a = profiles[i].warpPerf(config.issueRate);
            double b = profiles[best].warpPerf(config.issueRate);
            bool better = sel == RepSelection::MaxPerf ? a > b : a < b;
            if (better)
                best = i;
        }
        return best;
    }

    auto features = warpFeatures(profiles, config);
    KmeansResult clusters = kmeans(features, num_clusters);
    std::uint32_t largest = clusters.largestCluster();
    return clusters.closestToCenter(features, largest);
}

} // namespace gpumech
