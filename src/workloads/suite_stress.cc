/**
 * @file
 * Stress kernels with strongly phased behaviour.
 *
 * The contention models aggregate resource demand in steady state
 * over the whole profile (DESIGN.md §"Implementation corrections"),
 * which deliberately washes out phase structure. These kernels put a
 * number on that trade-off: each alternates between a compute-only
 * phase and a memory-heavy phase, so per-phase contention differs
 * wildly from the kernel-wide average. They are not part of the
 * 40-kernel evaluation suite; the ablation bench
 * `ablation_phase_sensitivity` and the tests use them.
 */

#include "workloads/archetypes.hh"
#include "workloads/patterns.hh"
#include "workloads/workload.hh"

#include "common/rng.hh"
#include "trace/trace_builder.hh"

namespace gpumech
{

namespace
{

/** One phase of a phased kernel. */
struct PhaseSpec
{
    std::uint32_t iterations = 20;
    std::uint32_t loadsPerIter = 0;    //!< 0 = compute-only phase
    std::uint32_t loadDivergence = 1;
    std::uint32_t computePerIter = 6;
    std::uint32_t storesPerIter = 0;
    std::uint32_t storeDivergence = 1;
};

/**
 * Emit a kernel whose warps execute the given phases back to back.
 * Each phase gets its own static PCs so the per-PC latency table
 * keeps the phases' memory behaviour separate.
 */
KernelTrace
phasedKernel(const std::string &name,
             const std::vector<PhaseSpec> &phases,
             const HardwareConfig &config)
{
    KernelTrace kernel(name);

    struct PhasePcs
    {
        std::uint32_t load = 0;
        std::vector<std::uint32_t> compute;
        std::uint32_t store = 0;
    };
    std::vector<PhasePcs> pcs(phases.size());
    for (std::size_t p = 0; p < phases.size(); ++p) {
        if (phases[p].loadsPerIter > 0) {
            pcs[p].load = kernel.addStatic(
                Opcode::GlobalLoad, "p" + std::to_string(p) + "_ld");
        }
        for (std::uint32_t c = 0; c < phases[p].computePerIter; ++c) {
            pcs[p].compute.push_back(kernel.addStatic(
                c % 2 ? Opcode::FpAlu : Opcode::IntAlu));
        }
        if (phases[p].storesPerIter > 0) {
            pcs[p].store = kernel.addStatic(
                Opcode::GlobalStore, "p" + std::to_string(p) + "_st");
        }
    }

    constexpr Addr stream_base = 0x700000000ULL;
    constexpr Addr out_base = 0x800000000ULL;
    constexpr Addr slice = 8ULL << 20;

    // Phase structure is static, so the per-warp trace size is exact.
    TraceSizeHint hint;
    for (const PhaseSpec &phase : phases) {
        hint.instsPerWarp += std::uint64_t{phase.iterations} *
            (phase.loadsPerIter + phase.computePerIter +
             phase.storesPerIter);
        hint.linesPerWarp += std::uint64_t{phase.iterations} *
            (std::uint64_t{phase.loadsPerIter} * phase.loadDivergence +
             std::uint64_t{phase.storesPerIter} * phase.storeDivergence);
    }

    std::uint32_t num_warps = totalWarps(config);
    kernel.reserveTrace(num_warps, num_warps * hint.instsPerWarp,
                        num_warps * hint.linesPerWarp);
    // Scratch buffers reused across every warp and iteration keep the
    // emission loop allocation-free in steady state.
    std::vector<Addr> addrs;
    std::vector<Reg> loaded;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        TraceBuilder b(kernel, w, w / 4, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);
        Addr in_cursor = stream_base + static_cast<Addr>(w) * slice;
        Addr out_cursor = out_base + static_cast<Addr>(w) * slice;

        Reg carry = regNone;
        for (std::size_t p = 0; p < phases.size(); ++p) {
            const PhaseSpec &phase = phases[p];
            for (std::uint32_t it = 0; it < phase.iterations; ++it) {
                loaded.clear();
                for (std::uint32_t l = 0; l < phase.loadsPerIter;
                     ++l) {
                    divergentPattern(in_cursor, config.warpSize,
                                     phase.loadDivergence,
                                     config.l1LineBytes, addrs);
                    in_cursor += static_cast<Addr>(
                                     phase.loadDivergence) *
                                 config.l1LineBytes;
                    loaded.push_back(b.globalLoad(pcs[p].load, addrs));
                }
                Reg r = carry;
                for (std::uint32_t c = 0; c < phase.computePerIter;
                     ++c) {
                    Reg src = c < loaded.size() ? loaded[c] : r;
                    r = src != regNone
                        ? b.compute(pcs[p].compute[c], {src})
                        : b.compute(pcs[p].compute[c]);
                }
                carry = r;
                for (std::uint32_t s = 0; s < phase.storesPerIter;
                     ++s) {
                    divergentPattern(out_cursor, config.warpSize,
                                     phase.storeDivergence,
                                     config.l1LineBytes, addrs);
                    out_cursor += static_cast<Addr>(
                                      phase.storeDivergence) *
                                  config.l1LineBytes;
                    if (carry != regNone)
                        b.globalStore(pcs[p].store, addrs, {carry});
                    else
                        b.globalStore(pcs[p].store, addrs);
                }
            }
        }
        b.finish();
    }
    return kernel;
}

} // namespace

std::vector<Workload>
makeStressSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string name, std::string desc,
                        auto generator) {
        suite.push_back(Workload{std::move(name), "stress",
                                 std::move(desc), false, true,
                                 std::move(generator)});
    };

    add("stress_two_phase",
        "long compute phase followed by a divergent memory phase",
        [](const HardwareConfig &c) {
            return phasedKernel(
                "stress_two_phase",
                {PhaseSpec{40, 0, 1, 8, 0, 1},
                 PhaseSpec{40, 2, 16, 3, 1, 8}},
                c);
        });

    add("stress_alternating",
        "compute and memory behaviour alternating every few "
        "iterations",
        [](const HardwareConfig &c) {
            std::vector<PhaseSpec> phases;
            for (int i = 0; i < 6; ++i) {
                phases.push_back(PhaseSpec{8, 0, 1, 8, 0, 1});
                phases.push_back(PhaseSpec{8, 1, 16, 3, 0, 1});
            }
            return phasedKernel("stress_alternating", phases, c);
        });

    add("stress_write_burst_tail",
        "quiet streaming followed by a divergent write burst",
        [](const HardwareConfig &c) {
            return phasedKernel(
                "stress_write_burst_tail",
                {PhaseSpec{50, 1, 1, 6, 0, 1},
                 PhaseSpec{12, 0, 1, 2, 3, 32}},
                c);
        });

    return suite;
}

} // namespace gpumech
