/**
 * @file
 * Per-thread address pattern generators.
 *
 * Every memory-behaviour knob the evaluation needs — coalescing
 * degree, hot-set reuse, streaming — reduces to how a warp's 32
 * threads spread their addresses over cache lines. These helpers
 * build the per-thread address vectors the TraceBuilder coalesces.
 */

#ifndef GPUMECH_WORKLOADS_PATTERNS_HH
#define GPUMECH_WORKLOADS_PATTERNS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/coalescer.hh"

namespace gpumech
{

// Each pattern has two forms: an output-parameter form that fills a
// caller-owned buffer (clearing it first), so per-warp loops can emit
// millions of requests without allocating, and a return-by-value form
// forwarding to it for call sites where convenience wins.

/**
 * Fully coalesced access: thread t reads base + t*elem_bytes; one or
 * two lines per warp depending on alignment and element size.
 */
void coalescedPattern(Addr base, std::uint32_t threads,
                      std::uint32_t elem_bytes, std::vector<Addr> &out);
std::vector<Addr> coalescedPattern(Addr base, std::uint32_t threads,
                                   std::uint32_t elem_bytes = 4);

/**
 * Strided access: thread t reads base + t*stride_bytes. A stride of
 * a line size or more gives one line per thread (degree = threads).
 */
void stridedPattern(Addr base, std::uint32_t threads,
                    std::uint32_t stride_bytes, std::vector<Addr> &out);
std::vector<Addr> stridedPattern(Addr base, std::uint32_t threads,
                                 std::uint32_t stride_bytes);

/**
 * Divergent access with an exact divergence degree: the warp's
 * threads spread round-robin over @p degree distinct lines starting
 * at @p base.
 */
void divergentPattern(Addr base, std::uint32_t threads,
                      std::uint32_t degree, std::uint32_t line_bytes,
                      std::vector<Addr> &out);
std::vector<Addr> divergentPattern(Addr base, std::uint32_t threads,
                                   std::uint32_t degree,
                                   std::uint32_t line_bytes = 128);

/**
 * Random divergent access: @p degree distinct random lines inside
 * [region_base, region_base + region_bytes).
 */
void randomDivergentPattern(Rng &rng, Addr region_base,
                            std::uint64_t region_bytes,
                            std::uint32_t threads, std::uint32_t degree,
                            std::uint32_t line_bytes,
                            std::vector<Addr> &out);
std::vector<Addr> randomDivergentPattern(Rng &rng, Addr region_base,
                                         std::uint64_t region_bytes,
                                         std::uint32_t threads,
                                         std::uint32_t degree,
                                         std::uint32_t line_bytes = 128);

} // namespace gpumech

#endif // GPUMECH_WORKLOADS_PATTERNS_HH
