#include "workloads/archetypes.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/trace_builder.hh"
#include "workloads/patterns.hh"

namespace gpumech
{

namespace
{

// Disjoint base addresses of the synthetic address space.
constexpr Addr streamBase = 0x100000000ULL; //!< per-warp input slices
constexpr Addr hotBase = 0x200000000ULL;    //!< kernel-wide hot set
constexpr Addr sharedBase = 0x300000000ULL; //!< kernel-shared region
constexpr Addr outBase = 0x400000000ULL;    //!< per-warp output slices
constexpr Addr chaseBase = 0x500000000ULL;  //!< pointer pool
constexpr Addr binsBase = 0x600000000ULL;   //!< histogram bins

/** Generous per-warp slice so streams never alias. */
constexpr Addr warpSlice = 8ULL << 20;

/** Deterministic per-warp RNG derived from the kernel name. */
Rng
warpRng(const std::string &name, std::uint32_t warp_id)
{
    Rng seed_rng = Rng::fromString(name);
    return Rng(seed_rng.next() ^
               (0x9e3779b97f4a7c15ULL * (warp_id + 1)));
}

/** Compute opcode for slot i under an FP share. */
Opcode
computeOp(std::uint32_t i, double fp_fraction)
{
    double position = (static_cast<double>(i % 8) + 0.5) / 8.0;
    return position < fp_fraction ? Opcode::FpAlu : Opcode::IntAlu;
}

/**
 * Apply a workload-declared size hint: pre-size the kernel's flat SoA
 * arrays for every warp up front, and each builder as it starts.
 */
void
reserveKernel(KernelTrace &kernel, std::uint32_t num_warps,
              const TraceSizeHint &hint)
{
    kernel.reserveTrace(num_warps, num_warps * hint.instsPerWarp,
                        num_warps * hint.linesPerWarp);
}

} // namespace

std::uint32_t
totalWarps(const HardwareConfig &config)
{
    return config.numCores * config.warpsPerCore;
}

TraceSizeHint
sizeHint(const LoopKernelParams &params)
{
    TraceSizeHint hint;
    std::uint64_t per_iter = params.independentCompute +
        std::uint64_t{params.loadsPerIter} * (1 + params.computePerLoad) +
        params.sfuPerIter + params.sharedPerIter + params.storesPerIter +
        1; // loop branch
    if (params.extraPathFraction > 0.0)
        per_iter += params.extraPathCompute;
    // Iteration variance scales the trip count by at most (1 + v).
    auto iters = static_cast<std::uint64_t>(std::ceil(
        params.iterations * (1.0 + params.iterationVariance)));
    hint.instsPerWarp = iters * per_iter;
    hint.linesPerWarp = iters *
        (std::uint64_t{params.loadsPerIter} * params.loadDivergence +
         std::uint64_t{params.storesPerIter} * params.storeDivergence);
    return hint;
}

TraceSizeHint
sizeHint(const PointerChaseParams &params)
{
    TraceSizeHint hint;
    hint.instsPerWarp =
        std::uint64_t{params.chainLength} * (1 + params.computeBetween);
    hint.linesPerWarp =
        std::uint64_t{params.chainLength} * params.divergence;
    return hint;
}

TraceSizeHint
sizeHint(const ReductionParams &params)
{
    TraceSizeHint hint;
    hint.instsPerWarp = std::uint64_t{params.loadsPerWarp} * 2 +
        (params.useShared ? std::uint64_t{params.levels} * 3 : 0) +
        std::uint64_t{params.warpsPerBlock} * 2 + 1;
    hint.linesPerWarp =
        params.loadsPerWarp + params.warpsPerBlock + 1;
    return hint;
}

TraceSizeHint
sizeHint(const TiledMatmulParams &params)
{
    TraceSizeHint hint;
    hint.instsPerWarp = std::uint64_t{params.tiles} *
            (3 + params.sharedPerTile + params.fmaPerTile) +
        1;
    hint.linesPerWarp = std::uint64_t{params.tiles} * 2 + 1;
    return hint;
}

TraceSizeHint
sizeHint(const TransposeParams &params, const HardwareConfig &config)
{
    TraceSizeHint hint;
    std::uint64_t per_tile_insts = params.viaShared ? 6 : 4;
    std::uint64_t per_tile_lines =
        params.viaShared ? 2 : 1 + std::uint64_t{config.warpSize};
    hint.instsPerWarp = params.tilesPerWarp * per_tile_insts;
    hint.linesPerWarp = params.tilesPerWarp * per_tile_lines;
    return hint;
}

TraceSizeHint
sizeHint(const HistogramParams &params)
{
    TraceSizeHint hint;
    hint.instsPerWarp = std::uint64_t{params.iterations} *
        (3 + std::uint64_t{params.updatesPerIter} * 3);
    hint.linesPerWarp = std::uint64_t{params.iterations} *
        (1 + std::uint64_t{params.updatesPerIter} * 2 * params.degree);
    return hint;
}

KernelTrace
loopKernel(const std::string &name, const LoopKernelParams &params,
           const HardwareConfig &config)
{
    if (params.iterations == 0)
        panic("loopKernel: iterations must be positive");

    KernelTrace kernel(name);

    // ---- static program ----
    std::vector<std::uint32_t> pc_indep;
    for (std::uint32_t i = 0; i < params.independentCompute; ++i) {
        pc_indep.push_back(kernel.addStatic(
            computeOp(i, params.fpFraction), "indep" + std::to_string(i)));
    }
    std::vector<std::uint32_t> pc_load;
    std::vector<std::vector<std::uint32_t>> pc_chain(params.loadsPerIter);
    for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
        pc_load.push_back(kernel.addStatic(Opcode::GlobalLoad,
                                           "load" + std::to_string(l)));
        for (std::uint32_t c = 0; c < params.computePerLoad; ++c) {
            pc_chain[l].push_back(kernel.addStatic(
                computeOp(c + l, params.fpFraction),
                "chain" + std::to_string(l) + "_" + std::to_string(c)));
        }
    }
    std::vector<std::uint32_t> pc_sfu;
    for (std::uint32_t i = 0; i < params.sfuPerIter; ++i)
        pc_sfu.push_back(kernel.addStatic(Opcode::Sfu));
    std::vector<std::uint32_t> pc_shared;
    for (std::uint32_t i = 0; i < params.sharedPerIter; ++i) {
        pc_shared.push_back(kernel.addStatic(
            i % 2 ? Opcode::SharedLoad : Opcode::SharedStore));
    }
    std::vector<std::uint32_t> pc_store;
    for (std::uint32_t i = 0; i < params.storesPerIter; ++i)
        pc_store.push_back(kernel.addStatic(Opcode::GlobalStore));
    std::vector<std::uint32_t> pc_extra;
    for (std::uint32_t i = 0; i < params.extraPathCompute; ++i) {
        pc_extra.push_back(kernel.addStatic(
            computeOp(i, params.fpFraction), "extra"));
    }
    std::uint32_t pc_branch = kernel.addStatic(Opcode::Branch, "loop");

    // ---- per-warp traces ----
    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params);
    reserveKernel(kernel, num_warps, hint);
    // Scratch reused across warps; the emission loop never allocates.
    std::vector<Addr> addrs;
    std::vector<Reg> loaded;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        std::uint32_t block = w / params.warpsPerBlock;
        TraceBuilder b(kernel, w, block, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);

        std::uint32_t iters = params.iterations;
        if (params.iterationVariance > 0.0) {
            double u = rng.nextDouble() * 2.0 - 1.0;
            double scaled = static_cast<double>(params.iterations) *
                            (1.0 + params.iterationVariance * u);
            iters = std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::lround(scaled)));
        }
        bool heavy_path = params.extraPathFraction > 0.0 &&
                          rng.nextBool(params.extraPathFraction);

        Addr stream_cursor = streamBase + static_cast<Addr>(w) * warpSlice;
        Addr out_cursor = outBase + static_cast<Addr>(w) * warpSlice;

        Reg carry = regNone;
        for (std::uint32_t it = 0; it < iters; ++it) {
            // Independent compute (address arithmetic etc.).
            Reg indep = carry;
            for (std::uint32_t i = 0; i < params.independentCompute;
                 ++i) {
                indep = indep == regNone
                    ? b.compute(pc_indep[i])
                    : b.compute(pc_indep[i], {indep});
            }

            // Loads first (memory-level parallelism within the
            // iteration), then the dependent compute chains.
            loaded.clear();
            for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
                if (params.hotFraction > 0.0 &&
                    rng.nextBool(params.hotFraction)) {
                    randomDivergentPattern(
                        rng, hotBase, params.hotBytes, config.warpSize,
                        params.loadDivergence, config.l1LineBytes,
                        addrs);
                } else if (params.sharedRegion) {
                    randomDivergentPattern(
                        rng, sharedBase, params.sharedRegionBytes,
                        config.warpSize, params.loadDivergence,
                        config.l1LineBytes, addrs);
                } else {
                    divergentPattern(stream_cursor, config.warpSize,
                                     params.loadDivergence,
                                     config.l1LineBytes, addrs);
                    stream_cursor += static_cast<Addr>(
                                         params.loadDivergence) *
                                     config.l1LineBytes;
                }
                loaded.push_back(b.globalLoad(pc_load[l], addrs));
            }

            Reg chain_last = regNone;
            for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
                Reg c = loaded[l];
                for (std::uint32_t k = 0; k < params.computePerLoad;
                     ++k) {
                    c = params.serialChain && carry != regNone
                        ? b.compute(pc_chain[l][k], {c, carry})
                        : b.compute(pc_chain[l][k], {c});
                }
                chain_last = c;
                if (params.serialChain)
                    carry = c;
            }
            if (!params.serialChain)
                carry = chain_last != regNone ? chain_last : indep;

            for (std::uint32_t i = 0; i < params.sfuPerIter; ++i) {
                carry = carry == regNone
                    ? b.compute(pc_sfu[i])
                    : b.compute(pc_sfu[i], {carry});
            }
            for (std::uint32_t i = 0; i < params.sharedPerIter; ++i) {
                Reg r = carry == regNone
                    ? b.compute(pc_shared[i])
                    : b.compute(pc_shared[i], {carry});
                if (r != regNone)
                    carry = r;
            }

            for (std::uint32_t i = 0; i < params.storesPerIter; ++i) {
                divergentPattern(out_cursor, config.warpSize,
                                 params.storeDivergence,
                                 config.l1LineBytes, addrs);
                out_cursor += static_cast<Addr>(params.storeDivergence) *
                              config.l1LineBytes;
                if (carry != regNone)
                    b.globalStore(pc_store[i], addrs, {carry});
                else
                    b.globalStore(pc_store[i], addrs);
            }

            if (heavy_path) {
                Reg e = carry;
                for (std::uint32_t i = 0; i < params.extraPathCompute;
                     ++i) {
                    e = e == regNone ? b.compute(pc_extra[i])
                                     : b.compute(pc_extra[i], {e});
                }
                carry = e;
            }

            b.compute(pc_branch, {});
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
pointerChaseKernel(const std::string &name,
                   const PointerChaseParams &params,
                   const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_load = kernel.addStatic(Opcode::GlobalLoad, "hop");
    std::vector<std::uint32_t> pc_comp;
    for (std::uint32_t i = 0; i < params.computeBetween; ++i)
        pc_comp.push_back(kernel.addStatic(Opcode::IntAlu));

    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params);
    reserveKernel(kernel, num_warps, hint);
    std::vector<Addr> addrs;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);

        Reg ptr = regNone;
        for (std::uint32_t hop = 0; hop < params.chainLength; ++hop) {
            randomDivergentPattern(rng, chaseBase, params.regionBytes,
                                   config.warpSize, params.divergence,
                                   config.l1LineBytes, addrs);
            ptr = ptr == regNone ? b.globalLoad(pc_load, addrs)
                                 : b.globalLoad(pc_load, addrs, {ptr});
            for (std::uint32_t i = 0; i < params.computeBetween; ++i)
                ptr = b.compute(pc_comp[i], {ptr});
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
reductionKernel(const std::string &name, const ReductionParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_load = kernel.addStatic(Opcode::GlobalLoad, "elem");
    std::uint32_t pc_add = kernel.addStatic(Opcode::FpAlu, "acc");
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_lvl = kernel.addStatic(Opcode::FpAlu, "lvl");
    std::uint32_t pc_fin_ld = kernel.addStatic(Opcode::GlobalLoad, "fin");
    std::uint32_t pc_fin_add = kernel.addStatic(Opcode::FpAlu);
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore);

    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params);
    reserveKernel(kernel, num_warps, hint);
    std::vector<Addr> addrs;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);
        Addr cursor = streamBase + static_cast<Addr>(w) * warpSlice;

        // Phase 1: accumulate coalesced elements.
        Reg acc = regNone;
        for (std::uint32_t i = 0; i < params.loadsPerWarp; ++i) {
            coalescedPattern(cursor, config.warpSize, 4, addrs);
            cursor += config.l1LineBytes;
            Reg v = b.globalLoad(pc_load, addrs);
            acc = acc == regNone ? v : b.compute(pc_add, {acc, v});
        }

        // Phase 2: tree reduction with a shrinking active mask.
        if (params.useShared) {
            std::uint32_t active = config.warpSize;
            for (std::uint32_t level = 0; level < params.levels;
                 ++level) {
                active = std::max<std::uint32_t>(active / 2, 1);
                b.compute(pc_sst, {acc}, active);
                Reg other = b.compute(pc_sld, {}, active);
                acc = b.compute(pc_lvl, {acc, other}, active);
            }
        }

        // Warp 0 of each block reduces the block partials: a distinct
        // (heavier) control path for a subset of warps.
        if (w % params.warpsPerBlock == 0) {
            for (std::uint32_t i = 0; i + 1 < params.warpsPerBlock;
                 ++i) {
                coalescedPattern(
                    sharedBase + static_cast<Addr>(w) * 4096, 1, 4,
                    addrs);
                Reg part = b.globalLoad(pc_fin_ld, addrs);
                acc = b.compute(pc_fin_add, {acc, part}, 1);
            }
        }
        coalescedPattern(outBase + static_cast<Addr>(w) * 128, 1, 4,
                         addrs);
        b.globalStore(pc_st, addrs, {acc});
        b.finish();
    }
    return kernel;
}

KernelTrace
tiledMatmulKernel(const std::string &name,
                  const TiledMatmulParams &params,
                  const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_ld_a = kernel.addStatic(Opcode::GlobalLoad, "tileA");
    std::uint32_t pc_ld_b = kernel.addStatic(Opcode::GlobalLoad, "tileB");
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_fma = kernel.addStatic(Opcode::FpAlu, "fma");
    std::uint32_t pc_idx = kernel.addStatic(Opcode::IntAlu, "idx");
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore, "out");

    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params);
    reserveKernel(kernel, num_warps, hint);
    // Tiles live in a region sized to enjoy L2 (but not L1) reuse.
    constexpr std::uint64_t matrix_bytes = 8ULL << 20;
    std::vector<Addr> addrs;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);

        Reg acc = regNone;
        for (std::uint32_t t = 0; t < params.tiles; ++t) {
            Reg i0 = b.compute(pc_idx, {});
            Addr tile_a = sharedBase +
                          rng.nextBelow(matrix_bytes / 4096) * 4096;
            Addr tile_b = sharedBase + matrix_bytes +
                          rng.nextBelow(matrix_bytes / 4096) * 4096;
            coalescedPattern(tile_a, config.warpSize, 4, addrs);
            Reg a = b.globalLoad(pc_ld_a, addrs, {i0});
            coalescedPattern(tile_b, config.warpSize, 4, addrs);
            Reg bb = b.globalLoad(pc_ld_b, addrs, {i0});
            for (std::uint32_t s = 0; s < params.sharedPerTile; ++s) {
                Reg r = b.compute(s % 2 ? pc_sld : pc_sst,
                                  {s % 2 == 0 && s == 0 ? a : bb});
                if (r != regNone)
                    bb = r;
            }
            Reg c = acc == regNone ? b.compute(pc_fma, {a, bb})
                                   : b.compute(pc_fma, {a, bb, acc});
            for (std::uint32_t f = 1; f < params.fmaPerTile; ++f)
                c = b.compute(pc_fma, {c, bb});
            acc = c;
        }
        coalescedPattern(outBase + static_cast<Addr>(w) * 128,
                         config.warpSize, 4, addrs);
        b.globalStore(pc_st, addrs, {acc});
        b.finish();
    }
    return kernel;
}

KernelTrace
transposeKernel(const std::string &name, const TransposeParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_ld = kernel.addStatic(Opcode::GlobalLoad, "row");
    std::uint32_t pc_idx = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_idx2 = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore, "col");

    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params, config);
    reserveKernel(kernel, num_warps, hint);
    std::vector<Addr> addrs;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);
        Addr in_cursor = streamBase + static_cast<Addr>(w) * warpSlice;
        Addr out_cursor = outBase + static_cast<Addr>(w) * warpSlice;

        for (std::uint32_t t = 0; t < params.tilesPerWarp; ++t) {
            coalescedPattern(in_cursor, config.warpSize, 4, addrs);
            Reg v = b.globalLoad(pc_ld, addrs);
            in_cursor += config.l1LineBytes;
            Reg i = b.compute(pc_idx, {v});
            i = b.compute(pc_idx2, {i});
            if (params.viaShared) {
                b.compute(pc_sst, {i});
                Reg s = b.compute(pc_sld, {});
                coalescedPattern(out_cursor, config.warpSize, 4,
                                 addrs);
                b.globalStore(pc_st, addrs, {s});
                out_cursor += config.l1LineBytes;
            } else {
                // Column-order store: one line per thread.
                stridedPattern(out_cursor, config.warpSize,
                               config.l1LineBytes, addrs);
                b.globalStore(pc_st, addrs, {i});
                out_cursor += static_cast<Addr>(config.warpSize) *
                              config.l1LineBytes;
            }
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
histogramKernel(const std::string &name, const HistogramParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_data = kernel.addStatic(Opcode::GlobalLoad, "data");
    std::uint32_t pc_hash = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_hash2 = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_bin_ld = kernel.addStatic(Opcode::GlobalLoad, "bin");
    std::uint32_t pc_inc = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_bin_st = kernel.addStatic(Opcode::GlobalStore,
                                               "bin");

    std::uint32_t num_warps = totalWarps(config);
    TraceSizeHint hint = sizeHint(params);
    reserveKernel(kernel, num_warps, hint);
    std::vector<Addr> addrs;
    std::vector<Addr> bins;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        b.reserve(hint.instsPerWarp, hint.linesPerWarp);
        Addr cursor = streamBase + static_cast<Addr>(w) * warpSlice;

        for (std::uint32_t it = 0; it < params.iterations; ++it) {
            coalescedPattern(cursor, config.warpSize, 4, addrs);
            Reg v = b.globalLoad(pc_data, addrs);
            cursor += config.l1LineBytes;
            Reg h = b.compute(pc_hash, {v});
            h = b.compute(pc_hash2, {h});
            for (std::uint32_t u = 0; u < params.updatesPerIter; ++u) {
                randomDivergentPattern(rng, binsBase, params.binBytes,
                                       config.warpSize, params.degree,
                                       config.l1LineBytes, bins);
                Reg old = b.globalLoad(pc_bin_ld, bins, {h});
                Reg inc = b.compute(pc_inc, {old});
                b.globalStore(pc_bin_st, bins, {inc});
            }
        }
        b.finish();
    }
    return kernel;
}

} // namespace gpumech
