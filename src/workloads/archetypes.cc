#include "workloads/archetypes.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/trace_builder.hh"
#include "workloads/patterns.hh"

namespace gpumech
{

namespace
{

// Disjoint base addresses of the synthetic address space.
constexpr Addr streamBase = 0x100000000ULL; //!< per-warp input slices
constexpr Addr hotBase = 0x200000000ULL;    //!< kernel-wide hot set
constexpr Addr sharedBase = 0x300000000ULL; //!< kernel-shared region
constexpr Addr outBase = 0x400000000ULL;    //!< per-warp output slices
constexpr Addr chaseBase = 0x500000000ULL;  //!< pointer pool
constexpr Addr binsBase = 0x600000000ULL;   //!< histogram bins

/** Generous per-warp slice so streams never alias. */
constexpr Addr warpSlice = 8ULL << 20;

/** Deterministic per-warp RNG derived from the kernel name. */
Rng
warpRng(const std::string &name, std::uint32_t warp_id)
{
    Rng seed_rng = Rng::fromString(name);
    return Rng(seed_rng.next() ^
               (0x9e3779b97f4a7c15ULL * (warp_id + 1)));
}

/** Compute opcode for slot i under an FP share. */
Opcode
computeOp(std::uint32_t i, double fp_fraction)
{
    double position = (static_cast<double>(i % 8) + 0.5) / 8.0;
    return position < fp_fraction ? Opcode::FpAlu : Opcode::IntAlu;
}

} // namespace

std::uint32_t
totalWarps(const HardwareConfig &config)
{
    return config.numCores * config.warpsPerCore;
}

KernelTrace
loopKernel(const std::string &name, const LoopKernelParams &params,
           const HardwareConfig &config)
{
    if (params.iterations == 0)
        panic("loopKernel: iterations must be positive");

    KernelTrace kernel(name);

    // ---- static program ----
    std::vector<std::uint32_t> pc_indep;
    for (std::uint32_t i = 0; i < params.independentCompute; ++i) {
        pc_indep.push_back(kernel.addStatic(
            computeOp(i, params.fpFraction), "indep" + std::to_string(i)));
    }
    std::vector<std::uint32_t> pc_load;
    std::vector<std::vector<std::uint32_t>> pc_chain(params.loadsPerIter);
    for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
        pc_load.push_back(kernel.addStatic(Opcode::GlobalLoad,
                                           "load" + std::to_string(l)));
        for (std::uint32_t c = 0; c < params.computePerLoad; ++c) {
            pc_chain[l].push_back(kernel.addStatic(
                computeOp(c + l, params.fpFraction),
                "chain" + std::to_string(l) + "_" + std::to_string(c)));
        }
    }
    std::vector<std::uint32_t> pc_sfu;
    for (std::uint32_t i = 0; i < params.sfuPerIter; ++i)
        pc_sfu.push_back(kernel.addStatic(Opcode::Sfu));
    std::vector<std::uint32_t> pc_shared;
    for (std::uint32_t i = 0; i < params.sharedPerIter; ++i) {
        pc_shared.push_back(kernel.addStatic(
            i % 2 ? Opcode::SharedLoad : Opcode::SharedStore));
    }
    std::vector<std::uint32_t> pc_store;
    for (std::uint32_t i = 0; i < params.storesPerIter; ++i)
        pc_store.push_back(kernel.addStatic(Opcode::GlobalStore));
    std::vector<std::uint32_t> pc_extra;
    for (std::uint32_t i = 0; i < params.extraPathCompute; ++i) {
        pc_extra.push_back(kernel.addStatic(
            computeOp(i, params.fpFraction), "extra"));
    }
    std::uint32_t pc_branch = kernel.addStatic(Opcode::Branch, "loop");

    // ---- per-warp traces ----
    std::uint32_t num_warps = totalWarps(config);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        std::uint32_t block = w / params.warpsPerBlock;
        TraceBuilder b(kernel, w, block, config);

        std::uint32_t iters = params.iterations;
        if (params.iterationVariance > 0.0) {
            double u = rng.nextDouble() * 2.0 - 1.0;
            double scaled = static_cast<double>(params.iterations) *
                            (1.0 + params.iterationVariance * u);
            iters = std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::lround(scaled)));
        }
        bool heavy_path = params.extraPathFraction > 0.0 &&
                          rng.nextBool(params.extraPathFraction);

        Addr stream_cursor = streamBase + static_cast<Addr>(w) * warpSlice;
        Addr out_cursor = outBase + static_cast<Addr>(w) * warpSlice;

        Reg carry = regNone;
        for (std::uint32_t it = 0; it < iters; ++it) {
            // Independent compute (address arithmetic etc.).
            Reg indep = carry;
            for (std::uint32_t i = 0; i < params.independentCompute;
                 ++i) {
                indep = b.compute(pc_indep[i],
                                  indep == regNone
                                      ? std::vector<Reg>{}
                                      : std::vector<Reg>{indep});
            }

            // Loads first (memory-level parallelism within the
            // iteration), then the dependent compute chains.
            std::vector<Reg> loaded;
            for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
                std::vector<Addr> addrs;
                if (params.hotFraction > 0.0 &&
                    rng.nextBool(params.hotFraction)) {
                    addrs = randomDivergentPattern(
                        rng, hotBase, params.hotBytes, config.warpSize,
                        params.loadDivergence, config.l1LineBytes);
                } else if (params.sharedRegion) {
                    addrs = randomDivergentPattern(
                        rng, sharedBase, params.sharedRegionBytes,
                        config.warpSize, params.loadDivergence,
                        config.l1LineBytes);
                } else {
                    addrs = divergentPattern(stream_cursor,
                                             config.warpSize,
                                             params.loadDivergence,
                                             config.l1LineBytes);
                    stream_cursor += static_cast<Addr>(
                                         params.loadDivergence) *
                                     config.l1LineBytes;
                }
                loaded.push_back(b.globalLoad(pc_load[l], addrs));
            }

            Reg chain_last = regNone;
            for (std::uint32_t l = 0; l < params.loadsPerIter; ++l) {
                Reg c = loaded[l];
                for (std::uint32_t k = 0; k < params.computePerLoad;
                     ++k) {
                    std::vector<Reg> srcs{c};
                    if (params.serialChain && carry != regNone)
                        srcs.push_back(carry);
                    c = b.compute(pc_chain[l][k], srcs);
                }
                chain_last = c;
                if (params.serialChain)
                    carry = c;
            }
            if (!params.serialChain)
                carry = chain_last != regNone ? chain_last : indep;

            for (std::uint32_t i = 0; i < params.sfuPerIter; ++i) {
                carry = b.compute(pc_sfu[i],
                                  carry == regNone
                                      ? std::vector<Reg>{}
                                      : std::vector<Reg>{carry});
            }
            for (std::uint32_t i = 0; i < params.sharedPerIter; ++i) {
                Reg r = b.compute(pc_shared[i],
                                  carry == regNone
                                      ? std::vector<Reg>{}
                                      : std::vector<Reg>{carry});
                if (r != regNone)
                    carry = r;
            }

            for (std::uint32_t i = 0; i < params.storesPerIter; ++i) {
                auto addrs = divergentPattern(out_cursor,
                                              config.warpSize,
                                              params.storeDivergence,
                                              config.l1LineBytes);
                out_cursor += static_cast<Addr>(params.storeDivergence) *
                              config.l1LineBytes;
                std::vector<Reg> srcs;
                if (carry != regNone)
                    srcs.push_back(carry);
                b.globalStore(pc_store[i], addrs, srcs);
            }

            if (heavy_path) {
                Reg e = carry;
                for (std::uint32_t i = 0; i < params.extraPathCompute;
                     ++i) {
                    e = b.compute(pc_extra[i],
                                  e == regNone ? std::vector<Reg>{}
                                               : std::vector<Reg>{e});
                }
                carry = e;
            }

            b.compute(pc_branch, {});
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
pointerChaseKernel(const std::string &name,
                   const PointerChaseParams &params,
                   const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_load = kernel.addStatic(Opcode::GlobalLoad, "hop");
    std::vector<std::uint32_t> pc_comp;
    for (std::uint32_t i = 0; i < params.computeBetween; ++i)
        pc_comp.push_back(kernel.addStatic(Opcode::IntAlu));

    std::uint32_t num_warps = totalWarps(config);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);

        Reg ptr = regNone;
        for (std::uint32_t hop = 0; hop < params.chainLength; ++hop) {
            auto addrs = randomDivergentPattern(
                rng, chaseBase, params.regionBytes, config.warpSize,
                params.divergence, config.l1LineBytes);
            std::vector<Reg> srcs;
            if (ptr != regNone)
                srcs.push_back(ptr);
            ptr = b.globalLoad(pc_load, addrs, srcs);
            for (std::uint32_t i = 0; i < params.computeBetween; ++i)
                ptr = b.compute(pc_comp[i], {ptr});
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
reductionKernel(const std::string &name, const ReductionParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_load = kernel.addStatic(Opcode::GlobalLoad, "elem");
    std::uint32_t pc_add = kernel.addStatic(Opcode::FpAlu, "acc");
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_lvl = kernel.addStatic(Opcode::FpAlu, "lvl");
    std::uint32_t pc_fin_ld = kernel.addStatic(Opcode::GlobalLoad, "fin");
    std::uint32_t pc_fin_add = kernel.addStatic(Opcode::FpAlu);
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore);

    std::uint32_t num_warps = totalWarps(config);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        Addr cursor = streamBase + static_cast<Addr>(w) * warpSlice;

        // Phase 1: accumulate coalesced elements.
        Reg acc = regNone;
        for (std::uint32_t i = 0; i < params.loadsPerWarp; ++i) {
            auto addrs = coalescedPattern(cursor, config.warpSize);
            cursor += config.l1LineBytes;
            Reg v = b.globalLoad(pc_load, addrs);
            acc = acc == regNone ? v : b.compute(pc_add, {acc, v});
        }

        // Phase 2: tree reduction with a shrinking active mask.
        if (params.useShared) {
            std::uint32_t active = config.warpSize;
            for (std::uint32_t level = 0; level < params.levels;
                 ++level) {
                active = std::max<std::uint32_t>(active / 2, 1);
                b.compute(pc_sst, {acc}, active);
                Reg other = b.compute(pc_sld, {}, active);
                acc = b.compute(pc_lvl, {acc, other}, active);
            }
        }

        // Warp 0 of each block reduces the block partials: a distinct
        // (heavier) control path for a subset of warps.
        if (w % params.warpsPerBlock == 0) {
            for (std::uint32_t i = 0; i + 1 < params.warpsPerBlock;
                 ++i) {
                auto addrs = coalescedPattern(
                    sharedBase + static_cast<Addr>(w) * 4096, 1);
                Reg part = b.globalLoad(pc_fin_ld, addrs);
                acc = b.compute(pc_fin_add, {acc, part}, 1);
            }
        }
        b.globalStore(pc_st,
                      coalescedPattern(outBase +
                                           static_cast<Addr>(w) * 128,
                                       1),
                      {acc});
        b.finish();
    }
    return kernel;
}

KernelTrace
tiledMatmulKernel(const std::string &name,
                  const TiledMatmulParams &params,
                  const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_ld_a = kernel.addStatic(Opcode::GlobalLoad, "tileA");
    std::uint32_t pc_ld_b = kernel.addStatic(Opcode::GlobalLoad, "tileB");
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_fma = kernel.addStatic(Opcode::FpAlu, "fma");
    std::uint32_t pc_idx = kernel.addStatic(Opcode::IntAlu, "idx");
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore, "out");

    std::uint32_t num_warps = totalWarps(config);
    // Tiles live in a region sized to enjoy L2 (but not L1) reuse.
    constexpr std::uint64_t matrix_bytes = 8ULL << 20;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);

        Reg acc = regNone;
        for (std::uint32_t t = 0; t < params.tiles; ++t) {
            Reg i0 = b.compute(pc_idx, {});
            Addr tile_a = sharedBase +
                          rng.nextBelow(matrix_bytes / 4096) * 4096;
            Addr tile_b = sharedBase + matrix_bytes +
                          rng.nextBelow(matrix_bytes / 4096) * 4096;
            Reg a = b.globalLoad(pc_ld_a,
                                 coalescedPattern(tile_a,
                                                  config.warpSize),
                                 {i0});
            Reg bb = b.globalLoad(pc_ld_b,
                                  coalescedPattern(tile_b,
                                                   config.warpSize),
                                  {i0});
            for (std::uint32_t s = 0; s < params.sharedPerTile; ++s) {
                Reg r = b.compute(s % 2 ? pc_sld : pc_sst,
                                  {s % 2 == 0 && s == 0 ? a : bb});
                if (r != regNone)
                    bb = r;
            }
            Reg c = acc == regNone ? b.compute(pc_fma, {a, bb})
                                   : b.compute(pc_fma, {a, bb, acc});
            for (std::uint32_t f = 1; f < params.fmaPerTile; ++f)
                c = b.compute(pc_fma, {c, bb});
            acc = c;
        }
        b.globalStore(pc_st,
                      coalescedPattern(outBase +
                                           static_cast<Addr>(w) * 128,
                                       config.warpSize),
                      {acc});
        b.finish();
    }
    return kernel;
}

KernelTrace
transposeKernel(const std::string &name, const TransposeParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_ld = kernel.addStatic(Opcode::GlobalLoad, "row");
    std::uint32_t pc_idx = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_idx2 = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_sst = kernel.addStatic(Opcode::SharedStore);
    std::uint32_t pc_sld = kernel.addStatic(Opcode::SharedLoad);
    std::uint32_t pc_st = kernel.addStatic(Opcode::GlobalStore, "col");

    std::uint32_t num_warps = totalWarps(config);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        Addr in_cursor = streamBase + static_cast<Addr>(w) * warpSlice;
        Addr out_cursor = outBase + static_cast<Addr>(w) * warpSlice;

        for (std::uint32_t t = 0; t < params.tilesPerWarp; ++t) {
            Reg v = b.globalLoad(pc_ld,
                                 coalescedPattern(in_cursor,
                                                  config.warpSize));
            in_cursor += config.l1LineBytes;
            Reg i = b.compute(pc_idx, {v});
            i = b.compute(pc_idx2, {i});
            if (params.viaShared) {
                b.compute(pc_sst, {i});
                Reg s = b.compute(pc_sld, {});
                b.globalStore(pc_st,
                              coalescedPattern(out_cursor,
                                               config.warpSize),
                              {s});
                out_cursor += config.l1LineBytes;
            } else {
                // Column-order store: one line per thread.
                auto addrs = stridedPattern(out_cursor, config.warpSize,
                                            config.l1LineBytes);
                b.globalStore(pc_st, addrs, {i});
                out_cursor += static_cast<Addr>(config.warpSize) *
                              config.l1LineBytes;
            }
        }
        b.finish();
    }
    return kernel;
}

KernelTrace
histogramKernel(const std::string &name, const HistogramParams &params,
                const HardwareConfig &config)
{
    KernelTrace kernel(name);
    std::uint32_t pc_data = kernel.addStatic(Opcode::GlobalLoad, "data");
    std::uint32_t pc_hash = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_hash2 = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_bin_ld = kernel.addStatic(Opcode::GlobalLoad, "bin");
    std::uint32_t pc_inc = kernel.addStatic(Opcode::IntAlu);
    std::uint32_t pc_bin_st = kernel.addStatic(Opcode::GlobalStore,
                                               "bin");

    std::uint32_t num_warps = totalWarps(config);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng = warpRng(name, w);
        TraceBuilder b(kernel, w, w / params.warpsPerBlock, config);
        Addr cursor = streamBase + static_cast<Addr>(w) * warpSlice;

        for (std::uint32_t it = 0; it < params.iterations; ++it) {
            Reg v = b.globalLoad(pc_data,
                                 coalescedPattern(cursor,
                                                  config.warpSize));
            cursor += config.l1LineBytes;
            Reg h = b.compute(pc_hash, {v});
            h = b.compute(pc_hash2, {h});
            for (std::uint32_t u = 0; u < params.updatesPerIter; ++u) {
                auto bins = randomDivergentPattern(
                    rng, binsBase, params.binBytes, config.warpSize,
                    params.degree, config.l1LineBytes);
                Reg old = b.globalLoad(pc_bin_ld, bins, {h});
                Reg inc = b.compute(pc_inc, {old});
                b.globalStore(pc_bin_st, bins, {inc});
            }
        }
        b.finish();
    }
    return kernel;
}

} // namespace gpumech
