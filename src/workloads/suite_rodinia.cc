/**
 * @file
 * Rodinia-2.1-like kernels (paper Section VI-A).
 *
 * Each generator is tuned to reproduce the documented trace behaviour
 * of its namesake: divergence degree, cache locality, write traffic,
 * compute intensity, and control divergence.
 */

#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace gpumech
{

std::vector<Workload>
makeRodiniaSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string name, std::string desc,
                        bool control_div, bool mem_div, auto generator) {
        suite.push_back(Workload{std::move(name), "rodinia",
                                 std::move(desc), control_div, mem_div,
                                 std::move(generator)});
    };

    add("srad_kernel1",
        "divergent loads+stores, streaming (Fig. 4 case study)", false,
        true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.loadsPerIter = 2;
            p.loadDivergence = 8;
            p.computePerLoad = 5;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 8;
            return loopKernel("srad_kernel1", p, c);
        });

    add("srad_kernel2", "coalesced streaming with FP chains", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 80;
            p.loadsPerIter = 2;
            p.loadDivergence = 1;
            p.computePerLoad = 6;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("srad_kernel2", p, c);
        });

    add("kmeans_invert_mapping",
        "32-way divergent loads with hot L1 set, divergent writes "
        "(Fig. 16)",
        false, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 2;
            p.loadDivergence = 32;
            p.hotFraction = 0.92;
            p.hotBytes = 12 * 1024;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 32;
            return loopKernel("kmeans_invert_mapping", p, c);
        });

    add("kmeans_kernel_c", "coalesced centroid distance compute", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 75;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.6;
            p.hotBytes = 8 * 1024;
            p.computePerLoad = 8;
            p.independentCompute = 2;
            return loopKernel("kmeans_kernel_c", p, c);
        });

    add("cfd_step_factor",
        "fully coalesced streaming, good scaling (Fig. 16)", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 3;
            p.loadDivergence = 1;
            p.computePerLoad = 5;
            p.independentCompute = 3;
            p.storesPerIter = 1;
            return loopKernel("cfd_step_factor", p, c);
        });

    add("cfd_compute_flux",
        "16-way divergent loads, L2-friendly working set (Fig. 16)",
        false, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 45;
            p.loadsPerIter = 2;
            p.loadDivergence = 16;
            p.sharedRegion = true;
            p.sharedRegionBytes = 1536 * 1024;
            p.computePerLoad = 6;
            p.independentCompute = 3;
            p.storesPerIter = 1;
            p.storeDivergence = 4;
            return loopKernel("cfd_compute_flux", p, c);
        });

    add("bfs_kernel1",
        "frontier expansion: control divergent, scattered loads", true,
        true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.iterationVariance = 0.5;
            p.extraPathFraction = 0.3;
            p.extraPathCompute = 10;
            p.loadsPerIter = 2;
            p.loadDivergence = 8;
            p.sharedRegion = true;
            p.sharedRegionBytes = 4 << 20;
            p.computePerLoad = 2;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 4;
            return loopKernel("bfs_kernel1", p, c);
        });

    add("bfs_kernel2", "frontier update: control divergent, light",
        true, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.iterationVariance = 0.6;
            p.loadsPerIter = 1;
            p.loadDivergence = 2;
            p.computePerLoad = 2;
            p.independentCompute = 3;
            p.storesPerIter = 1;
            return loopKernel("bfs_kernel2", p, c);
        });

    add("hotspot_calculate_temp",
        "stencil with neighbour reuse, compute heavy", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 3;
            p.loadDivergence = 1;
            p.hotFraction = 0.45;
            p.hotBytes = 16 * 1024;
            p.computePerLoad = 7;
            p.independentCompute = 3;
            p.storesPerIter = 1;
            return loopKernel("hotspot_calculate_temp", p, c);
        });

    add("pathfinder_dynproc", "shared-memory dynamic programming",
        false, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            p.sharedPerIter = 4;
            p.storesPerIter = 1;
            return loopKernel("pathfinder_dynproc", p, c);
        });

    add("lud_diagonal",
        "triangular work: strongly control divergent, shared memory",
        true, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 50;
            p.iterationVariance = 0.7;
            p.extraPathFraction = 0.25;
            p.extraPathCompute = 12;
            p.loadsPerIter = 1;
            p.loadDivergence = 2;
            p.computePerLoad = 4;
            p.sharedPerIter = 3;
            p.serialChain = true;
            return loopKernel("lud_diagonal", p, c);
        });

    add("nw_needle1",
        "wavefront alignment: diagonal access, control divergent",
        true, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.iterationVariance = 0.4;
            p.loadsPerIter = 2;
            p.loadDivergence = 4;
            p.computePerLoad = 3;
            p.sharedPerIter = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 4;
            return loopKernel("nw_needle1", p, c);
        });

    add("gaussian_fan1", "column-strided access, fully divergent",
        false, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 40;
            p.loadsPerIter = 1;
            p.loadDivergence = 32;
            p.computePerLoad = 2;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 32;
            return loopKernel("gaussian_fan1", p, c);
        });

    add("backprop_layerforward",
        "coalesced loads with shared-memory reduction", false, false,
        [](const HardwareConfig &c) {
            ReductionParams p;
            p.loadsPerWarp = 70;
            p.levels = 5;
            p.useShared = true;
            return reductionKernel("backprop_layerforward", p, c);
        });

    add("streamcluster_compute_cost",
        "8-way divergent loads over a large working set", false, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 2;
            p.loadDivergence = 8;
            p.sharedRegion = true;
            p.sharedRegionBytes = 16 << 20;
            p.computePerLoad = 4;
            p.independentCompute = 2;
            return loopKernel("streamcluster_compute_cost", p, c);
        });

    add("leukocyte_dilate", "coalesced with strong L1 reuse", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 75;
            p.loadsPerIter = 2;
            p.loadDivergence = 1;
            p.hotFraction = 0.8;
            p.hotBytes = 10 * 1024;
            p.computePerLoad = 4;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("leukocyte_dilate", p, c);
        });

    return suite;
}

} // namespace gpumech
