#include "workloads/patterns.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

std::vector<Addr>
coalescedPattern(Addr base, std::uint32_t threads,
                 std::uint32_t elem_bytes)
{
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        addrs.push_back(base + static_cast<Addr>(t) * elem_bytes);
    return addrs;
}

std::vector<Addr>
stridedPattern(Addr base, std::uint32_t threads,
               std::uint32_t stride_bytes)
{
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        addrs.push_back(base + static_cast<Addr>(t) * stride_bytes);
    return addrs;
}

std::vector<Addr>
divergentPattern(Addr base, std::uint32_t threads, std::uint32_t degree,
                 std::uint32_t line_bytes)
{
    if (degree == 0)
        panic("divergentPattern: degree must be positive");
    degree = std::min(degree, threads);
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        addrs.push_back(base +
                        static_cast<Addr>(t % degree) * line_bytes);
    }
    return addrs;
}

std::vector<Addr>
randomDivergentPattern(Rng &rng, Addr region_base,
                       std::uint64_t region_bytes, std::uint32_t threads,
                       std::uint32_t degree, std::uint32_t line_bytes)
{
    if (degree == 0)
        panic("randomDivergentPattern: degree must be positive");
    degree = std::min(degree, threads);
    std::uint64_t lines_in_region =
        std::max<std::uint64_t>(region_bytes / line_bytes, 1);

    std::vector<Addr> lines;
    lines.reserve(degree);
    for (std::uint32_t d = 0; d < degree; ++d) {
        lines.push_back(region_base +
                        rng.nextBelow(lines_in_region) * line_bytes);
    }
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        addrs.push_back(lines[t % degree]);
    return addrs;
}

} // namespace gpumech
