#include "workloads/patterns.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

void
coalescedPattern(Addr base, std::uint32_t threads,
                 std::uint32_t elem_bytes, std::vector<Addr> &out)
{
    out.clear();
    out.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        out.push_back(base + static_cast<Addr>(t) * elem_bytes);
}

std::vector<Addr>
coalescedPattern(Addr base, std::uint32_t threads,
                 std::uint32_t elem_bytes)
{
    std::vector<Addr> addrs;
    coalescedPattern(base, threads, elem_bytes, addrs);
    return addrs;
}

void
stridedPattern(Addr base, std::uint32_t threads,
               std::uint32_t stride_bytes, std::vector<Addr> &out)
{
    out.clear();
    out.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        out.push_back(base + static_cast<Addr>(t) * stride_bytes);
}

std::vector<Addr>
stridedPattern(Addr base, std::uint32_t threads,
               std::uint32_t stride_bytes)
{
    std::vector<Addr> addrs;
    stridedPattern(base, threads, stride_bytes, addrs);
    return addrs;
}

void
divergentPattern(Addr base, std::uint32_t threads, std::uint32_t degree,
                 std::uint32_t line_bytes, std::vector<Addr> &out)
{
    if (degree == 0)
        panic("divergentPattern: degree must be positive");
    degree = std::min(degree, threads);
    out.clear();
    out.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        out.push_back(base +
                      static_cast<Addr>(t % degree) * line_bytes);
    }
}

std::vector<Addr>
divergentPattern(Addr base, std::uint32_t threads, std::uint32_t degree,
                 std::uint32_t line_bytes)
{
    std::vector<Addr> addrs;
    divergentPattern(base, threads, degree, line_bytes, addrs);
    return addrs;
}

void
randomDivergentPattern(Rng &rng, Addr region_base,
                       std::uint64_t region_bytes, std::uint32_t threads,
                       std::uint32_t degree, std::uint32_t line_bytes,
                       std::vector<Addr> &out)
{
    if (degree == 0)
        panic("randomDivergentPattern: degree must be positive");
    degree = std::min(degree, threads);
    std::uint64_t lines_in_region =
        std::max<std::uint64_t>(region_bytes / line_bytes, 1);

    // The distinct lines land in out[0..degree) first; the remaining
    // threads spread over them round-robin, reading back from the same
    // buffer so the fill needs no second allocation.
    out.clear();
    out.reserve(threads);
    for (std::uint32_t d = 0; d < degree; ++d) {
        out.push_back(region_base +
                      rng.nextBelow(lines_in_region) * line_bytes);
    }
    for (std::uint32_t t = degree; t < threads; ++t)
        out.push_back(out[t % degree]);
}

std::vector<Addr>
randomDivergentPattern(Rng &rng, Addr region_base,
                       std::uint64_t region_bytes, std::uint32_t threads,
                       std::uint32_t degree, std::uint32_t line_bytes)
{
    std::vector<Addr> addrs;
    randomDivergentPattern(rng, region_base, region_bytes, threads,
                           degree, line_bytes, addrs);
    return addrs;
}

} // namespace gpumech
