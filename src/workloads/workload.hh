/**
 * @file
 * Workload registry.
 *
 * The synthetic analogs of the paper's 40 evaluated kernels (Rodinia
 * 2.1, Parboil 2.5, NVIDIA SDK; Section VI-A), plus a micro suite for
 * unit tests. Each workload generates a deterministic KernelTrace
 * sized to the target configuration (numCores * warpsPerCore warps).
 */

#ifndef GPUMECH_WORKLOADS_WORKLOAD_HH
#define GPUMECH_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/status.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** One registered workload (kernel generator). */
struct Workload
{
    std::string name;        //!< e.g. "kmeans_invert_mapping"
    std::string suite;       //!< "rodinia" | "parboil" | "sdk" | "micro"
    std::string description; //!< one-line behaviour summary

    /** Warps take different control paths (Figure 7 subset). */
    bool controlDivergent = false;

    /** Has uncoalesced (divergence degree > 1) accesses. */
    bool memoryDivergent = false;

    /** Generate the kernel trace for a configuration. */
    std::function<KernelTrace(const HardwareConfig &)> generate;
};

/** All evaluation workloads (rodinia + parboil + sdk; 40 kernels). */
const std::vector<Workload> &evaluationWorkloads();

/** The micro suite used by unit tests. */
const std::vector<Workload> &microWorkloads();

/**
 * Phased stress kernels probing the contention model's steady-state
 * aggregation (not part of the evaluation suite).
 */
const std::vector<Workload> &stressWorkloads();

/** Every registered workload (evaluation + micro). */
const std::vector<Workload> &allWorkloads();

/** Look up a workload by name; fatal if absent. */
const Workload &workloadByName(const std::string &name);

/** Non-fatal lookup: nullptr when no workload has @p name. */
const Workload *findWorkload(const std::string &name);

/** Evaluation workloads of one suite. */
std::vector<Workload> workloadsBySuite(const std::string &suite);

/**
 * Status-returning suite lookup: NotFound (listing the known suites)
 * when @p suite names no registered workload.
 */
Result<std::vector<Workload>> suiteByName(const std::string &suite);

/** Evaluation workloads flagged control-divergent (Figure 7 set). */
std::vector<Workload> controlDivergentWorkloads();

/**
 * Wrap an on-disk trace file (either format, see loadTraceFile) as a
 * workload named "file:<path>" in suite "external", so external traces
 * flow through the same harness paths as generated kernels — including
 * the InputCache, whose workload-name key component keeps cached
 * entries of different files (and of generated workloads) distinct.
 * generate() ignores the configuration and throws StatusException on a
 * malformed or missing file, which the harness's per-kernel
 * containment turns into one failed kernel.
 */
Workload traceFileWorkload(const std::string &path);

// Suite factories (used by workload.cc; exposed for tests).
std::vector<Workload> makeRodiniaSuite();
std::vector<Workload> makeParboilSuite();
std::vector<Workload> makeSdkSuite();
std::vector<Workload> makeMicroSuite();
std::vector<Workload> makeStressSuite();

} // namespace gpumech

#endif // GPUMECH_WORKLOADS_WORKLOAD_HH
