/**
 * @file
 * Microbenchmark kernels with precisely known behaviour, used by the
 * unit tests and the ablation benches.
 */

#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace gpumech
{

std::vector<Workload>
makeMicroSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string name, std::string desc,
                        bool control_div, bool mem_div, auto generator) {
        suite.push_back(Workload{std::move(name), "micro",
                                 std::move(desc), control_div, mem_div,
                                 std::move(generator)});
    };

    add("micro_compute_chain", "pure serial FP dependency chain",
        false, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 80;
            p.loadsPerIter = 0;
            p.independentCompute = 6;
            p.serialChain = false;
            p.fpFraction = 1.0;
            return loopKernel("micro_compute_chain", p, c);
        });

    add("micro_stream", "one coalesced load per iteration", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 80;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            return loopKernel("micro_stream", p, c);
        });

    add("micro_divergent8", "8-way divergent streaming loads", false,
        true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 1;
            p.loadDivergence = 8;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            return loopKernel("micro_divergent8", p, c);
        });

    add("micro_divergent32", "fully divergent streaming loads", false,
        true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 50;
            p.loadsPerIter = 1;
            p.loadDivergence = 32;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            return loopKernel("micro_divergent32", p, c);
        });

    add("micro_pointer_chase", "serial dependent loads", false, false,
        [](const HardwareConfig &c) {
            PointerChaseParams p;
            p.chainLength = 120;
            p.computeBetween = 2;
            return pointerChaseKernel("micro_pointer_chase", p, c);
        });

    add("micro_write_burst", "divergent store bursts", false, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.8;
            p.computePerLoad = 2;
            p.storesPerIter = 3;
            p.storeDivergence = 16;
            return loopKernel("micro_write_burst", p, c);
        });

    add("micro_control_divergent",
        "warps with widely varying trace lengths", true, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.iterationVariance = 0.8;
            p.extraPathFraction = 0.4;
            p.extraPathCompute = 10;
            p.loadsPerIter = 1;
            p.loadDivergence = 2;
            p.computePerLoad = 3;
            return loopKernel("micro_control_divergent", p, c);
        });

    add("micro_sfu_heavy", "back-to-back independent SFU operations",
        false, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.loadsPerIter = 0;
            p.independentCompute = 2;
            p.sfuPerIter = 4;
            return loopKernel("micro_sfu_heavy", p, c);
        });

    add("micro_l1_resident", "all loads hit a tiny hot set", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 80;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 1.0;
            p.hotBytes = 2 * 1024;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            return loopKernel("micro_l1_resident", p, c);
        });

    return suite;
}

} // namespace gpumech
