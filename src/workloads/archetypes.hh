/**
 * @file
 * Parameterized kernel archetypes.
 *
 * Every named workload in the three suites is an instance of one of
 * these generators. The archetypes cover the trace-level behaviours
 * the paper's evaluation exercises: streaming loops with arbitrary
 * divergence / locality / store traffic and control divergence
 * (loopKernel), serial dependent loads (pointerChaseKernel), tree
 * reductions with shrinking active masks (reductionKernel), tiled
 * compute with software-managed memory (tiledMatmulKernel),
 * scatter-write transposes (transposeKernel), and random
 * read-modify-write histograms (histogramKernel).
 */

#ifndef GPUMECH_WORKLOADS_ARCHETYPES_HH
#define GPUMECH_WORKLOADS_ARCHETYPES_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/**
 * Workload-declared trace size hint: upper bounds on the per-warp
 * instruction count and coalesced line count. Generators pass these to
 * KernelTrace::reserveTrace() / TraceBuilder::reserve() so the flat
 * SoA arrays and the line arena are sized once up front instead of
 * growing geometrically during emission.
 */
struct TraceSizeHint
{
    std::uint64_t instsPerWarp = 0;
    std::uint64_t linesPerWarp = 0;
};

/** Parameters of the general streaming-loop archetype. */
struct LoopKernelParams
{
    // --- structure ---
    std::uint32_t iterations = 80;    //!< loop trips per warp
    std::uint32_t warpsPerBlock = 4;  //!< CTA size in warps

    // --- per-iteration instruction mix ---
    std::uint32_t loadsPerIter = 1;
    std::uint32_t computePerLoad = 4;     //!< chained on each load
    std::uint32_t independentCompute = 2; //!< not load-dependent
    double fpFraction = 0.75;             //!< FP share of compute
    std::uint32_t sfuPerIter = 0;
    std::uint32_t sharedPerIter = 0;      //!< shared-memory ops
    bool serialChain = false; //!< accumulator chain across iterations

    // --- load behaviour ---
    std::uint32_t loadDivergence = 1; //!< lines per load request
    /** Probability a load reads the kernel-wide hot set (L1 hits). */
    double hotFraction = 0.0;
    std::uint64_t hotBytes = 4 * 1024;
    /** Loads draw randomly from a kernel-shared region (L2 reuse). */
    bool sharedRegion = false;
    std::uint64_t sharedRegionBytes = 512 * 1024;

    // --- store behaviour ---
    std::uint32_t storesPerIter = 0;
    std::uint32_t storeDivergence = 1;

    // --- control divergence ---
    /** Per-warp iteration count varies by +/- this fraction. */
    double iterationVariance = 0.0;
    /** Fraction of warps executing an extra compute-heavy path. */
    double extraPathFraction = 0.0;
    std::uint32_t extraPathCompute = 8;
};

/** Build a streaming-loop kernel. */
KernelTrace loopKernel(const std::string &name,
                       const LoopKernelParams &params,
                       const HardwareConfig &config);

/** Per-warp trace size bound of a loopKernel instance. */
TraceSizeHint sizeHint(const LoopKernelParams &params);

/** Parameters of the pointer-chase (latency-bound) archetype. */
struct PointerChaseParams
{
    std::uint32_t chainLength = 150;     //!< serial dependent loads
    std::uint32_t computeBetween = 2;    //!< compute between hops
    std::uint64_t regionBytes = 64 << 20; //!< pointer pool size
    std::uint32_t divergence = 1;
    std::uint32_t warpsPerBlock = 4;
};

/** Build a pointer-chasing kernel (every load depends on the last). */
KernelTrace pointerChaseKernel(const std::string &name,
                               const PointerChaseParams &params,
                               const HardwareConfig &config);

/** Per-warp trace size bound of a pointerChaseKernel instance. */
TraceSizeHint sizeHint(const PointerChaseParams &params);

/** Parameters of the tree-reduction archetype. */
struct ReductionParams
{
    std::uint32_t loadsPerWarp = 64; //!< coalesced element loads
    std::uint32_t levels = 5;        //!< tree levels (mask halves)
    bool useShared = true;           //!< stage partials in shared mem
    std::uint32_t warpsPerBlock = 4;
};

/** Build a reduction kernel with a shrinking active mask. */
KernelTrace reductionKernel(const std::string &name,
                            const ReductionParams &params,
                            const HardwareConfig &config);

/** Per-warp trace size bound of a reductionKernel instance. */
TraceSizeHint sizeHint(const ReductionParams &params);

/** Parameters of the tiled-matmul (compute-bound) archetype. */
struct TiledMatmulParams
{
    std::uint32_t tiles = 24;        //!< outer-loop tiles
    std::uint32_t fmaPerTile = 16;   //!< FMA chain per tile
    std::uint32_t sharedPerTile = 8; //!< shared-memory traffic
    std::uint32_t warpsPerBlock = 4;
};

/** Build a tiled dense-matmul-style kernel. */
KernelTrace tiledMatmulKernel(const std::string &name,
                              const TiledMatmulParams &params,
                              const HardwareConfig &config);

/** Per-warp trace size bound of a tiledMatmulKernel instance. */
TraceSizeHint sizeHint(const TiledMatmulParams &params);

/** Parameters of the transpose archetype. */
struct TransposeParams
{
    std::uint32_t tilesPerWarp = 48;
    bool viaShared = false; //!< stage through shared memory
    std::uint32_t warpsPerBlock = 4;
};

/**
 * Build a matrix-transpose kernel: coalesced loads, fully divergent
 * (degree-32) stores in the naive variant; shared-memory staging with
 * coalesced stores in the optimized variant.
 */
KernelTrace transposeKernel(const std::string &name,
                            const TransposeParams &params,
                            const HardwareConfig &config);

/** Per-warp trace size bound of a transposeKernel instance. */
TraceSizeHint sizeHint(const TransposeParams &params,
                       const HardwareConfig &config);

/** Parameters of the histogram archetype. */
struct HistogramParams
{
    std::uint32_t iterations = 70;
    std::uint32_t updatesPerIter = 1; //!< read-modify-write pairs
    std::uint64_t binBytes = 256 * 1024;
    std::uint32_t degree = 16;
    std::uint32_t warpsPerBlock = 4;
};

/** Build a histogram kernel: random scatter read-modify-writes. */
KernelTrace histogramKernel(const std::string &name,
                            const HistogramParams &params,
                            const HardwareConfig &config);

/** Per-warp trace size bound of a histogramKernel instance. */
TraceSizeHint sizeHint(const HistogramParams &params);

/** Total warps for a configuration (numCores * warpsPerCore). */
std::uint32_t totalWarps(const HardwareConfig &config);

} // namespace gpumech

#endif // GPUMECH_WORKLOADS_ARCHETYPES_HH
