/**
 * @file
 * NVIDIA-SDK-like kernels (paper Section VI-A).
 */

#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace gpumech
{

std::vector<Workload>
makeSdkSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string name, std::string desc,
                        bool control_div, bool mem_div, auto generator) {
        suite.push_back(Workload{std::move(name), "sdk",
                                 std::move(desc), control_div, mem_div,
                                 std::move(generator)});
    };

    add("vectorAdd", "minimal coalesced streaming", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 90;
            p.loadsPerIter = 2;
            p.loadDivergence = 1;
            p.computePerLoad = 1;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("vectorAdd", p, c);
        });

    add("matrixMul", "tiled compute-bound multiply", false, false,
        [](const HardwareConfig &c) {
            TiledMatmulParams p;
            p.tiles = 24;
            p.fmaPerTile = 16;
            p.sharedPerTile = 8;
            return tiledMatmulKernel("matrixMul", p, c);
        });

    add("transpose_naive",
        "coalesced loads, fully divergent column stores", false, true,
        [](const HardwareConfig &c) {
            TransposeParams p;
            p.tilesPerWarp = 55;
            p.viaShared = false;
            return transposeKernel("transpose_naive", p, c);
        });

    add("transpose_coalesced",
        "shared-memory staged transpose, coalesced stores", false,
        false, [](const HardwareConfig &c) {
            TransposeParams p;
            p.tilesPerWarp = 55;
            p.viaShared = true;
            return transposeKernel("transpose_coalesced", p, c);
        });

    add("reduction_kernel",
        "tree reduction, shrinking mask, divergent final pass", true,
        false, [](const HardwareConfig &c) {
            ReductionParams p;
            p.loadsPerWarp = 75;
            p.levels = 5;
            p.useShared = true;
            return reductionKernel("reduction_kernel", p, c);
        });

    add("scalarProd", "coalesced dot products with accumulation",
        false, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 75;
            p.loadsPerIter = 2;
            p.loadDivergence = 1;
            p.computePerLoad = 2;
            p.independentCompute = 1;
            p.serialChain = true;
            return loopKernel("scalarProd", p, c);
        });

    add("blackscholes", "coalesced loads, SFU-heavy pricing math",
        false, false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 2;
            p.loadDivergence = 1;
            p.computePerLoad = 6;
            p.independentCompute = 2;
            p.sfuPerIter = 4;
            p.storesPerIter = 2;
            return loopKernel("blackscholes", p, c);
        });

    add("bitonic_sort",
        "stride-varying exchanges, mildly divergent", true, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.iterationVariance = 0.3;
            p.loadsPerIter = 2;
            p.loadDivergence = 4;
            p.computePerLoad = 2;
            p.sharedPerIter = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 4;
            return loopKernel("bitonic_sort", p, c);
        });

    add("convolutionRows", "coalesced with L1 halo reuse", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 65;
            p.loadsPerIter = 3;
            p.loadDivergence = 1;
            p.hotFraction = 0.55;
            p.hotBytes = 12 * 1024;
            p.computePerLoad = 4;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("convolutionRows", p, c);
        });

    add("convolutionCols", "column access with L2 reuse", false, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 3;
            p.loadDivergence = 8;
            p.sharedRegion = true;
            p.sharedRegionBytes = 1 << 20;
            p.computePerLoad = 4;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("convolutionCols", p, c);
        });

    add("montecarlo", "SFU-bound with L1-resident option data", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.9;
            p.hotBytes = 8 * 1024;
            p.computePerLoad = 5;
            p.sfuPerIter = 3;
            p.serialChain = true;
            return loopKernel("montecarlo", p, c);
        });

    add("dct8x8", "block DCT through shared memory", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 2;
            p.loadDivergence = 2;
            p.computePerLoad = 5;
            p.sharedPerIter = 4;
            p.storesPerIter = 1;
            p.storeDivergence = 2;
            return loopKernel("dct8x8", p, c);
        });

    return suite;
}

} // namespace gpumech
