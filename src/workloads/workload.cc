#include "workloads/workload.hh"

#include <set>
#include <sstream>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace gpumech
{

const std::vector<Workload> &
evaluationWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> all;
        for (auto *maker : {makeRodiniaSuite, makeParboilSuite,
                            makeSdkSuite}) {
            auto suite = maker();
            all.insert(all.end(), suite.begin(), suite.end());
        }
        return all;
    }();
    return workloads;
}

const std::vector<Workload> &
microWorkloads()
{
    static const std::vector<Workload> workloads = makeMicroSuite();
    return workloads;
}

const std::vector<Workload> &
stressWorkloads()
{
    static const std::vector<Workload> workloads = makeStressSuite();
    return workloads;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> all = evaluationWorkloads();
        const auto &micro = microWorkloads();
        all.insert(all.end(), micro.begin(), micro.end());
        const auto &stress = stressWorkloads();
        all.insert(all.end(), stress.begin(), stress.end());
        return all;
    }();
    return workloads;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const Workload &
workloadByName(const std::string &name)
{
    const Workload *w = findWorkload(name);
    if (!w)
        fatal(msg("unknown workload: ", name));
    return *w;
}

std::vector<Workload>
workloadsBySuite(const std::string &suite)
{
    std::vector<Workload> result;
    for (const auto &w : allWorkloads()) {
        if (w.suite == suite)
            result.push_back(w);
    }
    return result;
}

Result<std::vector<Workload>>
suiteByName(const std::string &suite)
{
    std::vector<Workload> result = workloadsBySuite(suite);
    if (!result.empty())
        return result;
    std::set<std::string> known;
    for (const auto &w : allWorkloads())
        known.insert(w.suite);
    std::ostringstream names;
    const char *sep = "";
    for (const auto &s : known) {
        names << sep << s;
        sep = ", ";
    }
    return Status(StatusCode::NotFound,
                  msg("unknown suite '", suite, "' (known suites: ",
                      names.str(), ")"));
}

std::vector<Workload>
controlDivergentWorkloads()
{
    std::vector<Workload> result;
    for (const auto &w : evaluationWorkloads()) {
        if (w.controlDivergent)
            result.push_back(w);
    }
    return result;
}

Workload
traceFileWorkload(const std::string &path)
{
    Workload w;
    w.name = "file:" + path;
    w.suite = "external";
    w.description = "on-disk kernel trace " + path;
    w.generate = [path](const HardwareConfig &) {
        Result<KernelTrace> loaded = loadTraceFile(path);
        if (!loaded.ok())
            throw StatusException(loaded.status());
        return std::move(loaded).value();
    };
    return w;
}

} // namespace gpumech
