/**
 * @file
 * Parboil-2.5-like kernels (paper Section VI-A).
 */

#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace gpumech
{

std::vector<Workload>
makeParboilSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string name, std::string desc,
                        bool control_div, bool mem_div, auto generator) {
        suite.push_back(Workload{std::move(name), "parboil",
                                 std::move(desc), control_div, mem_div,
                                 std::move(generator)});
    };

    add("sgemm_tiled", "compute-bound tiled matrix multiply", false,
        false, [](const HardwareConfig &c) {
            TiledMatmulParams p;
            p.tiles = 26;
            p.fmaPerTile = 18;
            p.sharedPerTile = 6;
            return tiledMatmulKernel("sgemm_tiled", p, c);
        });

    add("spmv_jds", "irregular sparse loads, low compute", false, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 65;
            p.loadsPerIter = 2;
            p.loadDivergence = 12;
            p.sharedRegion = true;
            p.sharedRegionBytes = 8 << 20;
            p.computePerLoad = 2;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            return loopKernel("spmv_jds", p, c);
        });

    add("stencil_block2d", "7-point stencil, L2-friendly", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 3;
            p.loadDivergence = 1;
            p.sharedRegion = true;
            p.sharedRegionBytes = 1 << 20;
            p.computePerLoad = 4;
            p.independentCompute = 3;
            p.storesPerIter = 1;
            return loopKernel("stencil_block2d", p, c);
        });

    add("sad_calc_8",
        "write-dominated: divergent stores flood DRAM (Fig. 13)",
        false, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.7;
            p.hotBytes = 8 * 1024;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            p.storesPerIter = 3;
            p.storeDivergence = 8;
            return loopKernel("sad_calc_8", p, c);
        });

    add("sad_calc_16", "write-heavy with coalesced wide stores", false,
        false, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 60;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.6;
            p.hotBytes = 8 * 1024;
            p.computePerLoad = 2;
            p.independentCompute = 2;
            p.storesPerIter = 4;
            p.storeDivergence = 2;
            return loopKernel("sad_calc_16", p, c);
        });

    add("histo_main", "random scatter read-modify-write histogram",
        false, true, [](const HardwareConfig &c) {
            HistogramParams p;
            p.iterations = 60;
            p.updatesPerIter = 1;
            p.binBytes = 256 * 1024;
            p.degree = 16;
            return histogramKernel("histo_main", p, c);
        });

    add("lbm_stream_collide",
        "many-array streaming, bandwidth bound", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 45;
            p.loadsPerIter = 5;
            p.loadDivergence = 1;
            p.computePerLoad = 3;
            p.independentCompute = 2;
            p.storesPerIter = 3;
            return loopKernel("lbm_stream_collide", p, c);
        });

    add("mri_q_computeQ", "SFU-heavy compute bound", false, false,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 70;
            p.loadsPerIter = 1;
            p.loadDivergence = 1;
            p.hotFraction = 0.85;
            p.hotBytes = 6 * 1024;
            p.computePerLoad = 6;
            p.independentCompute = 2;
            p.sfuPerIter = 3;
            return loopKernel("mri_q_computeQ", p, c);
        });

    add("cutcp_lattice",
        "medium divergence with light control divergence", true, true,
        [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.iterationVariance = 0.25;
            p.loadsPerIter = 2;
            p.loadDivergence = 6;
            p.sharedRegion = true;
            p.sharedRegionBytes = 2 << 20;
            p.computePerLoad = 5;
            p.independentCompute = 2;
            p.sfuPerIter = 1;
            p.storesPerIter = 1;
            return loopKernel("cutcp_lattice", p, c);
        });

    add("tpacf_gen_hists",
        "divergent loads + SFU + histogram stores, control divergent",
        true, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 50;
            p.iterationVariance = 0.35;
            p.extraPathFraction = 0.2;
            p.loadsPerIter = 2;
            p.loadDivergence = 8;
            p.sharedRegion = true;
            p.sharedRegionBytes = 4 << 20;
            p.computePerLoad = 3;
            p.sfuPerIter = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 8;
            return loopKernel("tpacf_gen_hists", p, c);
        });

    add("mm_shared", "shared-memory blocked matrix multiply", false,
        false, [](const HardwareConfig &c) {
            TiledMatmulParams p;
            p.tiles = 22;
            p.fmaPerTile = 12;
            p.sharedPerTile = 10;
            return tiledMatmulKernel("mm_shared", p, c);
        });

    add("bfs_parboil", "queue-based BFS, strongly control divergent",
        true, true, [](const HardwareConfig &c) {
            LoopKernelParams p;
            p.iterations = 55;
            p.iterationVariance = 0.65;
            p.extraPathFraction = 0.35;
            p.extraPathCompute = 8;
            p.loadsPerIter = 2;
            p.loadDivergence = 6;
            p.sharedRegion = true;
            p.sharedRegionBytes = 8 << 20;
            p.computePerLoad = 2;
            p.independentCompute = 2;
            p.storesPerIter = 1;
            p.storeDivergence = 2;
            return loopKernel("bfs_parboil", p, c);
        });

    return suite;
}

} // namespace gpumech
