/**
 * @file
 * One-pass reuse-distance profiling and miss-ratio-curve derivation
 * (the MRC fast path for cache-geometry sweeps).
 *
 * collectMrcProfile() walks the trace exactly once — in the serial
 * collector's round-robin warp/core interleave — and records, per
 * static PC, joint (per-core, merged-stream) LRU stack distances for
 * every sampled load line request plus exact load/store counts.
 * Stores mirror the simulated collector: write-through/no-allocate,
 * so they never touch the trackers.
 *
 * deriveCollectorResult() then prices ANY cache geometry against the
 * profile in O(histogram) time, producing a CollectorResult with the
 * same shape the functional simulation produces, so the rest of the
 * pipeline (interval profiles, multithreading/contention models, CPI
 * stacks) is unchanged. A cache-geometry sweep becomes one profiling
 * pass plus one cheap derivation per cell instead of one full
 * functional simulation per cell.
 *
 * Exact vs approximate: see mem/mrc.hh. The derivation is exact for
 * unsampled profiles on fully-associative LRU geometries (L1 always;
 * the full hierarchy whenever L1 filters nothing from the L2 stream);
 * sampling, set-associative geometry (balanced-mapping conversion),
 * and
 * non-LRU replacement are approximations, reported in
 * CollectorResult::mrcApproximate / mrcApproximation.
 */

#ifndef GPUMECH_COLLECTOR_MRC_COLLECTOR_HH
#define GPUMECH_COLLECTOR_MRC_COLLECTOR_HH

#include "collector/input_collector.hh"
#include "mem/mrc.hh"

namespace gpumech
{

/**
 * Profile a kernel's reuse distances in one walk.
 *
 * The walk reads only trace-shaping configuration (core/warp mapping,
 * line size — HardwareConfig::traceKey() fields), never cache
 * geometry, so one profile serves every geometry sweep cell.
 *
 * @param sampling_rate SHARDS spatial sampling rate in (0, 1];
 *        1.0 records every line (exact mode)
 */
MrcProfile collectMrcProfile(const KernelTrace &kernel,
                             const HardwareConfig &config,
                             double sampling_rate = 1.0);

/**
 * Derive the collector result for an arbitrary cache geometry from a
 * reuse-distance profile.
 *
 * Requires config.l1LineBytes == config.l2LineBytes ==
 * profile.lineBytes (distances are measured in lines of one size);
 * throws StatusException(InvalidArgument) otherwise — the line-size
 * axis needs --sweep-mode=rerun.
 */
CollectorResult deriveCollectorResult(const MrcProfile &profile,
                                      const KernelTrace &kernel,
                                      const HardwareConfig &config);

} // namespace gpumech

#endif // GPUMECH_COLLECTOR_MRC_COLLECTOR_HH
