#include "collector/input_collector.hh"

#include <algorithm>
#include <bit>
#include <optional>
#include <thread>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "mem/cache.hh"
#include "trace/trace_io.hh"

namespace gpumech
{

double
PcProfile::fracL1Hit() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL1Hit) / n;
}

double
PcProfile::fracL2Hit() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL2Hit) / n;
}

double
PcProfile::fracL2Miss() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL2Miss) / n;
}

double
PcProfile::reqL1MissRate() const
{
    return reqCount == 0
        ? 0.0
        : static_cast<double>(reqL1Miss) / static_cast<double>(reqCount);
}

double
PcProfile::reqL2MissRate() const
{
    return reqCount == 0
        ? 0.0
        : static_cast<double>(reqL2Miss) / static_cast<double>(reqCount);
}

double
PcProfile::amat(const HardwareConfig &config) const
{
    return fracL1Hit() * config.l1HitLatency +
           fracL2Hit() * config.l2HitLatency +
           fracL2Miss() * config.l2MissLatency();
}

double
CollectorResult::latencyOf(std::uint32_t pc) const
{
    if (pc >= pcLatency.size())
        panic(msg("latencyOf: pc ", pc, " out of range"));
    return pcLatency[pc];
}

namespace
{

/** Initialize per-PC profiles and the dynamic instruction counts. */
void
initProfiles(CollectorResult &result, const KernelTrace &kernel)
{
    result.pcs.resize(kernel.numStaticInsts());
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc)
        result.pcs[pc].op = kernel.opcodeOf(pc);

    // Instruction-count bookkeeping happens once per dynamic
    // instruction regardless of opcode; one dense pass over the flat
    // PC array.
    for (std::uint32_t pc : kernel.instPcs())
        ++result.pcs[pc].instCount;
}

} // namespace

void
finishCollectorResult(CollectorResult &result, const KernelTrace &kernel,
                      const HardwareConfig &config)
{
    result.pcLatency.resize(kernel.numStaticInsts());
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        Opcode op = kernel.opcodeOf(pc);
        if (op == Opcode::GlobalLoad) {
            result.pcLatency[pc] = result.pcs[pc].amat(config);
        } else if (op == Opcode::GlobalStore) {
            result.pcLatency[pc] = 1.0;
        } else {
            result.pcLatency[pc] = fixedLatency(op, config.latency);
        }
    }

    // avg_miss_latency (Eq. 19): mean L2/DRAM latency over L1-missing
    // load requests, without queuing.
    std::uint64_t miss_reqs = 0;
    std::uint64_t dram_reqs = 0;
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        if (kernel.opcodeOf(pc) != Opcode::GlobalLoad)
            continue;
        miss_reqs += result.pcs[pc].reqL1Miss;
        dram_reqs += result.pcs[pc].reqL2Miss;
    }
    if (miss_reqs == 0) {
        result.avgMissLatency = config.l2HitLatency;
    } else {
        std::uint64_t l2_hit_reqs = miss_reqs - dram_reqs;
        result.avgMissLatency =
            (static_cast<double>(l2_hit_reqs) * config.l2HitLatency +
             static_cast<double>(dram_reqs) * config.l2MissLatency()) /
            static_cast<double>(miss_reqs);
    }
}

CollectorResult
collectInputs(const KernelTrace &kernel, const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Collect);

    CollectorResult result;
    initProfiles(result, kernel);

    FunctionalHierarchy hierarchy(config);

    const std::vector<Opcode> &ops = kernel.instOps();
    const std::vector<std::uint32_t> &pcs = kernel.instPcs();

    // Per-warp cursor over global-memory instructions only; the
    // collector interleaves warps (and cores) round-robin, mirroring
    // the paper's cache simulator. Cursors are kernel-global flat
    // indices into the SoA arrays.
    struct Cursor
    {
        std::uint64_t idx;  //!< next flat instruction to consider
        std::uint64_t end;  //!< one past the warp's last instruction
        std::uint32_t core;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(kernel.numWarps());
    for (std::uint32_t w = 0; w < kernel.numWarps(); ++w) {
        std::uint64_t off = kernel.instOffsetOf(w);
        cursors.push_back(Cursor{off, off + kernel.warp(w).numInsts(),
                                 kernel.coreOfWarp(w, config)});
    }

    bool progress = true;
    while (progress) {
        deadlineCheckpoint();
        progress = false;
        for (auto &cur : cursors) {
            // Advance to this warp's next global-memory instruction.
            while (cur.idx < cur.end && !isGlobalMemory(ops[cur.idx]))
                ++cur.idx;
            if (cur.idx >= cur.end)
                continue;
            progress = true;

            const std::uint64_t f = cur.idx++;
            PcProfile &pc = result.pcs[pcs[f]];
            LineSpan lines = kernel.linesOfFlat(f);
            pc.reqCount += lines.size();

            if (ops[f] == Opcode::GlobalLoad) {
                MemEvent worst = MemEvent::L1Hit;
                for (Addr line : lines) {
                    MemEvent ev = hierarchy.accessLoad(cur.core, line);
                    if (ev != MemEvent::L1Hit)
                        ++pc.reqL1Miss;
                    if (ev == MemEvent::L2Miss)
                        ++pc.reqL2Miss;
                    worst = std::max(worst, ev);
                }
                switch (worst) {
                  case MemEvent::L1Hit:
                    ++pc.instL1Hit;
                    break;
                  case MemEvent::L2Hit:
                    ++pc.instL2Hit;
                    break;
                  case MemEvent::L2Miss:
                    ++pc.instL2Miss;
                    break;
                }
            } else {
                // Stores are write-through/no-allocate: they do not
                // touch cache tag state, and every request is
                // DRAM-bound.
                pc.reqL2Miss += lines.size();
                pc.reqL1Miss += lines.size();
                pc.instL2Miss += 1;
            }
        }
    }

    finishCollectorResult(result, kernel, config);

    double l1_acc = 0.0, l1_hit = 0.0;
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        l1_acc += static_cast<double>(hierarchy.l1(c).accesses());
        l1_hit += static_cast<double>(hierarchy.l1(c).hits());
    }
    result.l1HitRate = l1_acc == 0.0 ? 0.0 : l1_hit / l1_acc;
    result.l2HitRate = hierarchy.l2().hitRate();
    return result;
}

namespace
{

/**
 * One memory instruction processed by a per-core L1 walk: its flat
 * kernel-global index and, for loads, the bitmask of line requests
 * that missed L1 (bit i = lines(i) missed). Stores keep their slot so
 * the L2 replay preserves the serial round structure, but carry no
 * mask.
 */
struct MemRec
{
    std::uint64_t flatIdx;
    std::uint64_t missMask;
};

/** Per-core partial counters accumulated during the L1 walk. */
struct CorePartial
{
    std::vector<PcProfile> pcs;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
};

} // namespace

CollectorResult
collectInputsParallel(const KernelTrace &kernel,
                      const HardwareConfig &config, unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    const std::uint32_t num_warps = kernel.numWarps();
    // The MemRec miss bitmask holds up to 64 lines per instruction;
    // a coalesced slice never exceeds the warp size, so only exotic
    // configurations (warpSize > 64) fall back to the serial engine.
    bool mask_fits = true;
    for (std::uint32_t cnt : kernel.instLineCounts()) {
        if (cnt > 64) {
            mask_fits = false;
            break;
        }
    }
    if (jobs <= 1 || num_warps == 0 || !mask_fits)
        return collectInputs(kernel, config);

    evalCheckpoint(FaultSite::Collect);

    CollectorResult result;
    initProfiles(result, kernel);

    const std::vector<Opcode> &ops = kernel.instOps();
    const std::vector<std::uint32_t> &pcs = kernel.instPcs();
    const std::uint32_t num_static = kernel.numStaticInsts();

    // Warp indices per core, in kernel warp order (the serial walk
    // visits a core's warps in exactly this order within each round).
    std::vector<std::vector<std::uint32_t>> core_warps(config.numCores);
    for (std::uint32_t w = 0; w < num_warps; ++w)
        core_warps[kernel.coreOfWarp(w, config)].push_back(w);

    // Phase A: independent per-core L1 simulations on the pool. Each
    // core's walk is the serial engine's round-robin restricted to
    // that core's warps, so its L1 sees the identical access stream.
    // Outputs: per-warp MemRec streams (one record per memory
    // instruction, in walk order) and per-core partial counters.
    std::vector<std::vector<MemRec>> warp_recs(num_warps);
    std::vector<CorePartial> partials(config.numCores);
    parallelFor(
        config.numCores,
        [&](std::size_t c) {
            const auto &ids = core_warps[c];
            if (ids.empty())
                return;
            CorePartial &part = partials[c];
            part.pcs.resize(num_static);
            Cache l1(config.l1SizeBytes, config.l1LineBytes,
                     config.l1Assoc, "L1." + std::to_string(c),
                     replacementFromConfig(config));

            struct Cursor
            {
                std::uint64_t idx;
                std::uint64_t end;
                std::uint32_t warp;
            };
            std::vector<Cursor> cursors;
            cursors.reserve(ids.size());
            for (std::uint32_t w : ids) {
                std::uint64_t off = kernel.instOffsetOf(w);
                std::uint64_t end = off + kernel.warp(w).numInsts();
                cursors.push_back(Cursor{off, end, w});
                // One record per memory instruction.
                std::size_t mem = 0;
                for (std::uint64_t i = off; i < end; ++i) {
                    if (isGlobalMemory(ops[i]))
                        ++mem;
                }
                warp_recs[w].reserve(mem);
            }

            bool progress = true;
            while (progress) {
                progress = false;
                for (auto &cur : cursors) {
                    while (cur.idx < cur.end &&
                           !isGlobalMemory(ops[cur.idx])) {
                        ++cur.idx;
                    }
                    if (cur.idx >= cur.end)
                        continue;
                    progress = true;

                    const std::uint64_t f = cur.idx++;
                    PcProfile &pc = part.pcs[pcs[f]];
                    LineSpan lines = kernel.linesOfFlat(f);
                    pc.reqCount += lines.size();

                    if (ops[f] == Opcode::GlobalLoad) {
                        std::uint64_t mask = 0;
                        for (std::uint32_t i = 0; i < lines.size();
                             ++i) {
                            if (!l1.access(lines[i]))
                                mask |= std::uint64_t{1} << i;
                        }
                        pc.reqL1Miss += std::popcount(mask);
                        warp_recs[cur.warp].push_back(MemRec{f, mask});
                    } else {
                        pc.reqL2Miss += lines.size();
                        pc.reqL1Miss += lines.size();
                        pc.instL2Miss += 1;
                        warp_recs[cur.warp].push_back(MemRec{f, 0});
                    }
                }
            }
            part.l1Accesses = l1.accesses();
            part.l1Hits = l1.hits();
        },
        1, jobs);

    // Merge the per-core partial counters (plain integer sums; the
    // core order is fixed, and sums are order-independent anyway).
    for (const CorePartial &part : partials) {
        if (part.pcs.empty())
            continue;
        for (std::uint32_t pc = 0; pc < num_static; ++pc) {
            PcProfile &dst = result.pcs[pc];
            const PcProfile &src = part.pcs[pc];
            dst.reqCount += src.reqCount;
            dst.reqL1Miss += src.reqL1Miss;
            dst.reqL2Miss += src.reqL2Miss;
            dst.instL2Miss += src.instL2Miss;
        }
    }

    // Phase B: replay the L1-missing load requests into the shared L2
    // in the serial engine's exact global interleave: round r visits
    // every warp's r-th memory instruction in kernel warp order.
    Cache l2(config.l2SizeBytes, config.l2LineBytes, config.l2Assoc,
             "L2", replacementFromConfig(config));
    std::vector<std::size_t> pos(num_warps, 0);
    bool progress = true;
    while (progress) {
        deadlineCheckpoint();
        progress = false;
        for (std::uint32_t w = 0; w < num_warps; ++w) {
            if (pos[w] >= warp_recs[w].size())
                continue;
            progress = true;
            const MemRec &rec = warp_recs[w][pos[w]++];
            if (ops[rec.flatIdx] != Opcode::GlobalLoad)
                continue; // stores never touch cache tag state
            PcProfile &pc = result.pcs[pcs[rec.flatIdx]];
            if (rec.missMask == 0) {
                ++pc.instL1Hit;
                continue;
            }
            LineSpan lines = kernel.linesOfFlat(rec.flatIdx);
            bool any_l2_miss = false;
            for (std::uint32_t i = 0; i < lines.size(); ++i) {
                if (!((rec.missMask >> i) & 1))
                    continue;
                if (!l2.access(lines[i])) {
                    any_l2_miss = true;
                    ++pc.reqL2Miss;
                }
            }
            if (any_l2_miss)
                ++pc.instL2Miss;
            else
                ++pc.instL2Hit;
        }
    }

    finishCollectorResult(result, kernel, config);

    double l1_acc = 0.0, l1_hit = 0.0;
    for (const CorePartial &part : partials) {
        l1_acc += static_cast<double>(part.l1Accesses);
        l1_hit += static_cast<double>(part.l1Hits);
    }
    result.l1HitRate = l1_acc == 0.0 ? 0.0 : l1_hit / l1_acc;
    result.l2HitRate = l2.hitRate();
    return result;
}

void
streamTraceSet(const std::vector<std::string> &paths,
               const HardwareConfig &config,
               const std::function<void(StreamedTrace &&)> &consume,
               unsigned jobs)
{
    if (paths.empty())
        return;

    // Decode one file, converting an escaping checkpoint exception
    // (fault plan / deadline under an installed EvalContext) into the
    // file's Status so one bad file cannot take down the stream.
    auto decode = [](const std::string &path) -> Result<KernelTrace> {
        try {
            return loadTraceFile(path);
        } catch (const StatusException &e) {
            return e.status();
        }
    };

    std::optional<Result<KernelTrace>> pending = decode(paths[0]);
    for (std::size_t i = 0; i < paths.size(); ++i) {
        Result<KernelTrace> current = std::move(*pending);
        pending.reset();

        // Kick off the next file's decode while this one is being
        // collected (and consumed) — the decode/collect overlap that
        // keeps at most two traces resident.
        std::thread prefetch;
        std::optional<Result<KernelTrace>> next;
        if (i + 1 < paths.size()) {
            prefetch = std::thread(
                [&next, &decode, &paths, i] { next = decode(paths[i + 1]); });
        }

        StreamedTrace out;
        out.path = paths[i];
        if (!current.ok()) {
            out.status = current.status();
        } else {
            out.kernel = std::move(current).value();
            try {
                out.inputs =
                    collectInputsParallel(out.kernel, config, jobs);
            } catch (const StatusException &e) {
                out.status = e.status();
            }
        }
        consume(std::move(out));

        if (prefetch.joinable())
            prefetch.join();
        pending = std::move(next);
    }
}

} // namespace gpumech
