#include "collector/input_collector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

double
PcProfile::fracL1Hit() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL1Hit) / n;
}

double
PcProfile::fracL2Hit() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL2Hit) / n;
}

double
PcProfile::fracL2Miss() const
{
    std::uint64_t n = instL1Hit + instL2Hit + instL2Miss;
    return n == 0 ? 0.0 : static_cast<double>(instL2Miss) / n;
}

double
PcProfile::reqL1MissRate() const
{
    return reqCount == 0
        ? 0.0
        : static_cast<double>(reqL1Miss) / static_cast<double>(reqCount);
}

double
PcProfile::reqL2MissRate() const
{
    return reqCount == 0
        ? 0.0
        : static_cast<double>(reqL2Miss) / static_cast<double>(reqCount);
}

double
PcProfile::amat(const HardwareConfig &config) const
{
    return fracL1Hit() * config.l1HitLatency +
           fracL2Hit() * config.l2HitLatency +
           fracL2Miss() * config.l2MissLatency();
}

double
CollectorResult::latencyOf(std::uint32_t pc) const
{
    if (pc >= pcLatency.size())
        panic(msg("latencyOf: pc ", pc, " out of range"));
    return pcLatency[pc];
}

CollectorResult
collectInputs(const KernelTrace &kernel, const HardwareConfig &config)
{
    CollectorResult result;
    result.pcs.resize(kernel.numStaticInsts());
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc)
        result.pcs[pc].op = kernel.opcodeOf(pc);

    FunctionalHierarchy hierarchy(config);

    // Per-warp cursor over global-memory instructions only; the
    // collector interleaves warps (and cores) round-robin, mirroring
    // the paper's cache simulator.
    struct Cursor
    {
        const WarpTrace *warp;
        std::uint32_t core;
        std::size_t idx = 0;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(kernel.numWarps());
    for (const auto &warp : kernel.warps())
        cursors.push_back(Cursor{&warp, kernel.coreOf(warp, config), 0});

    // Instruction-count bookkeeping happens once per dynamic
    // instruction regardless of opcode.
    for (const auto &warp : kernel.warps()) {
        for (const auto &inst : warp.insts)
            ++result.pcs[inst.pc].instCount;
    }

    bool progress = true;
    while (progress) {
        progress = false;
        for (auto &cur : cursors) {
            // Advance to this warp's next global-memory instruction.
            const auto &insts = cur.warp->insts;
            while (cur.idx < insts.size() &&
                   !isGlobalMemory(insts[cur.idx].op)) {
                ++cur.idx;
            }
            if (cur.idx >= insts.size())
                continue;
            progress = true;

            const WarpInst &inst = insts[cur.idx++];
            PcProfile &pc = result.pcs[inst.pc];
            pc.reqCount += inst.lines.size();

            if (inst.op == Opcode::GlobalLoad) {
                MemEvent worst = MemEvent::L1Hit;
                for (Addr line : inst.lines) {
                    MemEvent ev = hierarchy.accessLoad(cur.core, line);
                    if (ev != MemEvent::L1Hit)
                        ++pc.reqL1Miss;
                    if (ev == MemEvent::L2Miss)
                        ++pc.reqL2Miss;
                    worst = std::max(worst, ev);
                }
                switch (worst) {
                  case MemEvent::L1Hit:
                    ++pc.instL1Hit;
                    break;
                  case MemEvent::L2Hit:
                    ++pc.instL2Hit;
                    break;
                  case MemEvent::L2Miss:
                    ++pc.instL2Miss;
                    break;
                }
            } else {
                // Stores are write-through/no-allocate: they do not
                // touch cache tag state, and every request is
                // DRAM-bound.
                pc.reqL2Miss += inst.lines.size();
                pc.reqL1Miss += inst.lines.size();
                pc.instL2Miss += 1;
            }
        }
    }

    // Per-PC latencies (Section V-B).
    result.pcLatency.resize(kernel.numStaticInsts());
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        Opcode op = kernel.opcodeOf(pc);
        if (op == Opcode::GlobalLoad) {
            result.pcLatency[pc] = result.pcs[pc].amat(config);
        } else if (op == Opcode::GlobalStore) {
            result.pcLatency[pc] = 1.0;
        } else {
            result.pcLatency[pc] = fixedLatency(op, config.latency);
        }
    }

    // avg_miss_latency (Eq. 19): mean L2/DRAM latency over L1-missing
    // load requests, without queuing.
    std::uint64_t miss_reqs = 0;
    std::uint64_t dram_reqs = 0;
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        if (kernel.opcodeOf(pc) != Opcode::GlobalLoad)
            continue;
        miss_reqs += result.pcs[pc].reqL1Miss;
        dram_reqs += result.pcs[pc].reqL2Miss;
    }
    if (miss_reqs == 0) {
        result.avgMissLatency = config.l2HitLatency;
    } else {
        std::uint64_t l2_hit_reqs = miss_reqs - dram_reqs;
        result.avgMissLatency =
            (static_cast<double>(l2_hit_reqs) * config.l2HitLatency +
             static_cast<double>(dram_reqs) * config.l2MissLatency()) /
            static_cast<double>(miss_reqs);
    }

    double l1_acc = 0.0, l1_hit = 0.0;
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        l1_acc += static_cast<double>(hierarchy.l1(c).accesses());
        l1_hit += static_cast<double>(hierarchy.l1(c).hits());
    }
    result.l1HitRate = l1_acc == 0.0 ? 0.0 : l1_hit / l1_acc;
    result.l2HitRate = hierarchy.l2().hitRate();
    return result;
}

} // namespace gpumech
