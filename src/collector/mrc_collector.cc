#include "collector/mrc_collector.hh"

#include <algorithm>
#include <cmath>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/status.hh"

namespace gpumech
{

MrcProfile
collectMrcProfile(const KernelTrace &kernel,
                  const HardwareConfig &config, double sampling_rate)
{
    evalCheckpoint(FaultSite::Collect);

    MrcProfile profile;
    profile.samplingRate = sampling_rate;
    profile.lineBytes = config.l1LineBytes;
    profile.pcs.resize(kernel.numStaticInsts());

    ShardsSampler sampler(sampling_rate);
    ReuseDistanceTracker global;
    std::vector<ReuseDistanceTracker> per_core(config.numCores);

    const std::vector<Opcode> &ops = kernel.instOps();
    const std::vector<std::uint32_t> &pcs = kernel.instPcs();

    // The serial collector's walk: per-warp cursors over global-memory
    // instructions, warps (and cores) interleaved round-robin, so the
    // merged-stream distances see the same global order the shared L2
    // sees and each per-core tracker sees its L1's exact stream.
    struct Cursor
    {
        std::uint64_t idx;
        std::uint64_t end;
        std::uint32_t core;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(kernel.numWarps());
    for (std::uint32_t w = 0; w < kernel.numWarps(); ++w) {
        std::uint64_t off = kernel.instOffsetOf(w);
        cursors.push_back(Cursor{off, off + kernel.warp(w).numInsts(),
                                 kernel.coreOfWarp(w, config)});
    }

    bool progress = true;
    while (progress) {
        deadlineCheckpoint();
        progress = false;
        for (auto &cur : cursors) {
            while (cur.idx < cur.end && !isGlobalMemory(ops[cur.idx]))
                ++cur.idx;
            if (cur.idx >= cur.end)
                continue;
            progress = true;

            const std::uint64_t f = cur.idx++;
            MrcPcProfile &pc = profile.pcs[pcs[f]];
            LineSpan lines = kernel.linesOfFlat(f);

            if (ops[f] == Opcode::GlobalLoad) {
                ++pc.loadInsts;
                pc.loadReqs += lines.size();
                profile.totalLoadLines += lines.size();
                bool any_sampled = false;
                std::uint32_t max_d1 = 0, max_dg = 0;
                for (Addr line : lines) {
                    if (!sampler.sampled(line))
                        continue;
                    ++profile.sampledLoadLines;
                    std::uint32_t d1 = sampler.unscale(
                        per_core[cur.core].access(line));
                    std::uint32_t dg =
                        sampler.unscale(global.access(line));
                    pc.reqHist[packReusePair(d1, dg)] +=
                        sampler.weight();
                    // The cold sentinel is the numeric max, so max()
                    // correctly makes a cold line the slowest.
                    max_d1 = any_sampled ? std::max(max_d1, d1) : d1;
                    max_dg = any_sampled ? std::max(max_dg, dg) : dg;
                    any_sampled = true;
                }
                if (any_sampled) {
                    pc.instHist[packReusePair(max_d1, max_dg)] +=
                        sampler.weight();
                }
            } else {
                // Stores are write-through/no-allocate: no tag state,
                // no tracker updates, always DRAM-bound.
                ++pc.storeInsts;
                pc.storeReqs += lines.size();
            }
        }
    }
    return profile;
}

namespace
{

/** Cache geometry in (sets, ways) with division-by-zero guarding. */
struct Geometry
{
    std::uint32_t sets;
    std::uint32_t ways;
};

Geometry
geometryOf(std::uint32_t size_bytes, std::uint32_t line_bytes,
           std::uint32_t assoc, const char *level)
{
    if (line_bytes == 0 || assoc == 0 ||
        size_bytes % (line_bytes * assoc) != 0 ||
        size_bytes / (line_bytes * assoc) == 0) {
        throw StatusException(Status(
            StatusCode::InvalidArgument,
            msg("deriveCollectorResult: invalid ", level, " geometry (",
                size_bytes, "B / ", line_bytes, "B lines / ", assoc,
                " ways)")));
    }
    return Geometry{size_bytes / (line_bytes * assoc), assoc};
}

/** Expected hit/miss mass of one histogram under a geometry pair. */
struct ClassWeights
{
    double total = 0.0;
    double l1Hit = 0.0;
    double l2Hit = 0.0;
    double l2Miss = 0.0;
};

ClassWeights
classify(const ReusePairHist &hist, Geometry l1, Geometry l2)
{
    ClassWeights out;
    for (const auto &[key, w] : hist) {
        double p1 =
            assocHitProbability(reusePairD1(key), l1.sets, l1.ways);
        double p2 =
            assocHitProbability(reusePairDg(key), l2.sets, l2.ways);
        out.total += w;
        out.l1Hit += w * p1;
        out.l2Hit += w * (1.0 - p1) * p2;
        out.l2Miss += w * (1.0 - p1) * (1.0 - p2);
    }
    return out;
}

/**
 * Split an exact integer count into three classes proportional to the
 * given weights, rounding so the parts always sum to the whole.
 */
void
splitCount(std::uint64_t count, const ClassWeights &w,
           std::uint64_t &l1_hit, std::uint64_t &l2_hit,
           std::uint64_t &l2_miss)
{
    if (count == 0 || w.total <= 0.0) {
        l1_hit = l2_hit = l2_miss = 0;
        return;
    }
    double n = static_cast<double>(count);
    std::uint64_t a = static_cast<std::uint64_t>(
        std::llround(n * w.l1Hit / w.total));
    a = std::min(a, count);
    std::uint64_t ab = static_cast<std::uint64_t>(
        std::llround(n * (w.l1Hit + w.l2Hit) / w.total));
    ab = std::min(std::max(ab, a), count);
    l1_hit = a;
    l2_hit = ab - a;
    l2_miss = count - ab;
}

} // namespace

CollectorResult
deriveCollectorResult(const MrcProfile &profile,
                      const KernelTrace &kernel,
                      const HardwareConfig &config)
{
    evalCheckpoint(FaultSite::Collect);

    if (config.l1LineBytes != profile.lineBytes ||
        config.l2LineBytes != profile.lineBytes) {
        throw StatusException(Status(
            StatusCode::InvalidArgument,
            msg("deriveCollectorResult: line size mismatch (profile ",
                profile.lineBytes, "B, L1 ", config.l1LineBytes,
                "B, L2 ", config.l2LineBytes,
                "B); the line-size axis requires --sweep-mode=rerun")));
    }
    if (profile.pcs.size() != kernel.numStaticInsts()) {
        throw StatusException(Status(
            StatusCode::InvalidArgument,
            msg("deriveCollectorResult: profile has ",
                profile.pcs.size(), " PCs, kernel '", kernel.name(),
                "' has ", kernel.numStaticInsts())));
    }

    Geometry l1 = geometryOf(config.l1SizeBytes, config.l1LineBytes,
                             config.l1Assoc, "l1");
    Geometry l2 = geometryOf(config.l2SizeBytes, config.l2LineBytes,
                             config.l2Assoc, "l2");

    CollectorResult result;
    result.mrcDerived = true;
    {
        std::string reasons;
        auto add = [&reasons](const char *r) {
            if (!reasons.empty())
                reasons += ", ";
            reasons += r;
        };
        if (profile.samplingRate < 1.0)
            add("sampled profile");
        if (l1.sets > 1 || l2.sets > 1)
            add("set-associative geometry (balanced-mapping "
                "conversion)");
        if (config.replacementPolicy != 0)
            add("non-LRU replacement modeled as LRU stack distances");
        result.mrcApproximate = !reasons.empty();
        result.mrcApproximation = reasons;
    }

    // Same initialization as the simulated engines: per-PC opcode and
    // exact dynamic instruction counts.
    result.pcs.resize(kernel.numStaticInsts());
    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc)
        result.pcs[pc].op = kernel.opcodeOf(pc);
    for (std::uint32_t pc : kernel.instPcs())
        ++result.pcs[pc].instCount;

    // Profile-wide fallback fractions for PCs whose lines were all
    // sampled away (only possible at rate < 1).
    ClassWeights agg_req, agg_inst;
    for (const MrcPcProfile &mp : profile.pcs) {
        ClassWeights r = classify(mp.reqHist, l1, l2);
        ClassWeights i = classify(mp.instHist, l1, l2);
        agg_req.total += r.total;
        agg_req.l1Hit += r.l1Hit;
        agg_req.l2Hit += r.l2Hit;
        agg_req.l2Miss += r.l2Miss;
        agg_inst.total += i.total;
        agg_inst.l1Hit += i.l1Hit;
        agg_inst.l2Hit += i.l2Hit;
        agg_inst.l2Miss += i.l2Miss;
    }

    for (std::uint32_t pc = 0; pc < kernel.numStaticInsts(); ++pc) {
        const MrcPcProfile &mp = profile.pcs[pc];
        PcProfile &out = result.pcs[pc];
        out.reqCount = mp.loadReqs + mp.storeReqs;

        if (mp.loadReqs > 0) {
            ClassWeights req = classify(mp.reqHist, l1, l2);
            if (req.total <= 0.0)
                req = agg_req;
            std::uint64_t l1_hit = 0, l2_hit = 0, l2_miss = 0;
            splitCount(mp.loadReqs, req, l1_hit, l2_hit, l2_miss);
            out.reqL1Miss = l2_hit + l2_miss;
            out.reqL2Miss = l2_miss;
        }
        if (mp.loadInsts > 0) {
            ClassWeights inst = classify(mp.instHist, l1, l2);
            if (inst.total <= 0.0)
                inst = agg_inst.total > 0.0 ? agg_inst : agg_req;
            splitCount(mp.loadInsts, inst, out.instL1Hit,
                       out.instL2Hit, out.instL2Miss);
        }
        // Stores: write-through/no-allocate, every request DRAM-bound.
        out.reqL1Miss += mp.storeReqs;
        out.reqL2Miss += mp.storeReqs;
        out.instL2Miss += mp.storeInsts;
    }

    finishCollectorResult(result, kernel, config);

    // Aggregate rates mirror the functional hierarchy's counters:
    // L1 sees every load line, L2 only the L1-missing ones.
    double l1_misses = agg_req.l2Hit + agg_req.l2Miss;
    result.l1HitRate =
        agg_req.total <= 0.0 ? 0.0 : agg_req.l1Hit / agg_req.total;
    result.l2HitRate =
        l1_misses <= 0.0 ? 0.0 : agg_req.l2Hit / l1_misses;
    return result;
}

} // namespace gpumech
