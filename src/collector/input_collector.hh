/**
 * @file
 * GPUMech input collector (paper Section V).
 *
 * Runs the functional cache simulator over every warp's memory
 * instructions in round-robin order and produces:
 *  - the distribution of miss events per memory PC (instruction-level,
 *    classified by the longest-latency coalesced request);
 *  - request-level L1/L2 miss rates per PC (used by the contention
 *    models to count MSHR- and DRAM-bound requests);
 *  - the latency of every static instruction: fixed latencies for
 *    compute PCs, AMAT for memory PCs (Section V-B);
 *  - avg_miss_latency, the uncontended L2/DRAM latency constant of the
 *    MSHR model (Eq. 19).
 *
 * Two engines produce bit-identical results:
 *  - collectInputs: the serial reference, one interleaved walk.
 *  - collectInputsParallel: per-core L1 simulation fans out across the
 *    shared thread pool (each core's L1 state is independent), followed
 *    by a serial replay of the L1-missing requests into the shared L2
 *    in exactly the serial walk's interleave. Counters are plain sums,
 *    so the merge is deterministic and the output is bit-identical to
 *    the serial engine at every thread count.
 */

#ifndef GPUMECH_COLLECTOR_INPUT_COLLECTOR_HH
#define GPUMECH_COLLECTOR_INPUT_COLLECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/status.hh"
#include "mem/hierarchy.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Collected statistics for one static instruction (PC). */
struct PcProfile
{
    Opcode op = Opcode::IntAlu;

    /** Dynamic executions of this PC across all warps. */
    std::uint64_t instCount = 0;

    // Instruction-level miss-event distribution (loads only): each
    // execution is classified by its slowest request.
    std::uint64_t instL1Hit = 0;
    std::uint64_t instL2Hit = 0;
    std::uint64_t instL2Miss = 0;

    // Request-level counts (global loads and stores).
    std::uint64_t reqCount = 0;
    std::uint64_t reqL1Miss = 0;  //!< load requests missing L1
    std::uint64_t reqL2Miss = 0;  //!< load requests missing L2

    /** Fraction of executions whose slowest request hit L1. */
    double fracL1Hit() const;
    /** Fraction of executions whose slowest request hit L2. */
    double fracL2Hit() const;
    /** Fraction of executions whose slowest request missed L2. */
    double fracL2Miss() const;

    /** Per-request L1 miss rate (loads). */
    double reqL1MissRate() const;
    /** Per-request L2 miss rate (loads; relative to all requests). */
    double reqL2MissRate() const;

    /** Average memory access time of this PC (loads; Section V-B). */
    double amat(const HardwareConfig &config) const;
};

/** Everything the single-warp and multi-warp models need as input. */
struct CollectorResult
{
    /** Per-PC profiles, indexed by PC. */
    std::vector<PcProfile> pcs;

    /**
     * Latency of each static instruction in cycles: fixed for compute
     * PCs, AMAT for global loads, 1 for global stores (they never
     * stall dependents).
     */
    std::vector<double> pcLatency;

    /**
     * Uncontended average L2/DRAM latency of L1-missing load requests
     * (Eq. 19's avg_miss_latency). Falls back to the L2 hit latency
     * when the kernel has no L1 misses.
     */
    double avgMissLatency = 0.0;

    // Aggregate cache statistics of the functional simulation.
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;

    /**
     * Provenance of MRC-derived results (collector/mrc_collector.hh):
     * mrcDerived marks a result computed from a reuse-distance profile
     * instead of a functional-hierarchy walk, and mrcApproximate marks
     * the derivations that are approximate rather than exact (sampled
     * profile, set-associative geometry, or a non-LRU replacement
     * policy), with the reasons spelled out in mrcApproximation.
     * Both stay false/empty on simulated results.
     */
    bool mrcDerived = false;
    bool mrcApproximate = false;
    std::string mrcApproximation;

    /** Latency of a PC; fatal if out of range. */
    double latencyOf(std::uint32_t pc) const;
};

/**
 * Fill the derived fields shared by every collector engine — per-PC
 * latencies (Section V-B) and avg_miss_latency (Eq. 19) — from the
 * already-accumulated per-PC counters. Exposed so the MRC derivation
 * path reuses the exact same arithmetic as the simulated engines.
 */
void finishCollectorResult(CollectorResult &result,
                           const KernelTrace &kernel,
                           const HardwareConfig &config);

/**
 * Run the input collector over a kernel (serial reference engine).
 *
 * The cache simulator models the same number of warps and cores as
 * the target system (warps mapped to cores by block id) and reads
 * memory instructions from each warp's trace in round-robin fashion,
 * with the cores themselves interleaved round-robin onto the shared
 * L2 (Section V-A).
 */
CollectorResult collectInputs(const KernelTrace &kernel,
                              const HardwareConfig &config);

/**
 * Parallel engine: per-core L1 walks run as thread-pool tasks (the
 * walk order within one core matches the serial interleave exactly),
 * recording which requests missed L1; the L1-missing requests are then
 * replayed into the shared L2 serially in the serial engine's global
 * round-robin order. Output is bit-identical to collectInputs() at
 * every thread count.
 *
 * @param jobs total threads; 0 uses defaultJobs(), 1 runs the serial
 *        engine inline
 */
CollectorResult collectInputsParallel(const KernelTrace &kernel,
                                      const HardwareConfig &config,
                                      unsigned jobs = 0);

/** One trace file's outcome in a streamed trace set. */
struct StreamedTrace
{
    std::string path;

    /** Decode or collection failure; kernel/inputs valid when ok(). */
    Status status;

    KernelTrace kernel;
    CollectorResult inputs;
};

/**
 * Stream a set of on-disk trace files (either format, see
 * loadTraceFile) through the input collector with decode/collect
 * overlap: while file k is being collected across the thread pool,
 * file k+1 is decoded on a dedicated prefetch thread. At most two
 * decoded traces are resident at once, so a trace set larger than
 * memory streams through; @p consume is called once per path, in path
 * order.
 *
 * Failures are contained per file: a malformed or missing file (or a
 * fault-plan/deadline StatusException escaping decode or collection
 * under an installed EvalContext) produces a StreamedTrace carrying
 * the Status, and the stream moves on.
 *
 * @param jobs thread count for collectInputsParallel (0 = defaultJobs)
 */
void streamTraceSet(const std::vector<std::string> &paths,
                    const HardwareConfig &config,
                    const std::function<void(StreamedTrace &&)> &consume,
                    unsigned jobs = 0);

} // namespace gpumech

#endif // GPUMECH_COLLECTOR_INPUT_COLLECTOR_HH
