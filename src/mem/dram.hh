/**
 * @file
 * DRAM channel model for the timing simulator: a single FIFO service
 * queue whose service time per cache line is the line transmission
 * time on the DRAM bus (freq * L / B cycles), plus the fixed access
 * latency. Loads and stores share the queue, which is what lets
 * divergent write traffic delay loads (the paper's
 * kmeans_invert_mapping discussion).
 */

#ifndef GPUMECH_MEM_DRAM_HH
#define GPUMECH_MEM_DRAM_HH

#include <cstdint>

#include "common/config.hh"

namespace gpumech
{

/** Timing outcome of one DRAM request. */
struct DramTiming
{
    double serviceStart = 0.0; //!< cycle service began (after queuing)
    double fillCycle = 0.0;    //!< cycle data is available at L2
    double queueDelay = 0.0;   //!< serviceStart - arrival
};

/** Bandwidth-limited DRAM channel shared by all cores. */
class DramChannel
{
  public:
    explicit DramChannel(const HardwareConfig &config);

    /**
     * Enqueue a read for one cache line.
     *
     * @param arrival_cycle cycle the request reaches the channel
     * @return service start / fill timing
     */
    DramTiming read(double arrival_cycle);

    /**
     * Enqueue a write for one cache line. Writes consume bandwidth
     * but nothing waits for their completion.
     */
    DramTiming write(double arrival_cycle);

    std::uint64_t reads() const { return numReads; }
    std::uint64_t writes() const { return numWrites; }

    /** Mean queuing delay over all requests (cycles). */
    double avgQueueDelay() const;

    /** Cycle at which the channel becomes idle. */
    double busyUntil() const { return nextFree; }

    /** Service time per line in core cycles. */
    double serviceCycles() const { return serviceTime; }

    void reset();

  private:
    DramTiming enqueue(double arrival_cycle);

    double serviceTime;
    std::uint32_t accessLatency;
    double nextFree = 0.0;
    std::uint64_t numReads = 0;
    std::uint64_t numWrites = 0;
    double totalQueueDelay = 0.0;
};

} // namespace gpumech

#endif // GPUMECH_MEM_DRAM_HH
