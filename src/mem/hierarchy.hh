/**
 * @file
 * Two-level functional cache hierarchy: one L1 per core, one shared
 * L2. This is the "cache simulator" of the paper's input collector
 * (Section V): no timing, just hit/miss classification of every
 * coalesced load request.
 */

#ifndef GPUMECH_MEM_HIERARCHY_HH
#define GPUMECH_MEM_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/cache.hh"

namespace gpumech
{

/** Deepest level a request had to travel to. */
enum class MemEvent : std::uint8_t
{
    L1Hit,  //!< serviced by the core's L1
    L2Hit,  //!< L1 miss, serviced by the shared L2
    L2Miss, //!< went to DRAM
};

/** Map HardwareConfig::replacementPolicy to the cache policy enum. */
ReplacementPolicy replacementFromConfig(const HardwareConfig &config);

/** Functional L1-per-core + shared-L2 hierarchy. */
class FunctionalHierarchy
{
  public:
    explicit FunctionalHierarchy(const HardwareConfig &config);

    /**
     * Classify one load line request from a core, updating tag state
     * at both levels (misses allocate).
     *
     * @param core issuing core id
     * @param line_addr line-aligned address
     */
    MemEvent accessLoad(std::uint32_t core, Addr line_addr);

    /**
     * Classify the level a load request would hit without changing
     * state (used by the timing simulator's issue probe).
     */
    MemEvent probeLoad(std::uint32_t core, Addr line_addr) const;

    /** Per-core L1 (for stats inspection). */
    const Cache &l1(std::uint32_t core) const { return l1s.at(core); }
    Cache &l1(std::uint32_t core) { return l1s.at(core); }

    const Cache &l2() const { return l2Cache; }
    Cache &l2() { return l2Cache; }

    /** Invalidate all levels and reset statistics. */
    void reset();

    /**
     * Latency in cycles implied by an event under the configuration
     * (L1Hit -> l1HitLatency, L2Hit -> l2HitLatency,
     * L2Miss -> l2HitLatency + dramAccessLatency).
     */
    static std::uint32_t eventLatency(MemEvent event,
                                      const HardwareConfig &config);

  private:
    std::vector<Cache> l1s;
    Cache l2Cache;
};

} // namespace gpumech

#endif // GPUMECH_MEM_HIERARCHY_HH
