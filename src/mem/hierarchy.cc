#include "mem/hierarchy.hh"

#include "common/logging.hh"

namespace gpumech
{

FunctionalHierarchy::FunctionalHierarchy(const HardwareConfig &config)
    : l2Cache(config.l2SizeBytes, config.l2LineBytes, config.l2Assoc,
              "L2", replacementFromConfig(config))
{
    l1s.reserve(config.numCores);
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        l1s.emplace_back(config.l1SizeBytes, config.l1LineBytes,
                         config.l1Assoc, "L1." + std::to_string(c),
                         replacementFromConfig(config));
    }
}

ReplacementPolicy
replacementFromConfig(const HardwareConfig &config)
{
    switch (config.replacementPolicy) {
      case 0:
        return ReplacementPolicy::Lru;
      case 1:
        return ReplacementPolicy::Fifo;
      case 2:
        return ReplacementPolicy::PseudoRandom;
      case 3:
        return ReplacementPolicy::Arc;
    }
    fatal(msg("invalid replacementPolicy index ",
              config.replacementPolicy));
}

MemEvent
FunctionalHierarchy::accessLoad(std::uint32_t core, Addr line_addr)
{
    if (l1s.at(core).access(line_addr))
        return MemEvent::L1Hit;
    if (l2Cache.access(line_addr))
        return MemEvent::L2Hit;
    return MemEvent::L2Miss;
}

MemEvent
FunctionalHierarchy::probeLoad(std::uint32_t core, Addr line_addr) const
{
    if (l1s.at(core).probe(line_addr))
        return MemEvent::L1Hit;
    if (l2Cache.probe(line_addr))
        return MemEvent::L2Hit;
    return MemEvent::L2Miss;
}

void
FunctionalHierarchy::reset()
{
    for (auto &l1 : l1s)
        l1.reset();
    l2Cache.reset();
}

std::uint32_t
FunctionalHierarchy::eventLatency(MemEvent event,
                                  const HardwareConfig &config)
{
    switch (event) {
      case MemEvent::L1Hit:
        return config.l1HitLatency;
      case MemEvent::L2Hit:
        return config.l2HitLatency;
      case MemEvent::L2Miss:
        return config.l2MissLatency();
    }
    return 0;
}

} // namespace gpumech
