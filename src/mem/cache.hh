/**
 * @file
 * Set-associative cache with true-LRU replacement.
 *
 * Purely functional (tag state only, no timing): the input collector
 * uses it to classify accesses, and the timing simulator uses the same
 * structure plus an event model for latencies. Operating on
 * line-aligned addresses only keeps the simulator honest about
 * coalescing: callers must coalesce first.
 */

#ifndef GPUMECH_MEM_CACHE_HH
#define GPUMECH_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/coalescer.hh"

namespace gpumech
{

/** Replacement policies supported by the cache model. */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,          //!< true least-recently-used (default)
    Fifo,         //!< evict the oldest fill, ignore recency
    PseudoRandom, //!< deterministic xorshift victim choice
    Arc,          //!< adaptive replacement cache (per-set ARC)
};

/** Policy name ("LRU" / "FIFO" / "Random" / "ARC"). */
std::string toString(ReplacementPolicy policy);

/** Tag-state set-associative cache with selectable replacement. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param line_bytes line size (power of two)
     * @param assoc ways per set
     * @param name for diagnostics
     * @param policy replacement policy (LRU by default)
     */
    Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
          std::uint32_t assoc, std::string name,
          ReplacementPolicy policy = ReplacementPolicy::Lru);

    /**
     * Look up a line; on a miss, fill it (evicting LRU). Updates
     * recency and hit/miss statistics.
     *
     * @param line_addr line-aligned byte address
     * @return true on hit
     */
    bool access(Addr line_addr);

    /**
     * Look up a line without filling on a miss: a hit updates recency
     * and statistics; a miss only records the miss. Used by the
     * timing simulator, where fills happen when data returns.
     */
    bool lookup(Addr line_addr);

    /** Non-mutating presence check (no recency or stats update). */
    bool probe(Addr line_addr) const;

    /** Insert a line without classifying it as an access (fill path). */
    void fill(Addr line_addr);

    /** Invalidate everything and reset statistics. */
    void reset();

    std::uint64_t accesses() const { return numAccesses; }
    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numAccesses - numHits; }

    /** Hit rate in [0,1]; 0 when there were no accesses. */
    double hitRate() const;

    std::uint32_t numSets() const { return sets; }
    std::uint32_t associativity() const { return ways; }
    std::uint32_t lineSize() const { return lineBytes; }
    const std::string &name() const { return cacheName; }
    ReplacementPolicy replacementPolicy() const { return policy; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;  //!< recency stamp (LRU)
        std::uint64_t fillTime = 0; //!< insertion stamp (FIFO)
    };

    /**
     * One set's adaptive-replacement state (Megiddo & Modha): resident
     * lists T1 (recency) and T2 (frequency), ghost lists B1/B2, and the
     * adaptation target p for |T1|. MRU is the front of each list;
     * linear scans are fine at per-set sizes (<= ways entries).
     */
    struct ArcSet
    {
        std::vector<Addr> t1, t2, b1, b2;
        std::uint32_t p = 0; //!< target |T1| in [0, ways]
    };

    // ARC code path (policy == Arc routes every operation here; the
    // Way table stays unused).
    bool arcLookup(Addr tag, bool fill_on_miss);
    bool arcResident(const ArcSet &set, Addr tag) const;
    void arcHit(ArcSet &set, Addr tag);
    void arcMissFill(ArcSet &set, Addr tag);
    void arcReplace(ArcSet &set, bool in_b2);

    std::uint32_t setIndex(Addr line_addr) const;
    Addr tagOf(Addr line_addr) const;

    /** First way of the set holding @p tag. */
    Way *setBase(Addr tag);
    const Way *setBase(Addr tag) const;

    /** Pick the victim way in a set per the replacement policy. */
    Way *selectVictim(Way *base);

    /** Insert a line into a set (used by access-miss and fill). */
    void insert(Addr tag, Way *base);

    std::uint32_t lineBytes;
    std::uint32_t lineShift; //!< log2(lineBytes); lines are pow2
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint32_t setMask;   //!< sets - 1 when sets is a power of two
    bool setsPow2;           //!< mask instead of modulo in setIndex()
    std::string cacheName;
    ReplacementPolicy policy;
    std::vector<Way> table; //!< sets * ways entries, set-major
    std::vector<ArcSet> arcSets; //!< per-set ARC state (Arc only)
    std::uint64_t useClock = 0;
    std::uint64_t numAccesses = 0;
    std::uint64_t numHits = 0;
    std::uint64_t victimSeed = 0x2545f4914f6cdd1dULL;
};

} // namespace gpumech

#endif // GPUMECH_MEM_CACHE_HH
