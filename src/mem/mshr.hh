/**
 * @file
 * Miss Status Holding Register file.
 *
 * One entry tracks one outstanding missing line. Requests to a line
 * that already has an entry merge into it (secondary misses) without
 * consuming a new entry. Following the paper (Section VI-B), only load
 * misses allocate entries; stores bypass the MSHRs entirely.
 */

#ifndef GPUMECH_MEM_MSHR_HH
#define GPUMECH_MEM_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/coalescer.hh"

namespace gpumech
{

/**
 * Identifies a load instruction waiting on a fill: (warp slot on the
 * core, index into the warp's trace).
 */
struct MshrWaiter
{
    std::uint32_t warpSlot = 0;
    std::uint64_t instIdx = 0;
};

/** Fixed-capacity MSHR file with secondary-miss merging. */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t num_entries);

    /** True when a new (non-merging) allocation would fail. */
    bool full() const { return entries.size() >= capacity; }

    /** Number of live entries. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(entries.size());
    }

    std::uint32_t numEntries() const { return capacity; }

    /** True when the line already has an outstanding entry. */
    bool outstanding(Addr line_addr) const
    {
        return entries.find(line_addr) != entries.end();
    }

    /**
     * Count how many of the given lines would need fresh entries
     * (i.e. are not already outstanding). Used by the issue probe.
     */
    std::uint32_t freshMissCount(const std::vector<Addr> &lines) const;

    /** Free entries currently available. */
    std::uint32_t
    freeEntries() const
    {
        return capacity - static_cast<std::uint32_t>(entries.size());
    }

    /**
     * Allocate an entry for a line (must not be outstanding and the
     * file must not be full) and register the first waiter.
     */
    void allocate(Addr line_addr, MshrWaiter waiter);

    /** Merge a secondary miss into an existing entry. */
    void merge(Addr line_addr, MshrWaiter waiter);

    /**
     * Retire the entry on fill and return its waiters.
     *
     * @param line_addr the filled line (must be outstanding)
     */
    std::vector<MshrWaiter> retire(Addr line_addr);

    /** Peak occupancy seen since construction. */
    std::uint32_t peakOccupancy() const { return peak; }

    /** Total allocations (primary misses). */
    std::uint64_t allocations() const { return numAllocs; }

    /** Total merges (secondary misses). */
    std::uint64_t merges() const { return numMerges; }

  private:
    std::uint32_t capacity;
    std::unordered_map<Addr, std::vector<MshrWaiter>> entries;
    std::uint32_t peak = 0;
    std::uint64_t numAllocs = 0;
    std::uint64_t numMerges = 0;
};

} // namespace gpumech

#endif // GPUMECH_MEM_MSHR_HH
