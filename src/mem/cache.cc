#include "mem/cache.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace gpumech
{

std::string
toString(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "LRU";
      case ReplacementPolicy::Fifo:
        return "FIFO";
      case ReplacementPolicy::PseudoRandom:
        return "Random";
      case ReplacementPolicy::Arc:
        return "ARC";
    }
    return "?";
}

Cache::Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc, std::string name,
             ReplacementPolicy policy)
    : lineBytes(line_bytes), ways(assoc), cacheName(std::move(name)),
      policy(policy)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        panic("cache line size must be a power of two");
    if (assoc == 0)
        panic("cache associativity must be positive");
    if (size_bytes % (line_bytes * assoc) != 0)
        panic(msg("cache size ", size_bytes,
                  " not divisible by line*assoc"));
    sets = size_bytes / (line_bytes * assoc);
    if (sets == 0)
        panic("cache set count must be positive");
    lineShift = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
    setsPow2 = (sets & (sets - 1)) == 0;
    setMask = sets - 1;
    table.resize(static_cast<std::size_t>(sets) * ways);
    if (policy == ReplacementPolicy::Arc)
        arcSets.resize(sets);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    // Modulo indexing supports non-power-of-two set counts (the
    // Table I L2 has 768 sets); power-of-two counts take the mask
    // path, which keeps the hot loops free of hardware division.
    Addr line = line_addr >> lineShift;
    return static_cast<std::uint32_t>(setsPow2 ? (line & setMask)
                                               : (line % sets));
}

Addr
Cache::tagOf(Addr line_addr) const
{
    // The full line number doubles as the tag; simplest and correct
    // for any set count.
    return line_addr >> lineShift;
}

Cache::Way *
Cache::setBase(Addr tag)
{
    std::size_t set = setsPow2 ? static_cast<std::size_t>(tag & setMask)
                               : static_cast<std::size_t>(tag % sets);
    return &table[set * ways];
}

const Cache::Way *
Cache::setBase(Addr tag) const
{
    std::size_t set = setsPow2 ? static_cast<std::size_t>(tag & setMask)
                               : static_cast<std::size_t>(tag % sets);
    return &table[set * ways];
}

Cache::Way *
Cache::selectVictim(Way *base)
{
    // Invalid ways win regardless of policy.
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!base[w].valid)
            return &base[w];
    }
    switch (policy) {
      case ReplacementPolicy::Lru: {
        Way *victim = base;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        return victim;
      }
      case ReplacementPolicy::Fifo: {
        Way *victim = base;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (base[w].fillTime < victim->fillTime)
                victim = &base[w];
        }
        return victim;
      }
      case ReplacementPolicy::PseudoRandom: {
        victimSeed ^= victimSeed << 13;
        victimSeed ^= victimSeed >> 7;
        victimSeed ^= victimSeed << 17;
        return &base[victimSeed % ways];
      }
      case ReplacementPolicy::Arc:
        break; // ARC never uses the Way table
    }
    panic("unknown replacement policy");
}

namespace
{

/** Remove @p tag from @p list if present; true when it was. */
bool
listErase(std::vector<Addr> &list, Addr tag)
{
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i] == tag) {
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

/** Push @p tag at the MRU (front) position. */
void
listPushMru(std::vector<Addr> &list, Addr tag)
{
    list.insert(list.begin(), tag);
}

/** Pop and return the LRU (back) entry. */
Addr
listPopLru(std::vector<Addr> &list)
{
    Addr tag = list.back();
    list.pop_back();
    return tag;
}

} // namespace

bool
Cache::arcResident(const ArcSet &set, Addr tag) const
{
    for (Addr t : set.t1) {
        if (t == tag)
            return true;
    }
    for (Addr t : set.t2) {
        if (t == tag)
            return true;
    }
    return false;
}

void
Cache::arcHit(ArcSet &set, Addr tag)
{
    // Case I: a resident hit promotes to the frequency list's MRU.
    if (!listErase(set.t1, tag))
        listErase(set.t2, tag);
    listPushMru(set.t2, tag);
}

void
Cache::arcReplace(ArcSet &set, bool in_b2)
{
    // REPLACE(x, p): evict T1's LRU to B1 when T1 exceeds its target
    // (or meets it on a B2 hit), otherwise T2's LRU to B2.
    bool from_t1 =
        !set.t1.empty() &&
        (set.t1.size() > set.p ||
         (in_b2 && set.t1.size() == set.p));
    if (from_t1) {
        listPushMru(set.b1, listPopLru(set.t1));
    } else if (!set.t2.empty()) {
        listPushMru(set.b2, listPopLru(set.t2));
    } else if (!set.t1.empty()) {
        listPushMru(set.b1, listPopLru(set.t1));
    }
}

void
Cache::arcMissFill(ArcSet &set, Addr tag)
{
    const std::size_t c = ways;
    if (listErase(set.b1, tag)) {
        // Case II: ghost hit in B1 — recency is winning, grow p.
        std::size_t delta =
            set.b1.empty() ? 1
                           : std::max<std::size_t>(
                                 1, set.b2.size() / (set.b1.size() + 1));
        set.p = static_cast<std::uint32_t>(
            std::min(c, set.p + delta));
        arcReplace(set, false);
        listPushMru(set.t2, tag);
        return;
    }
    if (listErase(set.b2, tag)) {
        // Case III: ghost hit in B2 — frequency is winning, shrink p.
        std::size_t delta =
            set.b2.empty() ? 1
                           : std::max<std::size_t>(
                                 1, set.b1.size() / (set.b2.size() + 1));
        set.p = static_cast<std::uint32_t>(
            set.p > delta ? set.p - delta : 0);
        arcReplace(set, true);
        listPushMru(set.t2, tag);
        return;
    }
    // Case IV: a brand-new line.
    if (set.t1.size() + set.b1.size() == c) {
        if (set.t1.size() < c) {
            listPopLru(set.b1);
            arcReplace(set, false);
        } else {
            listPopLru(set.t1); // B1 is empty: evict without a ghost
        }
    } else if (set.t1.size() + set.t2.size() + set.b1.size() +
                   set.b2.size() >=
               c) {
        if (set.t1.size() + set.t2.size() + set.b1.size() +
                set.b2.size() ==
            2 * c)
            listPopLru(set.b2);
        arcReplace(set, false);
    }
    listPushMru(set.t1, tag);
}

bool
Cache::arcLookup(Addr tag, bool fill_on_miss)
{
    ArcSet &set =
        arcSets[setsPow2 ? static_cast<std::size_t>(tag & setMask)
                         : static_cast<std::size_t>(tag % sets)];
    if (arcResident(set, tag)) {
        arcHit(set, tag);
        return true;
    }
    if (fill_on_miss)
        arcMissFill(set, tag);
    return false;
}

void
Cache::insert(Addr tag, Way *base)
{
    Way *victim = selectVictim(base);
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->fillTime = useClock;
}

bool
Cache::access(Addr line_addr)
{
    ++numAccesses;
    ++useClock;
    Addr tag = tagOf(line_addr);
    if (policy == ReplacementPolicy::Arc) {
        bool hit = arcLookup(tag, true);
        numHits += hit ? 1 : 0;
        return hit;
    }
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++numHits;
            return true;
        }
    }
    insert(tag, base);
    return false;
}

bool
Cache::lookup(Addr line_addr)
{
    ++numAccesses;
    ++useClock;
    Addr tag = tagOf(line_addr);
    if (policy == ReplacementPolicy::Arc) {
        bool hit = arcLookup(tag, false);
        numHits += hit ? 1 : 0;
        return hit;
    }
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++numHits;
            return true;
        }
    }
    return false;
}

bool
Cache::probe(Addr line_addr) const
{
    Addr tag = tagOf(line_addr);
    if (policy == ReplacementPolicy::Arc) {
        const ArcSet &set =
            arcSets[setsPow2 ? static_cast<std::size_t>(tag & setMask)
                             : static_cast<std::size_t>(tag % sets)];
        return arcResident(set, tag);
    }
    const Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr line_addr)
{
    ++useClock;
    Addr tag = tagOf(line_addr);
    if (policy == ReplacementPolicy::Arc) {
        arcLookup(tag, true); // hit refreshes recency, miss fills
        return;
    }
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            return;
        }
    }
    insert(tag, base);
}

void
Cache::reset()
{
    for (auto &way : table)
        way = Way{};
    for (auto &set : arcSets)
        set = ArcSet{};
    useClock = 0;
    numAccesses = 0;
    numHits = 0;
    victimSeed = 0x2545f4914f6cdd1dULL;
}

double
Cache::hitRate() const
{
    return numAccesses == 0
        ? 0.0
        : static_cast<double>(numHits) / static_cast<double>(numAccesses);
}

} // namespace gpumech
