#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace gpumech
{

std::string
toString(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "LRU";
      case ReplacementPolicy::Fifo:
        return "FIFO";
      case ReplacementPolicy::PseudoRandom:
        return "Random";
    }
    return "?";
}

Cache::Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc, std::string name,
             ReplacementPolicy policy)
    : lineBytes(line_bytes), ways(assoc), cacheName(std::move(name)),
      policy(policy)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        panic("cache line size must be a power of two");
    if (assoc == 0)
        panic("cache associativity must be positive");
    if (size_bytes % (line_bytes * assoc) != 0)
        panic(msg("cache size ", size_bytes,
                  " not divisible by line*assoc"));
    sets = size_bytes / (line_bytes * assoc);
    if (sets == 0)
        panic("cache set count must be positive");
    lineShift = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
    setsPow2 = (sets & (sets - 1)) == 0;
    setMask = sets - 1;
    table.resize(static_cast<std::size_t>(sets) * ways);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    // Modulo indexing supports non-power-of-two set counts (the
    // Table I L2 has 768 sets); power-of-two counts take the mask
    // path, which keeps the hot loops free of hardware division.
    Addr line = line_addr >> lineShift;
    return static_cast<std::uint32_t>(setsPow2 ? (line & setMask)
                                               : (line % sets));
}

Addr
Cache::tagOf(Addr line_addr) const
{
    // The full line number doubles as the tag; simplest and correct
    // for any set count.
    return line_addr >> lineShift;
}

Cache::Way *
Cache::setBase(Addr tag)
{
    std::size_t set = setsPow2 ? static_cast<std::size_t>(tag & setMask)
                               : static_cast<std::size_t>(tag % sets);
    return &table[set * ways];
}

const Cache::Way *
Cache::setBase(Addr tag) const
{
    std::size_t set = setsPow2 ? static_cast<std::size_t>(tag & setMask)
                               : static_cast<std::size_t>(tag % sets);
    return &table[set * ways];
}

Cache::Way *
Cache::selectVictim(Way *base)
{
    // Invalid ways win regardless of policy.
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!base[w].valid)
            return &base[w];
    }
    switch (policy) {
      case ReplacementPolicy::Lru: {
        Way *victim = base;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        return victim;
      }
      case ReplacementPolicy::Fifo: {
        Way *victim = base;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (base[w].fillTime < victim->fillTime)
                victim = &base[w];
        }
        return victim;
      }
      case ReplacementPolicy::PseudoRandom: {
        victimSeed ^= victimSeed << 13;
        victimSeed ^= victimSeed >> 7;
        victimSeed ^= victimSeed << 17;
        return &base[victimSeed % ways];
      }
    }
    panic("unknown replacement policy");
}

void
Cache::insert(Addr tag, Way *base)
{
    Way *victim = selectVictim(base);
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->fillTime = useClock;
}

bool
Cache::access(Addr line_addr)
{
    ++numAccesses;
    ++useClock;
    Addr tag = tagOf(line_addr);
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++numHits;
            return true;
        }
    }
    insert(tag, base);
    return false;
}

bool
Cache::lookup(Addr line_addr)
{
    ++numAccesses;
    ++useClock;
    Addr tag = tagOf(line_addr);
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++numHits;
            return true;
        }
    }
    return false;
}

bool
Cache::probe(Addr line_addr) const
{
    Addr tag = tagOf(line_addr);
    const Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr line_addr)
{
    ++useClock;
    Addr tag = tagOf(line_addr);
    Way *base = setBase(tag);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            return;
        }
    }
    insert(tag, base);
}

void
Cache::reset()
{
    for (auto &way : table)
        way = Way{};
    useClock = 0;
    numAccesses = 0;
    numHits = 0;
    victimSeed = 0x2545f4914f6cdd1dULL;
}

double
Cache::hitRate() const
{
    return numAccesses == 0
        ? 0.0
        : static_cast<double>(numHits) / static_cast<double>(numAccesses);
}

} // namespace gpumech
