#include "mem/mrc.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpumech
{

namespace
{

/** splitmix64: the sampling hash (fixed, platform-independent). */
std::uint64_t
mixLine(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
ReuseDistanceTracker::bitSet(std::size_t pos)
{
    for (std::size_t i = pos + 1; i <= tree.size(); i += i & (~i + 1))
        ++tree[i - 1];
    ++live;
}

void
ReuseDistanceTracker::bitClear(std::size_t pos)
{
    for (std::size_t i = pos + 1; i <= tree.size(); i += i & (~i + 1))
        --tree[i - 1];
    --live;
}

std::uint64_t
ReuseDistanceTracker::bitPrefix(std::size_t pos) const
{
    std::uint64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += tree[i - 1];
    return sum;
}

std::uint32_t
ReuseDistanceTracker::access(Addr line)
{
    const std::uint64_t stamp = clock++;
    if (stamp >= tree.size()) {
        // Double the (power-of-two) Fenwick capacity. Every new node's
        // range lies inside the new half except the root, whose range
        // (0, 2n] covers every currently-set bit.
        tree.resize(tree.empty() ? 64 : tree.size() * 2, 0);
        tree.back() = static_cast<std::uint32_t>(live);
    }

    auto [it, cold] = last.try_emplace(line, stamp);
    std::uint32_t distance = mrcColdDistance;
    if (!cold) {
        const std::uint64_t prev = it->second;
        // Distinct lines since the previous access: every set bit is
        // some line's current last access, so the count of set bits
        // strictly after prev is exactly the intervening-line count.
        std::uint64_t between = live - bitPrefix(prev);
        distance = between >= mrcColdDistance
                       ? mrcColdDistance - 1
                       : static_cast<std::uint32_t>(between);
        bitClear(prev);
        it->second = stamp;
    }
    bitSet(stamp);
    return distance;
}

ShardsSampler::ShardsSampler(double rate) : samplingRate(rate)
{
    if (!(rate > 0.0) || rate > 1.0)
        panic(msg("SHARDS sampling rate must be in (0, 1], got ", rate));
    obsWeight = 1.0 / rate;
    if (rate >= 1.0) {
        threshold = std::numeric_limits<std::uint64_t>::max();
    } else {
        threshold = static_cast<std::uint64_t>(
            rate * 18446744073709551616.0 /* 2^64 */);
    }
}

bool
ShardsSampler::sampled(Addr line) const
{
    if (samplingRate >= 1.0)
        return true;
    return mixLine(line) < threshold;
}

std::uint32_t
ShardsSampler::unscale(std::uint32_t sampled_distance) const
{
    if (sampled_distance == mrcColdDistance || samplingRate >= 1.0)
        return sampled_distance;
    double scaled = static_cast<double>(sampled_distance) * obsWeight;
    if (scaled >= static_cast<double>(mrcColdDistance))
        return mrcColdDistance - 1;
    return static_cast<std::uint32_t>(scaled + 0.5);
}

double
assocHitProbability(std::uint32_t distance, std::uint32_t sets,
                    std::uint32_t ways)
{
    if (distance == mrcColdDistance)
        return 0.0;
    if (sets <= 1)
        return distance < ways ? 1.0 : 0.0;
    // Balanced modulo mapping: own set holds floor(d/sets) of the d
    // intervening distinct lines, resident iff that is <= ways - 1.
    return distance < static_cast<std::uint64_t>(sets) * ways ? 1.0
                                                              : 0.0;
}

ReusePairHist
MrcProfile::aggregateHist() const
{
    ReusePairHist agg;
    for (const MrcPcProfile &pc : pcs) {
        for (const auto &[key, w] : pc.reqHist)
            agg[key] += w;
    }
    return agg;
}

double
MrcProfile::l1MissRatio(std::uint32_t sets, std::uint32_t ways) const
{
    double total = 0.0, miss = 0.0;
    for (const MrcPcProfile &pc : pcs) {
        for (const auto &[key, w] : pc.reqHist) {
            total += w;
            miss += w * (1.0 - assocHitProbability(reusePairD1(key),
                                                   sets, ways));
        }
    }
    return total == 0.0 ? 0.0 : miss / total;
}

double
MrcProfile::l2MissRatio(std::uint32_t l1_sets, std::uint32_t l1_ways,
                        std::uint32_t sets, std::uint32_t ways) const
{
    double total = 0.0, miss = 0.0;
    for (const MrcPcProfile &pc : pcs) {
        for (const auto &[key, w] : pc.reqHist) {
            total += w;
            double l1_miss = 1.0 - assocHitProbability(
                                       reusePairD1(key), l1_sets,
                                       l1_ways);
            double l2_miss = 1.0 - assocHitProbability(
                                       reusePairDg(key), sets, ways);
            miss += w * l1_miss * l2_miss;
        }
    }
    return total == 0.0 ? 0.0 : miss / total;
}

} // namespace gpumech
