#include "mem/dram.hh"

#include <algorithm>

namespace gpumech
{

DramChannel::DramChannel(const HardwareConfig &config)
    : serviceTime(config.dramServiceCycles()),
      accessLatency(config.dramAccessLatency)
{
}

DramTiming
DramChannel::enqueue(double arrival_cycle)
{
    DramTiming t;
    t.serviceStart = std::max(arrival_cycle, nextFree);
    t.queueDelay = t.serviceStart - arrival_cycle;
    nextFree = t.serviceStart + serviceTime;
    t.fillCycle = t.serviceStart + serviceTime + accessLatency;
    totalQueueDelay += t.queueDelay;
    return t;
}

DramTiming
DramChannel::read(double arrival_cycle)
{
    ++numReads;
    return enqueue(arrival_cycle);
}

DramTiming
DramChannel::write(double arrival_cycle)
{
    ++numWrites;
    return enqueue(arrival_cycle);
}

double
DramChannel::avgQueueDelay() const
{
    std::uint64_t total = numReads + numWrites;
    return total == 0 ? 0.0 : totalQueueDelay / static_cast<double>(total);
}

void
DramChannel::reset()
{
    nextFree = 0.0;
    numReads = 0;
    numWrites = 0;
    totalQueueDelay = 0.0;
}

} // namespace gpumech
