#include "mem/mshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpumech
{

MshrFile::MshrFile(std::uint32_t num_entries)
    : capacity(num_entries)
{
    if (num_entries == 0)
        panic("MSHR file needs at least one entry");
}

std::uint32_t
MshrFile::freshMissCount(const std::vector<Addr> &lines) const
{
    std::uint32_t n = 0;
    for (Addr line : lines) {
        if (!outstanding(line))
            ++n;
    }
    return n;
}

void
MshrFile::allocate(Addr line_addr, MshrWaiter waiter)
{
    if (outstanding(line_addr))
        panic("MSHR allocate on an already-outstanding line");
    if (full())
        panic("MSHR allocate on a full file");
    entries[line_addr].push_back(waiter);
    ++numAllocs;
    peak = std::max(peak, static_cast<std::uint32_t>(entries.size()));
}

void
MshrFile::merge(Addr line_addr, MshrWaiter waiter)
{
    auto it = entries.find(line_addr);
    if (it == entries.end())
        panic("MSHR merge on a line with no entry");
    it->second.push_back(waiter);
    ++numMerges;
}

std::vector<MshrWaiter>
MshrFile::retire(Addr line_addr)
{
    auto it = entries.find(line_addr);
    if (it == entries.end())
        panic("MSHR retire on a line with no entry");
    std::vector<MshrWaiter> waiters = std::move(it->second);
    entries.erase(it);
    return waiters;
}

} // namespace gpumech
