/**
 * @file
 * Miss-ratio-curve (MRC) evaluation layer: reuse-distance tracking
 * with SHARDS-style spatial sampling, joint per-PC reuse-distance
 * histograms, and the way-counted associativity conversion that turns
 * an LRU stack distance into a hit probability for an arbitrary
 * set-associative geometry.
 *
 * The collector pass (collector/mrc_collector.hh) walks the trace
 * ONCE and records, for every sampled load line request, the pair
 *
 *   (d1, dg) = (per-core LRU stack distance,
 *               merged-stream LRU stack distance)
 *
 * in distinct-lines units. Everything geometry-dependent happens at
 * evaluation time: a cache of S sets x A ways hits a request of
 * distance d with probability assocHitProbability(d, S, A), which is
 * exact (d < A) for a fully-associative LRU cache and the balanced
 * modulo-mapping model (d < S*A) otherwise. One profile therefore
 * prices every cache size/associativity in a sweep without re-running
 * the functional hierarchy.
 *
 * Exactness contract (see DESIGN.md section 14): with sampling rate
 * 1.0, LRU replacement, and fully-associative geometry the derived L1
 * classification is bit-exact (each core's L1 sees its unfiltered
 * stream). The L2 side measures distances on the merged access stream
 * rather than the L1-miss-filtered stream the real L2 observes (the
 * "union stream" approximation), so it is exact only when L1 filters
 * nothing (and in the common cold-miss-dominated regimes); every other
 * combination is flagged, not silently absorbed.
 */

#ifndef GPUMECH_MEM_MRC_HH
#define GPUMECH_MEM_MRC_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/coalescer.hh"

namespace gpumech
{

/** Reuse distance of a line never seen before (cold access). */
inline constexpr std::uint32_t mrcColdDistance =
    std::numeric_limits<std::uint32_t>::max();

/**
 * LRU stack-distance tracker over one access stream.
 *
 * Classic two-structure design: a hash map from line to the stamp of
 * its previous access, plus a Fenwick tree over stamps holding one
 * set bit per currently-live "last access". A new access's distance is
 * the number of set bits after its previous stamp — the count of
 * distinct lines touched since — at O(log n) per access. Stamps are
 * assigned sequentially, so the tree only ever grows at the end.
 */
class ReuseDistanceTracker
{
  public:
    /**
     * Record one access; returns the LRU stack distance in distinct
     * lines (0 = immediate re-reference), or mrcColdDistance for a
     * line never seen before.
     */
    std::uint32_t access(Addr line);

    /** Distinct lines currently tracked. */
    std::size_t uniqueLines() const { return last.size(); }

    /** Accesses recorded so far. */
    std::uint64_t accesses() const { return clock; }

  private:
    void bitSet(std::size_t pos);
    void bitClear(std::size_t pos);
    /** Set bits in [0, pos] (inclusive prefix). */
    std::uint64_t bitPrefix(std::size_t pos) const;

    std::unordered_map<Addr, std::uint64_t> last; //!< line -> stamp
    std::vector<std::uint32_t> tree; //!< Fenwick tree, 1-based
    std::uint64_t clock = 0;         //!< next stamp
    std::uint64_t live = 0;          //!< set bits in the tree
};

/**
 * SHARDS fixed-rate spatial sampler: a line is sampled iff a fixed
 * hash of its address falls below rate * 2^64, so every tracker and
 * every PC agree on the sampled line subset. Rate 1.0 samples
 * everything (the exact mode).
 */
class ShardsSampler
{
  public:
    explicit ShardsSampler(double rate);

    bool sampled(Addr line) const;

    /** Configured sampling rate in (0, 1]. */
    double rate() const { return samplingRate; }

    /** Histogram weight of one sampled observation (1 / rate). */
    double weight() const { return obsWeight; }

    /** Scale a sampled-stream distance back to the full stream. */
    std::uint32_t unscale(std::uint32_t sampled_distance) const;

  private:
    double samplingRate;
    double obsWeight;
    std::uint64_t threshold; //!< sampled iff hash < threshold
};

/**
 * Hit probability of an LRU cache of @p sets x @p ways for a request
 * of stack distance @p distance (distinct lines).
 *
 * Fully associative (sets == 1): exactly distance < ways. Otherwise
 * the way-counted balanced-mapping conversion: the functional
 * hierarchy indexes sets by line modulo, under which the d distinct
 * intervening lines of the (locally dense) address streams this
 * simulator produces disperse evenly — each set receives ~d/sets of
 * them — so the request hits iff floor(d/sets) <= ways - 1, i.e.
 * d < sets * ways. (A Binomial(d, 1/sets) tail models *random* set
 * mapping instead; measured against the functional simulation on the
 * micro suite it is strictly worse here — 5.1% worst-case CPI drift at
 * capacity boundaries vs 1.1% for the balanced rule — because modulo
 * indexing of regular streams has no conflict spread to model.)
 *
 * Cold requests (mrcColdDistance) never hit.
 */
double assocHitProbability(std::uint32_t distance, std::uint32_t sets,
                           std::uint32_t ways);

/**
 * Weighted joint histogram over (d1, dg) reuse-distance pairs.
 * Key packs d1 in the high and dg in the low 32 bits; values are
 * SHARDS weights (integer counts at rate 1.0).
 */
using ReusePairHist = std::unordered_map<std::uint64_t, double>;

/** Pack a (d1, dg) pair into a ReusePairHist key. */
inline std::uint64_t
packReusePair(std::uint32_t d1, std::uint32_t dg)
{
    return (static_cast<std::uint64_t>(d1) << 32) | dg;
}

inline std::uint32_t reusePairD1(std::uint64_t key)
{
    return static_cast<std::uint32_t>(key >> 32);
}

inline std::uint32_t reusePairDg(std::uint64_t key)
{
    return static_cast<std::uint32_t>(key & 0xffffffffu);
}

/** One static instruction's reuse-distance profile. */
struct MrcPcProfile
{
    /**
     * Exact (unsampled) dynamic counts; classification alone is
     * sampled, so derived results can renormalize to true totals.
     */
    std::uint64_t loadInsts = 0;  //!< dynamic load executions
    std::uint64_t loadReqs = 0;   //!< coalesced load line requests
    std::uint64_t storeInsts = 0; //!< dynamic store executions
    std::uint64_t storeReqs = 0;  //!< coalesced store line requests

    /** Per-request (d1, dg) weights over sampled load lines. */
    ReusePairHist reqHist;

    /**
     * Per-instruction (max d1, max dg) weights over dynamic load
     * executions with at least one sampled line — the slowest-request
     * classification of the collector, in distance space.
     */
    ReusePairHist instHist;
};

/** Aggregate and per-PC miss-ratio curves from one profiling pass. */
struct MrcProfile
{
    /** Per-PC profiles, indexed by static PC. */
    std::vector<MrcPcProfile> pcs;

    double samplingRate = 1.0;
    std::uint32_t lineBytes = 0; //!< line size distances are measured in

    std::uint64_t totalLoadLines = 0;   //!< load line requests walked
    std::uint64_t sampledLoadLines = 0; //!< of which sampled

    /** Sum of every PC's request histogram (the aggregate curve). */
    ReusePairHist aggregateHist() const;

    /**
     * Aggregate L1 miss ratio of load line requests for an S x A
     * geometry (per-core distances).
     */
    double l1MissRatio(std::uint32_t sets, std::uint32_t ways) const;

    /**
     * Aggregate L2 miss ratio for an S x A geometry: fraction of load
     * line requests missing both levels, conditioned on the modeled L1
     * (@p l1_sets x @p l1_ways) via the joint histogram.
     */
    double l2MissRatio(std::uint32_t l1_sets, std::uint32_t l1_ways,
                       std::uint32_t sets, std::uint32_t ways) const;
};

} // namespace gpumech

#endif // GPUMECH_MEM_MRC_HH
