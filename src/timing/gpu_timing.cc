#include "timing/gpu_timing.hh"

#include <algorithm>
#include <cmath>

#include "common/isolation.hh"
#include "common/logging.hh"

namespace gpumech
{

double
TimingStats::cpi() const
{
    if (totalInsts == 0 || coresUsed == 0)
        return 0.0;
    double insts_per_core =
        static_cast<double>(totalInsts) / coresUsed;
    return static_cast<double>(totalCycles) / insts_per_core;
}

double
TimingStats::ipc() const
{
    return totalCycles == 0
        ? 0.0
        : static_cast<double>(totalInsts) /
              static_cast<double>(totalCycles);
}

namespace
{

double
perInstShare(std::uint64_t cycles, std::uint64_t insts)
{
    return insts == 0
        ? 0.0
        : static_cast<double>(cycles) / static_cast<double>(insts);
}

} // namespace

double
TimingStats::simdEfficiency() const
{
    if (totalInsts == 0 || warpSize == 0)
        return 0.0;
    return static_cast<double>(threadInsts) /
           (static_cast<double>(totalInsts) * warpSize);
}

double
TimingStats::memStallCpi() const
{
    return perInstShare(stallMemCycles, totalInsts);
}

double
TimingStats::computeStallCpi() const
{
    return perInstShare(stallComputeCycles, totalInsts);
}

double
TimingStats::mshrStallCpi() const
{
    return perInstShare(stallMshrCycles, totalInsts);
}

double
TimingStats::sfuStallCpi() const
{
    return perInstShare(stallSfuCycles, totalInsts);
}

GpuTiming::GpuTiming(const KernelTrace &kernel,
                     const HardwareConfig &config, SchedulingPolicy policy)
    : kernel(kernel), config(config), policy(policy), hierarchy(config),
      dram(config)
{
    cores.reserve(config.numCores);
    for (std::uint32_t c = 0; c < config.numCores; ++c)
        cores.emplace_back(c, config.numMshrs);

    for (WarpView warp : kernel.warps()) {
        auto core_id = kernel.coreOf(warp, config);
        WarpContext ctx;
        ctx.trace = warp;
        ctx.doneCycle.assign(warp.numInsts(), cycleUnknown);
        ctx.pendingFills.assign(warp.numInsts(), 0);
        ctx.fillHighWater.assign(warp.numInsts(), 0);
        cores[core_id].warps.push_back(std::move(ctx));
    }
}

bool
GpuTiming::canIssue(CoreState &core, std::uint32_t slot,
                    std::uint64_t cycle)
{
    WarpContext &warp = core.warps[slot];
    if (warp.finishedIssuing())
        return false;
    if (warp.numWaiting > 0)
        return false;
    if (warp.readyCycle > cycle)
        return false;

    Opcode op = warp.nextOp();
    if (op == Opcode::Sfu)
        return cycle >= core.sfuBusyUntil;
    if (op != Opcode::GlobalLoad)
        return true;

    // Loads dispatch their line requests in order, in waves when the
    // MSHR file runs dry (hardware replay). The warp can be scheduled
    // when its first pending line can make progress: it merges, hits
    // L1, or a free MSHR entry exists. Skip the probe when nothing
    // was freed since the last failed attempt.
    if (warp.blockedOnMshr &&
        warp.mshrBlockEpoch == core.mshrFreeEpoch) {
        return false;
    }

    Addr line = warp.nextLines()[warp.lineCursor];
    if (core.mshrs.outstanding(line) ||
        hierarchy.l1(core.id()).probe(line) || !core.mshrs.full()) {
        warp.blockedOnMshr = false;
        return true;
    }
    warp.blockedOnMshr = true;
    warp.mshrBlockEpoch = core.mshrFreeEpoch;
    return false;
}

void
GpuTiming::doIssue(CoreState &core, std::uint32_t slot,
                   std::uint64_t cycle)
{
    WarpContext &warp = core.warps[slot];
    std::uint64_t idx = warp.nextIdx;
    const Opcode op = warp.nextOp();
    const std::uint32_t active = warp.trace.activeThreads(warp.nextIdx);
    const LineSpan lines = warp.nextLines();

    if (op == Opcode::GlobalLoad) {
        std::uint64_t hit_done = cycle + config.l1HitLatency;
        if (warp.lineCursor == 0) {
            warp.fillHighWater[idx] = hit_done;
        } else {
            // Replay wave: hits in this wave complete later than the
            // first wave's.
            warp.fillHighWater[idx] =
                std::max(warp.fillHighWater[idx], hit_done);
        }

        std::uint32_t added = 0;
        std::uint32_t i = warp.lineCursor;
        for (; i < lines.size(); ++i) {
            Addr line = lines[i];
            if (core.mshrs.outstanding(line)) {
                core.mshrs.merge(line, MshrWaiter{slot, idx});
                ++added;
                continue;
            }
            if (hierarchy.l1(core.id()).lookup(line)) {
                continue; // L1 hit: covered by fillHighWater
            }
            if (core.mshrs.full())
                break; // continue in a later wave
            // Fresh L1 miss: allocate an entry and send to L2/DRAM.
            // The L1 tag is installed when the fill returns
            // (handleFill), so the issue probe and this loop agree.
            core.mshrs.allocate(line, MshrWaiter{slot, idx});
            ++added;
            std::uint64_t fill;
            if (hierarchy.l2().access(line)) {
                fill = cycle + config.l2HitLatency;
            } else {
                DramTiming t = dram.read(
                    static_cast<double>(cycle) + config.l2HitLatency);
                fill = static_cast<std::uint64_t>(
                    std::ceil(t.fillCycle));
            }
            events.push(FillEvent{fill, core.id(), line});
        }
        warp.pendingFills[idx] = static_cast<std::uint8_t>(
            warp.pendingFills[idx] + added);

        if (i < lines.size()) {
            // MSHRs ran dry mid-instruction: hold the warp on this
            // instruction and resume when entries free up.
            bool first_wave = warp.lineCursor == 0;
            if (first_wave)
                core.threadInstsIssued += active;
            warp.lineCursor = i;
            warp.blockedOnMshr = true;
            warp.mshrBlockEpoch = core.mshrFreeEpoch;
            warp.readyCycle = cycle + 1;
            core.issued(slot, cycle, first_wave);
            return;
        }

        bool first_wave = warp.lineCursor == 0;
        if (first_wave) {
            // Replay waves re-issue the same instruction; count its
            // active lanes once.
            core.threadInstsIssued += active;
        }
        warp.lineCursor = 0;
        if (warp.pendingFills[idx] == 0) {
            complete(core, slot, idx, warp.fillHighWater[idx]);
        } else {
            ++outstandingLoads;
        }
        ++warp.nextIdx;
        updateReadiness(warp, cycle);
        core.issued(slot, cycle, first_wave);
        return;
    }

    if (op == Opcode::GlobalStore) {
        // Write-through, no-allocate: each coalesced request consumes
        // DRAM bandwidth; the warp does not wait.
        for (std::size_t i = 0; i < lines.size(); ++i) {
            dram.write(static_cast<double>(cycle) +
                       config.l2HitLatency);
        }
        complete(core, slot, idx, cycle + 1);
    } else {
        if (op == Opcode::Sfu) {
            // Occupy the SFU for warpSize / sfuLanes cycles.
            core.sfuBusyUntil = cycle + config.sfuOccupancyCycles();
        }
        complete(core, slot, idx,
                 cycle + fixedLatency(op, config.latency));
    }

    core.threadInstsIssued += active;
    ++warp.nextIdx;
    updateReadiness(warp, cycle);
    core.issued(slot, cycle);
}

void
GpuTiming::updateReadiness(WarpContext &warp, std::uint64_t cycle)
{
    warp.numWaiting = 0;
    if (warp.finishedIssuing())
        return;
    std::uint64_t ready = cycle + 1;
    for (std::int32_t dep : warp.trace.deps(warp.nextIdx)) {
        if (dep == noDep)
            continue;
        std::uint64_t done = warp.doneCycle[static_cast<std::size_t>(dep)];
        if (done == cycleUnknown) {
            warp.waitingOn[warp.numWaiting++] = dep;
        } else {
            ready = std::max(ready, done + 1);
        }
    }
    warp.readyCycle = ready;
}

void
GpuTiming::complete(CoreState &core, std::uint32_t slot,
                    std::uint64_t inst_idx, std::uint64_t done)
{
    WarpContext &warp = core.warps[slot];
    warp.doneCycle[inst_idx] = done;
    maxDone = std::max(maxDone, done);

    // Wake the warp if its next instruction was waiting on this one.
    if (warp.numWaiting > 0) {
        std::uint32_t remaining = 0;
        for (std::uint32_t i = 0; i < warp.numWaiting; ++i) {
            if (warp.waitingOn[i] ==
                static_cast<std::int64_t>(inst_idx)) {
                warp.readyCycle = std::max(warp.readyCycle, done + 1);
            } else {
                warp.waitingOn[remaining++] = warp.waitingOn[i];
            }
        }
        warp.numWaiting = remaining;
    }
}

void
GpuTiming::handleFill(const FillEvent &event)
{
    CoreState &core = cores[event.core];
    hierarchy.l1(core.id()).fill(event.line);
    auto waiters = core.mshrs.retire(event.line);
    ++core.mshrFreeEpoch;
    // A freed MSHR entry or a completed load can unblock the core.
    core.sleepUntil = std::min(core.sleepUntil, event.cycle + 1);
    for (const auto &w : waiters) {
        WarpContext &warp = core.warps[w.warpSlot];
        warp.fillHighWater[w.instIdx] =
            std::max(warp.fillHighWater[w.instIdx], event.cycle);
        if (--warp.pendingFills[w.instIdx] == 0) {
            // A load still mid-dispatch (instIdx == nextIdx) is not
            // complete; its final dispatch wave resolves it.
            if (w.instIdx < warp.nextIdx) {
                --outstandingLoads;
                complete(core, w.warpSlot, w.instIdx,
                         warp.fillHighWater[w.instIdx]);
            }
        }
    }
}

void
GpuTiming::chargeStall(CoreState &core, std::uint64_t cycle,
                       std::uint64_t cycles)
{
    bool any_mshr = false;
    bool any_mem = false;
    bool any_sfu = false;
    for (const auto &warp : core.warps) {
        if (warp.finishedIssuing())
            continue;
        if (warp.blockedOnMshr) {
            any_mshr = true;
            break; // highest priority
        }
        if (warp.numWaiting > 0) {
            any_mem = true;
            continue;
        }
        if (warp.readyCycle <= cycle &&
            warp.nextOp() == Opcode::Sfu &&
            core.sfuBusyUntil > cycle) {
            any_sfu = true;
        }
    }
    if (any_mshr)
        core.stallMshrCycles += cycles;
    else if (any_sfu)
        core.stallSfuCycles += cycles;
    else if (any_mem)
        core.stallMemCycles += cycles;
    else
        core.stallComputeCycles += cycles;
}

std::uint64_t
GpuTiming::nextInterestingCycle(std::uint64_t cycle) const
{
    std::uint64_t next = cycleUnknown;
    if (!events.empty())
        next = events.top().cycle;
    for (const auto &core : cores) {
        if (core.allIssued())
            continue;
        next = std::min(next, std::max(core.sleepUntil, cycle + 1));
    }
    return next;
}

TimingStats
GpuTiming::run()
{
    std::uint64_t cycle = 0;
    auto can_issue_total = [this]() {
        std::uint64_t remaining = 0;
        for (const auto &core : cores) {
            for (const auto &warp : core.warps)
                remaining += warp.trace.numInsts() - warp.nextIdx;
        }
        return remaining;
    };

    std::vector<char> core_issued(cores.size(), 0);
    std::uint64_t iterations = 0;
    while (true) {
        if (iterations++ % deadlineCheckStride == 0)
            deadlineCheckpoint();
        while (!events.empty() && events.top().cycle <= cycle) {
            FillEvent e = events.top();
            events.pop();
            handleFill(e);
        }

        bool all_issued = true;
        bool any_issued = false;
        for (std::size_t c = 0; c < cores.size(); ++c) {
            CoreState &core = cores[c];
            core_issued[c] = 0;
            if (core.allIssued())
                continue;
            all_issued = false;
            if (core.sleepUntil > cycle)
                continue;
            auto pred = [&](std::uint32_t slot) {
                return canIssue(core, slot, cycle);
            };
            // Issue up to issueWidth warp-instructions per cycle
            // (Table I uses width 1; wider configs are a supported
            // design-space axis).
            std::uint32_t issued_n = 0;
            while (issued_n < config.issueWidth) {
                std::int32_t slot = core.pick(policy, cycle, pred);
                if (slot < 0)
                    break;
                doIssue(core, static_cast<std::uint32_t>(slot), cycle);
                ++issued_n;
            }
            if (issued_n > 0) {
                core.sleepUntil = cycle + 1;
                core_issued[c] = 1;
                any_issued = true;
            } else {
                // Nothing issuable: sleep until the earliest resolved
                // readiness; fills reset this via handleFill.
                std::uint64_t next = cycleUnknown;
                for (const auto &warp : core.warps) {
                    if (warp.finishedIssuing() || warp.numWaiting > 0 ||
                        warp.blockedOnMshr) {
                        continue;
                    }
                    std::uint64_t ready = warp.readyCycle;
                    if (warp.nextOp() == Opcode::Sfu)
                        ready = std::max(ready, core.sfuBusyUntil);
                    next = std::min(next, ready);
                }
                core.sleepUntil = next;
            }
        }

        if (all_issued && events.empty() && outstandingLoads == 0)
            break;

        // Advance time and attribute the non-issue cycles of every
        // unfinished core to its dominant blocking reason.
        std::uint64_t next_cycle;
        if (any_issued) {
            next_cycle = cycle + 1;
        } else {
            std::uint64_t next = nextInterestingCycle(cycle);
            if (next == cycleUnknown) {
                panic(msg("timing simulator deadlock at cycle ", cycle,
                          " with ", can_issue_total(),
                          " instructions remaining"));
            }
            next_cycle = std::max(cycle + 1, next);
        }
        for (std::size_t c = 0; c < cores.size(); ++c) {
            if (!core_issued[c] && !cores[c].allIssued())
                chargeStall(cores[c], cycle, next_cycle - cycle);
        }
        cycle = next_cycle;
    }

    TimingStats stats;
    stats.totalCycles = maxDone;
    stats.warpSize = config.warpSize;
    for (const auto &core : cores) {
        stats.totalInsts += core.instsIssued;
        stats.threadInsts += core.threadInstsIssued;
        if (!core.warps.empty())
            ++stats.coresUsed;
        stats.mshrPeak = std::max(stats.mshrPeak,
                                  core.mshrs.peakOccupancy());
        stats.mshrAllocs += core.mshrs.allocations();
        stats.mshrMerges += core.mshrs.merges();
        stats.stallMemCycles += core.stallMemCycles;
        stats.stallComputeCycles += core.stallComputeCycles;
        stats.stallMshrCycles += core.stallMshrCycles;
        stats.stallSfuCycles += core.stallSfuCycles;
    }
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        stats.l1Accesses += hierarchy.l1(c).accesses();
        stats.l1Hits += hierarchy.l1(c).hits();
    }
    stats.l2Accesses = hierarchy.l2().accesses();
    stats.l2Hits = hierarchy.l2().hits();
    stats.dramReads = dram.reads();
    stats.dramWrites = dram.writes();
    stats.avgDramQueueDelay = dram.avgQueueDelay();
    return stats;
}

} // namespace gpumech
