/**
 * @file
 * Per-core state and warp scheduling for the timing simulator.
 *
 * Implements the two scheduling policies the paper models
 * (Section IV-A): round-robin (RR) issues one instruction per warp in
 * turn; greedy-then-oldest (GTO) keeps issuing from the current warp
 * until it stalls, then switches to the oldest ready warp.
 */

#ifndef GPUMECH_TIMING_CORE_STATE_HH
#define GPUMECH_TIMING_CORE_STATE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "mem/mshr.hh"
#include "timing/warp_context.hh"

namespace gpumech
{

/** All per-core mutable state. */
class CoreState
{
  public:
    CoreState(std::uint32_t core_id, std::uint32_t num_mshrs)
        : mshrs(num_mshrs), coreId(core_id)
    {}

    /** Warps resident on this core (index = warp slot). */
    std::vector<WarpContext> warps;

    /** L1 MSHR file. */
    MshrFile mshrs;

    /**
     * Bumped every time an MSHR entry is retired; lets blocked warps
     * avoid re-probing until an entry could actually be free.
     */
    std::uint64_t mshrFreeEpoch = 1;

    /**
     * Earliest cycle this core could possibly issue again; the main
     * loop skips scheduling attempts before it. Reset by fills and by
     * successful issues.
     */
    std::uint64_t sleepUntil = 0;

    /**
     * Cycle until which the special function unit is occupied; an
     * SFU warp-instruction holds it for sfuOccupancyCycles().
     */
    std::uint64_t sfuBusyUntil = 0;

    std::uint32_t id() const { return coreId; }

    /** Slots with unfinished traces remaining. */
    bool allIssued() const;

    /**
     * Pick the warp slot to issue this cycle, or -1.
     *
     * @param policy scheduling policy
     * @param cycle current cycle
     * @param can_issue predicate: true when the slot can issue now
     *        (dependency- and resource-wise)
     */
    std::int32_t pick(SchedulingPolicy policy, std::uint64_t cycle,
                      const std::function<bool(std::uint32_t)> &can_issue);

    /**
     * Record that a slot issued (updates RR/GTO bookkeeping).
     *
     * @param count_inst false for replay waves of a partially
     *        dispatched load, which occupy an issue slot but are not
     *        a new instruction
     */
    void issued(std::uint32_t slot, std::uint64_t cycle,
                bool count_inst = true);

    /** Total instructions issued by this core. */
    std::uint64_t instsIssued = 0;

    /** Total active thread-instructions issued (SIMD efficiency). */
    std::uint64_t threadInstsIssued = 0;

    // --- measured stall accounting (cycles the core did not issue,
    //     classified by the blocking reason; see
    //     GpuTiming::classifyStall) ---
    std::uint64_t stallMemCycles = 0;     //!< waiting on loads
    std::uint64_t stallComputeCycles = 0; //!< waiting on fixed latency
    std::uint64_t stallMshrCycles = 0;    //!< blocked on MSHR entries
    std::uint64_t stallSfuCycles = 0;     //!< blocked on the SFU

  private:
    std::uint32_t coreId;

    /** RR pointer: last slot that issued. */
    std::int32_t lastIssuedSlot = -1;

    /** GTO: current greedy slot (-1 before first issue). */
    std::int32_t greedySlot = -1;
};

} // namespace gpumech

#endif // GPUMECH_TIMING_CORE_STATE_HH
