/**
 * @file
 * Per-warp execution state in the timing simulator.
 */

#ifndef GPUMECH_TIMING_WARP_CONTEXT_HH
#define GPUMECH_TIMING_WARP_CONTEXT_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "trace/kernel_trace.hh"

namespace gpumech
{

/** doneCycle value for an instruction whose completion is not known. */
constexpr std::uint64_t cycleUnknown =
    std::numeric_limits<std::uint64_t>::max();

/**
 * Execution state of one warp resident on a core.
 *
 * The warp issues its trace in order. readyCycle is the earliest cycle
 * the next instruction may issue given its already-resolved
 * dependencies; unresolved dependencies (outstanding loads) are listed
 * in waitingOn and cleared as fills arrive.
 */
struct WarpContext
{
    /** View of the warp's trace window in the kernel's SoA arrays. */
    WarpView trace;

    /** Index of the next instruction to issue. */
    std::uint64_t nextIdx = 0;

    /** Completion cycle of each issued instruction. */
    std::vector<std::uint64_t> doneCycle;

    /** Outstanding fill count per issued load (0 when complete). */
    std::vector<std::uint8_t> pendingFills;

    /** Latest fill cycle observed so far per in-flight load. */
    std::vector<std::uint64_t> fillHighWater;

    /**
     * Earliest issue cycle of the next instruction from resolved
     * dependencies (issue-after-done+1 rule, Eq. 4 semantics).
     */
    std::uint64_t readyCycle = 0;

    /** Trace indices of unresolved (in-flight) dependencies. */
    std::array<std::int64_t, 3> waitingOn = {-1, -1, -1};
    std::uint32_t numWaiting = 0;

    /**
     * MSHR-free epoch at which this warp last failed to issue a
     * memory instruction; it is not re-probed until the epoch moves.
     */
    std::uint64_t mshrBlockEpoch = 0;
    bool blockedOnMshr = false;

    /**
     * Dispatch progress of the current (partially issued) load: index
     * of the first line request not yet sent to the memory system.
     * Divergent loads whose fresh misses exceed the free MSHRs are
     * replayed in waves, like real hardware.
     */
    std::uint32_t lineCursor = 0;

    /** Cycle the warp last issued (used by GTO age bookkeeping). */
    std::uint64_t lastIssueCycle = 0;

    bool
    finishedIssuing() const
    {
        return trace.valid() && nextIdx >= trace.numInsts();
    }

    /** Opcode of the next instruction to issue. */
    Opcode nextOp() const { return trace.op(nextIdx); }

    /** Line requests of the next instruction to issue. */
    LineSpan nextLines() const { return trace.lines(nextIdx); }
};

} // namespace gpumech

#endif // GPUMECH_TIMING_WARP_CONTEXT_HH
