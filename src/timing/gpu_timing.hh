/**
 * @file
 * Detailed cycle-level GPU timing simulator — the validation oracle.
 *
 * Plays the role of Macsim in the paper's evaluation (Section VI-A):
 * in-order SIMT cores with issue width 1 (Table I), RR or GTO warp
 * scheduling, per-core L1s with a finite MSHR file, a shared L2, and a
 * bandwidth-limited DRAM channel. Loads stall dependents until their
 * slowest coalesced request fills; stores bypass the MSHRs and stream
 * to DRAM, consuming bandwidth without stalling the issuing warp.
 */

#ifndef GPUMECH_TIMING_GPU_TIMING_HH
#define GPUMECH_TIMING_GPU_TIMING_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/config.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "timing/core_state.hh"
#include "trace/kernel_trace.hh"

namespace gpumech
{

/** Results of one timing simulation. */
struct TimingStats
{
    std::uint64_t totalCycles = 0; //!< kernel execution cycles
    std::uint64_t totalInsts = 0;  //!< warp-instructions issued
    std::uint64_t threadInsts = 0; //!< thread-instructions (active lanes)
    std::uint32_t warpSize = 32;   //!< lanes per warp (for efficiency)
    std::uint32_t coresUsed = 0;   //!< cores with at least one warp

    // memory system
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    double avgDramQueueDelay = 0.0; //!< mean cycles a request queued
    std::uint32_t mshrPeak = 0;     //!< peak MSHR occupancy (any core)
    std::uint64_t mshrAllocs = 0;
    std::uint64_t mshrMerges = 0;

    // Measured stall breakdown: cycles cores spent unable to issue,
    // classified by the dominant blocking reason (summed over cores).
    // Together with the issue cycles (totalInsts) these account for
    // every core-cycle up to the drain tail.
    std::uint64_t stallMemCycles = 0;     //!< waiting on loads
    std::uint64_t stallComputeCycles = 0; //!< fixed-latency deps
    std::uint64_t stallMshrCycles = 0;    //!< MSHR file exhausted
    std::uint64_t stallSfuCycles = 0;     //!< SFU occupied

    /** Measured per-instruction breakdown (per-core CPI shares). */
    double memStallCpi() const;
    double computeStallCpi() const;
    double mshrStallCpi() const;
    double sfuStallCpi() const;

    /**
     * Average per-core CPI: cycles divided by the average number of
     * instructions a core issued. This is the quantity GPUMech
     * predicts (its multi-warp model describes one core).
     */
    double cpi() const;

    /** Aggregate IPC across the whole GPU. */
    double ipc() const;

    /**
     * SIMD lane utilization: active thread-instructions over
     * warp-instructions * warpSize. 1.0 means no intra-warp
     * control divergence.
     */
    double simdEfficiency() const;
};

/** One run of the detailed simulator over a kernel trace. */
class GpuTiming
{
  public:
    /**
     * @param kernel the trace to execute (must outlive the simulator)
     * @param config machine description (Table I or a sweep point)
     * @param policy warp scheduling policy
     */
    GpuTiming(const KernelTrace &kernel, const HardwareConfig &config,
              SchedulingPolicy policy);

    /** Execute to completion and return the statistics. */
    TimingStats run();

  private:
    struct FillEvent
    {
        std::uint64_t cycle;
        std::uint32_t core;
        Addr line;

        bool
        operator>(const FillEvent &other) const
        {
            return cycle > other.cycle;
        }
    };

    /** Dependency/resource check used by the scheduler. */
    bool canIssue(CoreState &core, std::uint32_t slot,
                  std::uint64_t cycle);

    /** Issue the chosen instruction and schedule its completion. */
    void doIssue(CoreState &core, std::uint32_t slot,
                 std::uint64_t cycle);

    /** Apply one fill: retire MSHR entry, complete waiting loads. */
    void handleFill(const FillEvent &event);

    /** Record an instruction completion and wake its warp if waiting. */
    void complete(CoreState &core, std::uint32_t slot,
                  std::uint64_t inst_idx, std::uint64_t done);

    /** Recompute the warp's next-instruction readiness after an issue. */
    void updateReadiness(WarpContext &warp, std::uint64_t cycle);

    /** Earliest future cycle at which anything can happen, or 0. */
    std::uint64_t nextInterestingCycle(std::uint64_t cycle) const;

    /**
     * Attribute @p cycles of non-issue on a core to the dominant
     * blocking reason (MSHR exhaustion > outstanding loads > SFU >
     * fixed-latency dependencies).
     */
    void chargeStall(CoreState &core, std::uint64_t cycle,
                     std::uint64_t cycles);

    const KernelTrace &kernel;
    HardwareConfig config;
    SchedulingPolicy policy;

    FunctionalHierarchy hierarchy;
    DramChannel dram;
    std::vector<CoreState> cores;
    std::priority_queue<FillEvent, std::vector<FillEvent>,
                        std::greater<FillEvent>> events;

    std::uint64_t maxDone = 0;
    std::uint64_t outstandingLoads = 0;
};

} // namespace gpumech

#endif // GPUMECH_TIMING_GPU_TIMING_HH
