#include "timing/core_state.hh"

namespace gpumech
{

bool
CoreState::allIssued() const
{
    for (const auto &w : warps) {
        if (!w.finishedIssuing())
            return false;
    }
    return true;
}

std::int32_t
CoreState::pick(SchedulingPolicy policy, std::uint64_t cycle,
                const std::function<bool(std::uint32_t)> &can_issue)
{
    (void)cycle;
    auto num = static_cast<std::int32_t>(warps.size());
    if (num == 0)
        return -1;

    if (policy == SchedulingPolicy::RoundRobin) {
        // Scan starting after the last issuer; skipping stalled warps
        // in the same cycle models the "schedule until a warp that can
        // issue is found" behaviour of Section IV-A.
        for (std::int32_t i = 1; i <= num; ++i) {
            std::int32_t slot = (lastIssuedSlot + i) % num;
            if (can_issue(static_cast<std::uint32_t>(slot)))
                return slot;
        }
        return -1;
    }

    // Greedy-then-oldest: stay on the greedy warp while it can issue.
    if (greedySlot >= 0 && greedySlot < num &&
        can_issue(static_cast<std::uint32_t>(greedySlot))) {
        return greedySlot;
    }
    // Otherwise the oldest warp (lowest slot: all warps launch
    // together, so slot order is age order) that can issue becomes the
    // new greedy warp.
    for (std::int32_t slot = 0; slot < num; ++slot) {
        if (slot == greedySlot)
            continue;
        if (can_issue(static_cast<std::uint32_t>(slot)))
            return slot;
    }
    return -1;
}

void
CoreState::issued(std::uint32_t slot, std::uint64_t cycle,
                  bool count_inst)
{
    lastIssuedSlot = static_cast<std::int32_t>(slot);
    greedySlot = static_cast<std::int32_t>(slot);
    warps[slot].lastIssueCycle = cycle;
    if (count_inst)
        ++instsIssued;
}

} // namespace gpumech
