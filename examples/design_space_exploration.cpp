/**
 * @file
 * Design-space exploration — the use case GPUMech's speed enables
 * (Section VI-D): sweep a hardware grid (MSHR entries x DRAM
 * bandwidth) with the analytical model only, then validate the chosen
 * point with one detailed simulation.
 *
 * Profiling (input collection, per-warp interval profiles,
 * clustering) runs once; each grid point only reruns the cache
 * simulation and the representative warp's interval algorithm via
 * GpuMechProfiler::evaluateAt().
 *
 * Usage: design_space_exploration [kernel_name]
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "spmv_jds";
    const Workload &workload = workloadByName(name);
    HardwareConfig base = HardwareConfig::baseline();
    KernelTrace kernel = workload.generate(base);
    std::cout << "kernel: " << name << " — " << workload.description
              << "\n\n";

    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    GpuMechProfiler profiler(kernel, base);
    auto t1 = clock::now();

    const std::vector<std::uint32_t> mshr_grid = {16, 32, 64, 128};
    const std::vector<double> bw_grid = {96.0, 192.0, 384.0};

    Table t({"MSHRs", "BW (GB/s)", "predicted CPI", "predicted IPC"});
    double best_ipc = 0.0;
    HardwareConfig best = base;
    for (std::uint32_t mshrs : mshr_grid) {
        for (double bw : bw_grid) {
            HardwareConfig config = base;
            config.numMshrs = mshrs;
            config.dramBandwidthGBs = bw;
            GpuMechResult r = profiler.evaluateAt(
                config, SchedulingPolicy::RoundRobin);
            if (r.ipc > best_ipc) {
                best_ipc = r.ipc;
                best = config;
            }
            t.addRow({std::to_string(mshrs),
                      fmtDouble(bw, 0),
                      fmtDouble(r.cpi, 2),
                      fmtDouble(r.ipc, 3)});
        }
    }
    auto t2 = clock::now();
    t.print(std::cout);

    std::cout << "\nbest point: " << best.numMshrs << " MSHRs, "
              << best.dramBandwidthGBs << " GB/s (predicted IPC "
              << fmtDouble(best_ipc, 3) << ")\n";

    // MSHR count and DRAM bandwidth are model-time parameters only, so
    // every grid point reuses the profiling run's collector inputs.
    std::cout << "cache: evaluateAt served "
              << profiler.collectorCacheHits() << "/"
              << mshr_grid.size() * bw_grid.size()
              << " grid points from cached collector inputs\n";

    // One detailed simulation to validate the winner.
    auto t3 = clock::now();
    GpuTiming oracle(kernel, best, SchedulingPolicy::RoundRobin);
    TimingStats stats = oracle.run();
    auto t4 = clock::now();

    auto ms = [](auto a, auto b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::cout << "oracle at best point: CPI " << fmtDouble(stats.cpi(), 2)
              << " (model " << fmtDouble(1.0 / best_ipc, 2) << ")\n\n";
    std::cout << "time: profiling " << fmtDouble(ms(t0, t1), 1)
              << " ms, " << mshr_grid.size() * bw_grid.size()
              << " model evaluations " << fmtDouble(ms(t1, t2), 1)
              << " ms, one detailed simulation "
              << fmtDouble(ms(t3, t4), 1) << " ms\n";
    std::cout << "sweeping this grid with the detailed simulator "
                 "would cost ~"
              << fmtDouble(ms(t3, t4) * 12 / 1000.0, 1)
              << " s; the model explored it in "
              << fmtDouble(ms(t1, t2) / 1000.0, 2) << " s.\n";
    return 0;
}
