/**
 * @file
 * Quickstart: model one kernel with GPUMech and compare against the
 * detailed timing simulator.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [kernel_name]
 */

#include <iostream>
#include <string>

#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "srad_kernel1";

    // 1. Describe the machine (Table I defaults).
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "machine: " << config.summary() << "\n";

    // 2. Generate (or load) a kernel trace.
    const Workload &workload = workloadByName(name);
    KernelTrace kernel = workload.generate(config);
    std::cout << "kernel:  " << kernel.name() << " — "
              << workload.description << "\n"
              << "         " << kernel.numWarps() << " warps, "
              << kernel.totalInsts() << " warp-instructions\n\n";

    // 3. Run GPUMech (input collector -> interval profiles ->
    //    representative warp -> multi-warp model).
    GpuMechOptions options;
    options.policy = SchedulingPolicy::RoundRobin;
    GpuMechResult model = runGpuMech(kernel, config, options);

    std::cout << "GPUMech prediction (RR policy)\n";
    std::cout << "  representative warp: " << model.repWarpIndex
              << " (single-warp IPC " << model.repWarpPerf << ", "
              << model.repNumIntervals << " intervals)\n";
    std::cout << "  CPI multithreading:  " << model.cpiMultithreading
              << "\n";
    std::cout << "  CPI contention:      " << model.cpiContention
              << "\n";
    std::cout << "  CPI final:           " << model.cpi << "\n";
    std::cout << "  CPI stack:           " << model.stack.toLine()
              << "\n\n";

    // 4. Validate against the detailed timing simulator.
    GpuTiming oracle(kernel, config, options.policy);
    TimingStats stats = oracle.run();
    double oracle_ipc = 1.0 / stats.cpi(); // per-core IPC
    double error = std::abs(model.ipc - oracle_ipc) / oracle_ipc;
    std::cout << "detailed simulation\n";
    std::cout << "  cycles: " << stats.totalCycles << ", CPI "
              << stats.cpi() << "\n";
    std::cout << "  model error: " << error * 100.0 << "%\n";
    return 0;
}
