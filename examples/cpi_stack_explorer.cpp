/**
 * @file
 * CPI-stack explorer (the paper's Section VII application): visualize
 * a kernel's performance bottlenecks across warp counts and find the
 * scaling saturation point.
 *
 * Usage: cpi_stack_explorer [kernel_name]
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/gpumech.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

/** The dominant non-BASE category of a stack. */
StallType
bottleneck(const CpiStack &stack)
{
    StallType best = StallType::Dep;
    for (StallType t : {StallType::Dep, StallType::L1, StallType::L2,
                        StallType::Dram, StallType::Mshr,
                        StallType::Queue}) {
        if (stack[t] > stack[best])
            best = t;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "cfd_compute_flux";
    const Workload &workload = workloadByName(name);
    std::cout << "kernel: " << name << " — " << workload.description
              << "\n\n";

    const std::vector<std::uint32_t> warp_counts = {8, 16, 24, 32, 48};
    Table t({"warps", "CPI", "IPC/core", "bottleneck", "stack"});

    double best_ipc = 0.0;
    std::uint32_t best_warps = 0;
    for (std::uint32_t warps : warp_counts) {
        HardwareConfig config = HardwareConfig::baseline();
        config.warpsPerCore = warps;
        KernelTrace kernel = workload.generate(config);
        GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});

        if (r.ipc > best_ipc) {
            best_ipc = r.ipc;
            best_warps = warps;
        }
        t.addRow({std::to_string(warps), fmtDouble(r.cpi, 2),
                  fmtDouble(r.ipc, 3), toString(bottleneck(r.stack)),
                  r.stack.toLine(2)});
    }
    t.print(std::cout);

    std::cout << "\nbest configuration: " << best_warps
              << " warps/core (predicted core IPC "
              << fmtDouble(best_ipc, 3) << ")\n";
    std::cout << "\nHow to read this: growing MSHR/QUEUE categories "
                 "with warp count mean the memory system saturates — "
                 "adding warps past the saturation point buys "
                 "nothing. A dominant DEP category means more warps "
                 "(or more ILP) still helps.\n";
    return 0;
}
