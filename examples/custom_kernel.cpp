/**
 * @file
 * Writing a custom kernel against the public trace API: build a small
 * SAXPY-with-gather kernel with TraceBuilder, serialize it to the
 * text trace format, reload it, and model it with GPUMech — the full
 * workflow a user of the library follows for their own workloads.
 */

#include <iostream>
#include <sstream>

#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"
#include "workloads/patterns.hh"

using namespace gpumech;

namespace
{

/**
 * saxpy_gather: y[i] = a * x[idx[i]] + y[i]
 * One coalesced index load, one gather (divergent) load, one
 * coalesced load, an FMA, and a coalesced store per iteration.
 */
KernelTrace
buildSaxpyGather(const HardwareConfig &config)
{
    KernelTrace kernel("saxpy_gather");
    auto pc_idx = kernel.addStatic(Opcode::GlobalLoad, "idx");
    auto pc_x = kernel.addStatic(Opcode::GlobalLoad, "x_gather");
    auto pc_y = kernel.addStatic(Opcode::GlobalLoad, "y");
    auto pc_fma = kernel.addStatic(Opcode::FpAlu, "fma");
    auto pc_st = kernel.addStatic(Opcode::GlobalStore, "y_out");

    const std::uint32_t iterations = 64;
    const std::uint32_t num_warps =
        config.numCores * config.warpsPerCore;

    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Rng rng(Rng::fromString("saxpy_gather").next() + w);
        TraceBuilder b(kernel, w, w / 4, config);
        Addr idx_base = 0x100000000ULL + w * (8ULL << 20);
        Addr y_base = 0x200000000ULL + w * (8ULL << 20);

        for (std::uint32_t it = 0; it < iterations; ++it) {
            Reg idx = b.globalLoad(
                pc_idx, coalescedPattern(idx_base, config.warpSize));
            // The gather: 8-way divergent within a 16 MiB table.
            Reg x = b.globalLoad(
                pc_x,
                randomDivergentPattern(rng, 0x300000000ULL, 16 << 20,
                                       config.warpSize, 8),
                {idx});
            Reg y = b.globalLoad(
                pc_y, coalescedPattern(y_base, config.warpSize));
            Reg r = b.compute(pc_fma, {x, y});
            b.globalStore(pc_st,
                          coalescedPattern(y_base, config.warpSize),
                          {r});
            idx_base += config.l1LineBytes;
            y_base += config.l1LineBytes;
        }
        b.finish();
    }
    return kernel;
}

} // namespace

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();

    // 1. Build the kernel with the trace DSL.
    KernelTrace kernel = buildSaxpyGather(config);
    std::cout << "built " << kernel.name() << ": "
              << kernel.numWarps() << " warps, " << kernel.totalInsts()
              << " warp-instructions, "
              << kernel.warp(0).numGlobalMemRequests()
              << " memory requests per warp\n";

    // 2. Round-trip through the text trace format (what you would
    //    write to disk for reuse across configuration sweeps).
    std::string serialized = traceToString(kernel);
    KernelTrace reloaded = traceFromString(serialized);
    std::cout << "serialized trace: " << serialized.size() / 1024
              << " KiB; reloaded " << reloaded.numWarps()
              << " warps (validate="
              << (reloaded.validate() ? "ok" : "FAILED") << ")\n\n";

    // 3. Model it.
    GpuMechResult model = runGpuMech(reloaded, config, GpuMechOptions{});
    std::cout << "GPUMech: CPI " << model.cpi << " (multithreading "
              << model.cpiMultithreading << " + contention "
              << model.cpiContention << ")\n";
    std::cout << "stack: " << model.stack.toLine() << "\n";

    // 4. Validate once against the detailed simulator.
    GpuTiming oracle(reloaded, config, SchedulingPolicy::RoundRobin);
    TimingStats stats = oracle.run();
    std::cout << "oracle: CPI " << stats.cpi() << " ("
              << stats.totalCycles << " cycles)\n";
    std::cout << "error: "
              << std::abs(1.0 / model.cpi - 1.0 / stats.cpi()) /
                     (1.0 / stats.cpi()) * 100.0
              << "%\n";
    return 0;
}
