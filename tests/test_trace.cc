/**
 * @file
 * Unit tests for the trace library: ISA classification, coalescer,
 * warp/kernel trace invariants, the register-dataflow builder, and
 * serialization round-trips.
 */

#include <gtest/gtest.h>

#include "trace/coalescer.hh"
#include "trace/kernel_trace.hh"
#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 2;
    c.warpsPerCore = 4;
    return c;
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(isMemory(Opcode::GlobalLoad));
    EXPECT_TRUE(isMemory(Opcode::SharedStore));
    EXPECT_FALSE(isMemory(Opcode::FpAlu));
    EXPECT_TRUE(isGlobalMemory(Opcode::GlobalStore));
    EXPECT_FALSE(isGlobalMemory(Opcode::SharedLoad));
    EXPECT_TRUE(isLoad(Opcode::GlobalLoad));
    EXPECT_TRUE(isStore(Opcode::SharedStore));
    EXPECT_FALSE(isLoad(Opcode::GlobalStore));
}

TEST(Isa, FixedLatenciesFollowTable)
{
    LatencyTable t;
    EXPECT_EQ(fixedLatency(Opcode::FpAlu, t), t.fpAlu);
    EXPECT_EQ(fixedLatency(Opcode::IntAlu, t), t.intAlu);
    EXPECT_EQ(fixedLatency(Opcode::Sfu, t), t.sfu);
    EXPECT_EQ(fixedLatency(Opcode::SharedLoad, t), t.sharedMem);
    EXPECT_EQ(fixedLatency(Opcode::Branch, t), t.branch);
}

TEST(Isa, MnemonicRoundTrip)
{
    for (std::uint32_t i = 0; i < numOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromString(toString(op)), op);
    }
}

TEST(Coalescer, FullyCoalescedWarpIsOneLine)
{
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x1000 + t * 4);
    EXPECT_EQ(coalescedCount(addrs, 128), 1u);
}

TEST(Coalescer, StraddlingTwoLines)
{
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x1040 + t * 4); // 64B offset, 128B span
    EXPECT_EQ(coalescedCount(addrs, 128), 2u);
}

TEST(Coalescer, FullyDivergent)
{
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x1000 + static_cast<Addr>(t) * 128);
    EXPECT_EQ(coalescedCount(addrs, 128), 32u);
}

TEST(Coalescer, ReturnsSortedUniqueLineAddresses)
{
    std::vector<Addr> addrs = {0x300, 0x100, 0x180, 0x310};
    auto lines = coalesce(addrs, 128);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0x100u);
    EXPECT_EQ(lines[1], 0x180u);
    EXPECT_EQ(lines[2], 0x300u);
}

TEST(TraceBuilder, ResolvesRegisterDependencies)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::FpAlu);
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);

    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs{0x1000};
    Reg x = b.globalLoad(pc_ld, addrs);
    Reg y = b.compute(pc_add, {x});
    b.globalStore(pc_st, addrs, {y});
    b.finish();

    WarpView warp = kernel.warp(0);
    ASSERT_EQ(warp.numInsts(), 3u);
    EXPECT_EQ(warp.deps(0)[0], noDep);
    EXPECT_EQ(warp.deps(1)[0], 0);
    EXPECT_EQ(warp.deps(2)[0], 1);
    EXPECT_TRUE(kernel.validate());
}

TEST(TraceBuilder, KeepsYoungestProducersWhenOverflowing)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    auto pc_many = kernel.addStatic(Opcode::FpAlu);

    TraceBuilder b(kernel, 0, 0, config);
    Reg r0 = b.compute(pc);
    Reg r1 = b.compute(pc);
    Reg r2 = b.compute(pc);
    Reg r3 = b.compute(pc);
    b.compute(pc_many, {r0, r1, r2, r3});
    b.finish();

    const DepArray &deps = kernel.warp(0).deps(4);
    // The three youngest producers (indices 3, 2, 1) are kept.
    EXPECT_EQ(deps[0], 3);
    EXPECT_EQ(deps[1], 2);
    EXPECT_EQ(deps[2], 1);
}

TEST(TraceBuilder, DeduplicatesSameProducer)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    b.compute(pc, {r, r, r});
    b.finish();
    const DepArray &deps = kernel.warp(0).deps(1);
    EXPECT_EQ(deps[0], 0);
    EXPECT_EQ(deps[1], noDep);
}

TEST(TraceBuilder, CoalescesLoadAddresses)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x4000 + t * 4);
    b.globalLoad(pc_ld, addrs);
    b.finish();
    EXPECT_EQ(kernel.warp(0).numRequests(0), 1u);
    EXPECT_EQ(kernel.warp(0).activeThreads(0), 32u);
}

TEST(WarpTrace, ValidateCatchesForwardDeps)
{
    WarpTrace warp;
    WarpInst inst;
    inst.op = Opcode::IntAlu;
    inst.activeThreads = 32;
    inst.deps[0] = 5; // forward reference
    warp.addInst(inst);
    EXPECT_FALSE(warp.validate());
}

TEST(WarpTrace, ValidateCatchesMemInstWithoutLines)
{
    WarpTrace warp;
    WarpInst inst;
    inst.op = Opcode::GlobalLoad;
    inst.activeThreads = 32;
    warp.addInst(inst); // memory instruction with an empty line slice
    EXPECT_FALSE(warp.validate());
}

TEST(WarpTrace, CountsMemoryWork)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs{0x0, 0x80, 0x100};
    Reg r = b.globalLoad(pc_ld, addrs);
    b.compute(pc_add, {r});
    b.finish();
    EXPECT_EQ(kernel.warp(0).numGlobalMemInsts(), 1u);
    EXPECT_EQ(kernel.warp(0).numGlobalMemRequests(), 3u);
}

TEST(KernelTrace, BlockToCoreAssignmentRoundRobin)
{
    HardwareConfig config = smallConfig(); // 2 cores
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 8; ++w) {
        TraceBuilder b(kernel, w, w / 2, config); // blocks of 2 warps
        b.compute(pc);
        b.finish();
    }
    auto core0 = kernel.warpsOnCore(0, config);
    auto core1 = kernel.warpsOnCore(1, config);
    EXPECT_EQ(core0.size(), 4u);
    EXPECT_EQ(core1.size(), 4u);
    // Block 0 (warps 0,1) on core 0; block 1 (warps 2,3) on core 1.
    EXPECT_EQ(core0[0], 0u);
    EXPECT_EQ(core0[1], 1u);
    EXPECT_EQ(core1[0], 2u);
}

TEST(KernelTrace, ValidateChecksPcOpcodeConsistency)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    b.compute(pc);
    b.finish();
    EXPECT_TRUE(kernel.validate());
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("roundtrip");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad, "in");
    auto pc_add = kernel.addStatic(Opcode::FpAlu);
    auto pc_st = kernel.addStatic(Opcode::GlobalStore, "out");

    for (std::uint32_t w = 0; w < 4; ++w) {
        TraceBuilder b(kernel, w, w / 2, config);
        std::vector<Addr> addrs{0x1000 + w * 128ull, 0x2000 + w * 128ull};
        Reg x = b.globalLoad(pc_ld, addrs);
        Reg y = b.compute(pc_add, {x});
        b.globalStore(pc_st, addrs, {y});
        b.finish();
    }

    KernelTrace copy = traceFromString(traceToString(kernel));
    EXPECT_EQ(copy.name(), kernel.name());
    ASSERT_EQ(copy.numWarps(), kernel.numWarps());
    ASSERT_EQ(copy.numStaticInsts(), kernel.numStaticInsts());
    EXPECT_EQ(copy.staticInsts()[0].label, "in");
    for (std::uint32_t w = 0; w < copy.numWarps(); ++w) {
        WarpView a = kernel.warp(w);
        WarpView b2 = copy.warp(w);
        ASSERT_EQ(a.numInsts(), b2.numInsts());
        EXPECT_EQ(a.warpId(), b2.warpId());
        EXPECT_EQ(a.blockId(), b2.blockId());
        for (std::size_t i = 0; i < a.numInsts(); ++i) {
            EXPECT_EQ(a.pc(i), b2.pc(i));
            EXPECT_EQ(a.deps(i), b2.deps(i));
            EXPECT_TRUE(a.lines(i) == b2.lines(i));
            EXPECT_EQ(a.activeThreads(i), b2.activeThreads(i));
        }
    }
    EXPECT_TRUE(copy.validate());
}

TEST(KernelTrace, TotalInstsSumsWarps)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 3; ++w) {
        TraceBuilder b(kernel, w, w, config);
        for (int i = 0; i < 5; ++i)
            b.compute(pc);
        b.finish();
    }
    EXPECT_EQ(kernel.totalInsts(), 15u);
    EXPECT_EQ(kernel.numBlocks(), 3u);
}

} // namespace
} // namespace gpumech
