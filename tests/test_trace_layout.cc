/**
 * @file
 * Regression suite for the flat SoA trace layout and the parallel
 * collector engine.
 *
 * The golden values were captured from the pre-SoA build (per-warp
 * WarpInst vectors with owning std::vector<Addr> line lists, serial
 * collector) at HardwareConfig::baseline(); the flat layout and the
 * parallel collector must reproduce every number bit-for-bit at 1, 2,
 * and 8 threads. Also covers the structural edge cases the arena
 * introduces: line-slice bounds validation and empty kernels.
 */

#include <gtest/gtest.h>

#include "collector/input_collector.hh"
#include "core/gpumech.hh"
#include "core/interval_builder.hh"
#include "trace/trace_builder.hh"
#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

/**
 * Golden numbers captured from the pre-SoA (AoS) serial build. The
 * stress_two_phase cpi/ipc/stack values were re-pinned when the
 * bandwidth queue gained its continuity clamp (kBandwidthRhoClamp) —
 * it is the only golden workload that saturates the DRAM channel.
 */
struct Golden
{
    const char *workload;
    std::uint64_t totalInsts;
    std::uint32_t numWarps;
    std::uint64_t instL1Hit, instL2Hit, instL2Miss;
    std::uint64_t reqCount, reqL1Miss, reqL2Miss;
    double avgMissLatency, l1HitRate, l2HitRate;
    std::size_t numIntervals;
    double stallSum;
    double cpi, ipc;
    std::uint32_t repWarp;
    double stackTotal;
};

const Golden goldens[] = {
    {"micro_divergent8", 215040, 512, 0, 0, 30720, 245760, 245760,
     245760, 420.0, 0.0, 0.0, 153600, 15931392.0, 15.006456820016142,
     0.066637982036250196, 0, 15.006456820016142},
    {"micro_l1_resident", 286720, 512, 40704, 240, 16, 40960, 256, 16,
     138.75, 0.99375000000000002, 0.9375, 204800, 5095872.0,
     1.0000008862985337, 0.99999911370225181, 0, 1.0000008862985337},
    {"stress_two_phase", 286720, 512, 0, 0, 61440, 819200, 819200,
     819200, 420.0, 0.0, 0.0, 225280, 13176320.0, 30.490680803571429,
     0.032796906256119682, 0, 30.490680803571426},
};

/** Sum a PcProfile field across all PCs. */
template <typename F>
std::uint64_t
sumPcs(const CollectorResult &in, F field)
{
    std::uint64_t total = 0;
    for (const auto &p : in.pcs)
        total += field(p);
    return total;
}

void
checkAgainstGolden(const Golden &g, const KernelTrace &kernel,
                   const CollectorResult &in,
                   const HardwareConfig &config)
{
    EXPECT_EQ(kernel.totalInsts(), g.totalInsts) << g.workload;
    EXPECT_EQ(kernel.numWarps(), g.numWarps) << g.workload;

    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.instCount; }),
              g.totalInsts)
        << g.workload;
    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.instL1Hit; }),
              g.instL1Hit)
        << g.workload;
    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.instL2Hit; }),
              g.instL2Hit)
        << g.workload;
    EXPECT_EQ(
        sumPcs(in, [](const PcProfile &p) { return p.instL2Miss; }),
        g.instL2Miss)
        << g.workload;
    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.reqCount; }),
              g.reqCount)
        << g.workload;
    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.reqL1Miss; }),
              g.reqL1Miss)
        << g.workload;
    EXPECT_EQ(sumPcs(in, [](const PcProfile &p) { return p.reqL2Miss; }),
              g.reqL2Miss)
        << g.workload;

    // Exact doubles: the new code must reproduce the old bit patterns.
    EXPECT_EQ(in.avgMissLatency, g.avgMissLatency) << g.workload;
    EXPECT_EQ(in.l1HitRate, g.l1HitRate) << g.workload;
    EXPECT_EQ(in.l2HitRate, g.l2HitRate) << g.workload;

    auto profiles = buildAllProfiles(kernel, in, config);
    std::size_t num_intervals = 0;
    double stall_sum = 0.0;
    for (const auto &p : profiles) {
        num_intervals += p.intervals.size();
        for (const auto &iv : p.intervals)
            stall_sum += iv.stallCycles;
    }
    EXPECT_EQ(num_intervals, g.numIntervals) << g.workload;
    EXPECT_EQ(stall_sum, g.stallSum) << g.workload;
}

TEST(TraceLayout, SerialPathMatchesPreSoaGoldens)
{
    HardwareConfig config;
    for (const Golden &g : goldens) {
        KernelTrace kernel = workloadByName(g.workload).generate(config);
        ASSERT_TRUE(kernel.validate()) << g.workload;
        CollectorResult in = collectInputs(kernel, config);
        checkAgainstGolden(g, kernel, in, config);

        GpuMechResult r = runGpuMech(kernel, config);
        EXPECT_EQ(r.cpi, g.cpi) << g.workload;
        EXPECT_EQ(r.ipc, g.ipc) << g.workload;
        EXPECT_EQ(r.repWarpIndex, g.repWarp) << g.workload;
        EXPECT_EQ(r.stack.total(), g.stackTotal) << g.workload;
    }
}

/** Field-by-field exact comparison of two collector results. */
void
expectCollectorIdentical(const CollectorResult &a,
                         const CollectorResult &b, const char *label)
{
    ASSERT_EQ(a.pcs.size(), b.pcs.size()) << label;
    for (std::size_t pc = 0; pc < a.pcs.size(); ++pc) {
        const PcProfile &pa = a.pcs[pc];
        const PcProfile &pb = b.pcs[pc];
        EXPECT_EQ(pa.op, pb.op) << label << " pc " << pc;
        EXPECT_EQ(pa.instCount, pb.instCount) << label << " pc " << pc;
        EXPECT_EQ(pa.instL1Hit, pb.instL1Hit) << label << " pc " << pc;
        EXPECT_EQ(pa.instL2Hit, pb.instL2Hit) << label << " pc " << pc;
        EXPECT_EQ(pa.instL2Miss, pb.instL2Miss) << label << " pc " << pc;
        EXPECT_EQ(pa.reqCount, pb.reqCount) << label << " pc " << pc;
        EXPECT_EQ(pa.reqL1Miss, pb.reqL1Miss) << label << " pc " << pc;
        EXPECT_EQ(pa.reqL2Miss, pb.reqL2Miss) << label << " pc " << pc;
    }
    ASSERT_EQ(a.pcLatency.size(), b.pcLatency.size()) << label;
    for (std::size_t pc = 0; pc < a.pcLatency.size(); ++pc)
        EXPECT_EQ(a.pcLatency[pc], b.pcLatency[pc]) << label << " " << pc;
    EXPECT_EQ(a.avgMissLatency, b.avgMissLatency) << label;
    EXPECT_EQ(a.l1HitRate, b.l1HitRate) << label;
    EXPECT_EQ(a.l2HitRate, b.l2HitRate) << label;
}

TEST(TraceLayout, ParallelCollectorBitIdenticalAt1_2_8Threads)
{
    HardwareConfig config;
    for (const Golden &g : goldens) {
        KernelTrace kernel = workloadByName(g.workload).generate(config);
        CollectorResult serial = collectInputs(kernel, config);
        for (unsigned jobs : {1u, 2u, 8u}) {
            CollectorResult par =
                collectInputsParallel(kernel, config, jobs);
            expectCollectorIdentical(serial, par, g.workload);
            // The parallel engine's inputs feed interval analysis and
            // the CPI stack; confirm those land on the goldens too.
            checkAgainstGolden(g, kernel, par, config);
        }
    }
}

TEST(TraceLayout, ParallelPipelineReproducesGoldenCpiStack)
{
    HardwareConfig config;
    for (const Golden &g : goldens) {
        KernelTrace kernel = workloadByName(g.workload).generate(config);
        for (unsigned jobs : {2u, 8u}) {
            // Full parallel pipeline: parallel collector + parallel
            // per-warp interval profiling inside the profiler.
            GpuMechProfiler profiler(kernel, config,
                                     RepSelection::Clustering, 2, jobs);
            GpuMechResult r =
                profiler.evaluate(SchedulingPolicy::RoundRobin);
            EXPECT_EQ(r.cpi, g.cpi) << g.workload << " jobs " << jobs;
            EXPECT_EQ(r.ipc, g.ipc) << g.workload << " jobs " << jobs;
            EXPECT_EQ(r.repWarpIndex, g.repWarp)
                << g.workload << " jobs " << jobs;
            EXPECT_EQ(r.stack.total(), g.stackTotal)
                << g.workload << " jobs " << jobs;
        }
    }
}

TEST(TraceLayout, LineSlicesStayInsidePool)
{
    HardwareConfig config;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    const std::uint64_t pool_size = kernel.totalLines();
    for (WarpView warp : kernel.warps()) {
        for (std::size_t i = 0; i < warp.numInsts(); ++i) {
            LineSpan span = warp.lines(i);
            if (isGlobalMemory(warp.op(i))) {
                ASSERT_GT(span.size(), 0u);
                // The span must lie within the kernel's arena.
                auto offset = static_cast<std::uint64_t>(
                    span.begin() - kernel.linePool().data());
                ASSERT_LE(offset + span.size(), pool_size);
            } else {
                ASSERT_EQ(span.size(), 0u);
            }
        }
    }
}

TEST(TraceLayout, ValidateCatchesOutOfBoundsSlice)
{
    WarpTrace warp;
    WarpInst inst;
    inst.op = Opcode::GlobalLoad;
    inst.activeThreads = 32;
    inst.lineOffset = 5; // past the end of the (empty) local arena
    inst.lineCount = 2;
    warp.insts.push_back(inst);
    EXPECT_FALSE(warp.validate());

    // A correctly registered slice passes.
    WarpTrace ok;
    WarpInst ld;
    ld.op = Opcode::GlobalLoad;
    ld.activeThreads = 32;
    Addr lines[] = {0x100, 0x180};
    ok.addMemInst(ld, lines, 2);
    EXPECT_TRUE(ok.validate());
}

TEST(TraceLayout, EmptyKernelCollectsAndProfilesCleanly)
{
    HardwareConfig config;
    KernelTrace kernel("empty");
    kernel.addStatic(Opcode::IntAlu);

    EXPECT_EQ(kernel.numWarps(), 0u);
    EXPECT_EQ(kernel.totalInsts(), 0u);
    EXPECT_EQ(kernel.totalLines(), 0u);
    EXPECT_TRUE(kernel.validate());

    for (unsigned jobs : {1u, 2u, 8u}) {
        CollectorResult in = collectInputsParallel(kernel, config, jobs);
        ASSERT_EQ(in.pcs.size(), 1u);
        EXPECT_EQ(in.pcs[0].instCount, 0u);
        EXPECT_EQ(in.pcs[0].reqCount, 0u);
    }
    CollectorResult in = collectInputs(kernel, config);
    EXPECT_TRUE(buildAllProfiles(kernel, in, config).empty());
}

TEST(TraceLayout, SizeHintsUpperBoundGeneratedTraces)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    std::uint64_t warps = totalWarps(config);

    LoopKernelParams loop;
    loop.storesPerIter = 2;
    loop.iterationVariance = 0.25;
    loop.extraPathFraction = 0.3;
    KernelTrace lk = loopKernel("hint_loop", loop, config);
    TraceSizeHint lh = sizeHint(loop);
    EXPECT_LE(lk.totalInsts(), warps * lh.instsPerWarp);
    EXPECT_LE(lk.totalLines(), warps * lh.linesPerWarp);

    HistogramParams histo;
    KernelTrace hk = histogramKernel("hint_histo", histo, config);
    TraceSizeHint hh = sizeHint(histo);
    EXPECT_LE(hk.totalInsts(), warps * hh.instsPerWarp);
    EXPECT_LE(hk.totalLines(), warps * hh.linesPerWarp);

    TransposeParams tp;
    KernelTrace tk = transposeKernel("hint_transpose", tp, config);
    TraceSizeHint th = sizeHint(tp, config);
    EXPECT_LE(tk.totalInsts(), warps * th.instsPerWarp);
    EXPECT_LE(tk.totalLines(), warps * th.linesPerWarp);
}

TEST(TraceLayout, MemoryFootprintCountsFlatArrays)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    // At minimum the SoA arrays' live bytes are accounted for.
    std::size_t lower_bound = kernel.totalInsts() *
            (sizeof(std::uint32_t) * 3 + sizeof(Opcode) +
             sizeof(DepArray) + sizeof(std::uint64_t)) +
        kernel.totalLines() * sizeof(Addr);
    EXPECT_GE(kernel.memoryFootprint(), lower_bound);
}

} // namespace
} // namespace gpumech
