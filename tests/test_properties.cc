/**
 * @file
 * Property-based and fuzz tests across module boundaries: randomized
 * coalescer inputs, workload generation across configuration sweeps,
 * and end-to-end invariants that must hold for every kernel and
 * configuration.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "trace/coalescer.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

TEST(Properties, CoalescerFuzz)
{
    Rng rng(123);
    for (int iter = 0; iter < 500; ++iter) {
        std::uint32_t threads =
            static_cast<std::uint32_t>(rng.nextRange(1, 32));
        std::uint32_t line = 1u << rng.nextRange(5, 9); // 32..512
        std::vector<Addr> addrs;
        for (std::uint32_t t = 0; t < threads; ++t)
            addrs.push_back(rng.nextBelow(1 << 20));

        auto lines = coalesce(addrs, line);
        // Count bounded by thread count, at least one.
        EXPECT_GE(lines.size(), 1u);
        EXPECT_LE(lines.size(), threads);
        // Sorted, unique, aligned.
        EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
        EXPECT_EQ(std::adjacent_find(lines.begin(), lines.end()),
                  lines.end());
        for (Addr a : lines)
            EXPECT_EQ(a % line, 0u);
        // Every thread address falls inside one returned line.
        for (Addr a : addrs) {
            Addr base = a - a % line;
            EXPECT_TRUE(std::binary_search(lines.begin(), lines.end(),
                                           base));
        }
    }
}

class SuiteByWarpCount
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint32_t>>
{
};

TEST_P(SuiteByWarpCount, EveryKernelGeneratesAndValidates)
{
    auto [suite, warps] = GetParam();
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = warps;
    for (const auto &w : workloadsBySuite(suite)) {
        KernelTrace kernel = w.generate(config);
        EXPECT_TRUE(kernel.validate()) << w.name;
        EXPECT_EQ(kernel.numWarps(), 2 * warps) << w.name;
        // Traces must be long enough for meaningful profiles.
        EXPECT_GT(kernel.totalInsts() / kernel.numWarps(), 50u)
            << w.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuiteByWarpCount,
    ::testing::Combine(::testing::Values("rodinia", "parboil", "sdk"),
                       ::testing::Values(8u, 16u, 48u)));

TEST(Properties, ModelFiniteAndPositiveForAllEvaluationKernels)
{
    // Cheap smoke over all 40 kernels at a small configuration: the
    // model must produce a finite positive CPI and a stack that sums
    // to it.
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const auto &w : evaluationWorkloads()) {
        KernelTrace kernel = w.generate(config);
        GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
        EXPECT_TRUE(std::isfinite(r.cpi)) << w.name;
        EXPECT_GE(r.cpi, 1.0 - 1e-9) << w.name;
        EXPECT_NEAR(r.stack.total(), r.cpi, 1e-6) << w.name;
    }
}

TEST(Properties, OracleConservesInstructionCounts)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const char *name :
         {"srad_kernel1", "bfs_kernel1", "transpose_naive",
          "stress_two_phase"}) {
        KernelTrace kernel = workloadByName(name).generate(config);
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        TimingStats s = sim.run();
        EXPECT_EQ(s.totalInsts, kernel.totalInsts()) << name;
    }
}

TEST(Properties, SimdEfficiencyFullForUniformKernels)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("vectorAdd").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    EXPECT_DOUBLE_EQ(sim.run().simdEfficiency(), 1.0);
}

TEST(Properties, SimdEfficiencyDropsWithShrinkingMasks)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("reduction_kernel").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    double eff = sim.run().simdEfficiency();
    EXPECT_LT(eff, 1.0);
    EXPECT_GT(eff, 0.5);
}

TEST(Properties, FasterMemoryNeverHurtsOracle)
{
    // Doubling bandwidth and MSHRs must not slow the oracle down.
    for (const char *name :
         {"micro_divergent32", "micro_write_burst"}) {
        HardwareConfig base = HardwareConfig::baseline();
        base.numCores = 2;
        base.warpsPerCore = 8;
        KernelTrace kernel = workloadByName(name).generate(base);
        GpuTiming slow(kernel, base, SchedulingPolicy::RoundRobin);
        HardwareConfig fast = base;
        fast.dramBandwidthGBs *= 2.0;
        fast.numMshrs *= 2;
        GpuTiming quick(kernel, fast, SchedulingPolicy::RoundRobin);
        EXPECT_LE(quick.run().totalCycles, slow.run().totalCycles)
            << name;
    }
}

TEST(Properties, ModelRespondsToMemoryUpgradesLikeOracle)
{
    HardwareConfig base = HardwareConfig::baseline();
    base.numCores = 2;
    base.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_divergent32").generate(base);
    GpuMechProfiler profiler(kernel, base);
    double base_cpi =
        profiler.evaluate(SchedulingPolicy::RoundRobin).cpi;

    HardwareConfig fast = base;
    fast.dramBandwidthGBs *= 4.0;
    fast.numMshrs *= 4;
    double fast_cpi =
        profiler.evaluateAt(fast, SchedulingPolicy::RoundRobin).cpi;
    EXPECT_LT(fast_cpi, base_cpi);

    GpuTiming slow_sim(kernel, base, SchedulingPolicy::RoundRobin);
    GpuTiming fast_sim(kernel, fast, SchedulingPolicy::RoundRobin);
    EXPECT_LT(fast_sim.run().cpi(), slow_sim.run().cpi());
}

TEST(Properties, PolicyChoiceFlowsThroughWholePipeline)
{
    // RR and GTO model predictions must differ for a kernel with
    // multi-instruction intervals (their non-overlap formulas
    // differ), and both must stay within physical bounds.
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_stream").generate(config);
    GpuMechProfiler profiler(kernel, config);
    double rr = profiler.evaluate(SchedulingPolicy::RoundRobin,
                                  ModelLevel::MT).cpi;
    double gto = profiler.evaluate(SchedulingPolicy::GreedyThenOldest,
                                   ModelLevel::MT).cpi;
    EXPECT_NE(rr, gto);
    EXPECT_GE(rr, 1.0 - 1e-9);
    EXPECT_GE(gto, 1.0 - 1e-9);
}

} // namespace
} // namespace gpumech
