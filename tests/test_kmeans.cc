/**
 * @file
 * Tests for the k-means clustering used by representative-warp
 * selection.
 */

#include <gtest/gtest.h>

#include "core/kmeans.hh"

namespace gpumech
{
namespace
{

TEST(Kmeans, SquaredDistance)
{
    EXPECT_DOUBLE_EQ(squaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
    EXPECT_DOUBLE_EQ(squaredDistance({1.0}, {1.0}), 0.0);
}

TEST(Kmeans, SeparatesTwoObviousClusters)
{
    std::vector<FeatureVector> points = {
        {0.0, 0.0}, {0.1, 0.1}, {0.2, 0.0},        // cluster A
        {10.0, 10.0}, {10.1, 9.9}, {9.9, 10.1},    // cluster B
        {10.2, 10.0},
    };
    KmeansResult r = kmeans(points, 2);
    // The first three points share a cluster; the rest share the
    // other.
    EXPECT_EQ(r.assignment[0], r.assignment[1]);
    EXPECT_EQ(r.assignment[1], r.assignment[2]);
    EXPECT_EQ(r.assignment[3], r.assignment[4]);
    EXPECT_EQ(r.assignment[4], r.assignment[5]);
    EXPECT_NE(r.assignment[0], r.assignment[3]);
    // B is the larger cluster (4 points).
    EXPECT_EQ(r.sizes[r.largestCluster()], 4u);
}

TEST(Kmeans, ClosestToCenterPicksMedianPoint)
{
    std::vector<FeatureVector> points = {
        {0.0}, {1.0}, {2.0},   // center 1.0 -> closest is {1.0}
        {100.0},
    };
    KmeansResult r = kmeans(points, 2);
    std::uint32_t largest = r.largestCluster();
    EXPECT_EQ(r.closestToCenter(points, largest), 1u);
}

TEST(Kmeans, SinglePoint)
{
    std::vector<FeatureVector> points = {{1.0, 2.0}};
    KmeansResult r = kmeans(points, 2); // k clamped to 1
    EXPECT_EQ(r.assignment[0], 0u);
    EXPECT_EQ(r.sizes[0], 1u);
}

TEST(Kmeans, IdenticalPointsStaySane)
{
    std::vector<FeatureVector> points(5, FeatureVector{1.0, 1.0});
    KmeansResult r = kmeans(points, 2);
    std::uint32_t largest = r.largestCluster();
    EXPECT_GE(r.sizes[largest], 3u);
    // closestToCenter must still return a valid index.
    EXPECT_LT(r.closestToCenter(points, largest), points.size());
}

TEST(Kmeans, Deterministic)
{
    std::vector<FeatureVector> points;
    for (int i = 0; i < 50; ++i) {
        points.push_back({static_cast<double>(i % 7),
                          static_cast<double>((i * 3) % 11)});
    }
    KmeansResult a = kmeans(points, 3);
    KmeansResult b = kmeans(points, 3);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Kmeans, KOneGroupsEverything)
{
    std::vector<FeatureVector> points = {{0.0}, {5.0}, {10.0}};
    KmeansResult r = kmeans(points, 1);
    EXPECT_EQ(r.sizes[0], 3u);
    EXPECT_DOUBLE_EQ(r.centers[0][0], 5.0);
}

TEST(Kmeans, Converges)
{
    std::vector<FeatureVector> points;
    for (int i = 0; i < 100; ++i)
        points.push_back({static_cast<double>(i)});
    KmeansResult r = kmeans(points, 4, 1000);
    EXPECT_LT(r.iterations, 1000u); // stabilized before the cap
    std::uint32_t total = 0;
    for (auto s : r.sizes)
        total += s;
    EXPECT_EQ(total, 100u);
}

} // namespace
} // namespace gpumech
