/**
 * @file
 * Unit tests for the DRAM channel model: service timing, queuing
 * accumulation, read/write sharing, and bandwidth scaling.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace gpumech
{
namespace
{

HardwareConfig
baseConfig()
{
    return HardwareConfig::baseline(); // s = 128/192 = 2/3 cycle
}

TEST(Dram, UncontendedReadLatency)
{
    DramChannel d(baseConfig());
    DramTiming t = d.read(100.0);
    EXPECT_DOUBLE_EQ(t.serviceStart, 100.0);
    EXPECT_DOUBLE_EQ(t.queueDelay, 0.0);
    EXPECT_NEAR(t.fillCycle, 100.0 + 2.0 / 3.0 + 300.0, 1e-9);
}

TEST(Dram, BackToBackRequestsQueue)
{
    DramChannel d(baseConfig());
    d.read(100.0);
    DramTiming t = d.read(100.0);
    EXPECT_NEAR(t.queueDelay, 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(t.serviceStart, 100.0 + 2.0 / 3.0, 1e-9);
}

TEST(Dram, QueueDrainsWhenIdle)
{
    DramChannel d(baseConfig());
    d.read(100.0);
    DramTiming t = d.read(200.0); // long after the first finished
    EXPECT_DOUBLE_EQ(t.queueDelay, 0.0);
}

TEST(Dram, WritesShareTheChannelWithReads)
{
    DramChannel d(baseConfig());
    for (int i = 0; i < 30; ++i)
        d.write(100.0);
    DramTiming t = d.read(100.0);
    EXPECT_NEAR(t.queueDelay, 30.0 * 2.0 / 3.0, 1e-6);
}

TEST(Dram, NthRequestWaitsNMinusOneServices)
{
    DramChannel d(baseConfig());
    double s = d.serviceCycles();
    for (int i = 0; i < 10; ++i) {
        DramTiming t = d.read(0.0);
        EXPECT_NEAR(t.queueDelay, i * s, 1e-9) << "request " << i;
    }
}

TEST(Dram, CountsReadsAndWrites)
{
    DramChannel d(baseConfig());
    d.read(0.0);
    d.read(0.0);
    d.write(0.0);
    EXPECT_EQ(d.reads(), 2u);
    EXPECT_EQ(d.writes(), 1u);
}

TEST(Dram, AvgQueueDelay)
{
    DramChannel d(baseConfig());
    d.read(0.0); // delay 0
    d.read(0.0); // delay s
    EXPECT_NEAR(d.avgQueueDelay(), d.serviceCycles() / 2.0, 1e-9);
}

TEST(Dram, ResetClearsState)
{
    DramChannel d(baseConfig());
    d.read(0.0);
    d.reset();
    EXPECT_EQ(d.reads(), 0u);
    EXPECT_DOUBLE_EQ(d.busyUntil(), 0.0);
    DramTiming t = d.read(0.0);
    EXPECT_DOUBLE_EQ(t.queueDelay, 0.0);
}

class DramBandwidth : public ::testing::TestWithParam<double>
{
};

TEST_P(DramBandwidth, ServiceTimeInverselyProportional)
{
    HardwareConfig config = baseConfig();
    config.dramBandwidthGBs = GetParam();
    DramChannel d(config);
    EXPECT_NEAR(d.serviceCycles(), 128.0 / GetParam(), 1e-9);

    // Throughput check: N back-to-back requests take N*s channel
    // time.
    const int n = 100;
    DramTiming last{};
    for (int i = 0; i < n; ++i)
        last = d.read(0.0);
    EXPECT_NEAR(last.serviceStart + d.serviceCycles(),
                n * d.serviceCycles(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, DramBandwidth,
                         ::testing::Values(64.0, 128.0, 192.0, 256.0));

} // namespace
} // namespace gpumech
