/**
 * @file
 * Tests for the oracle's measured stall attribution (the per-cycle
 * classification behind TimingStats::*StallCpi), including exact
 * counts on hand-built traces.
 */

#include <gtest/gtest.h>

#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    return c;
}

TEST(StallBreakdown, SerialComputeChainChargesComputeStalls)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    for (int i = 0; i < 4; ++i)
        r = b.compute(pc, {r});
    b.finish();

    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // Issues at 0,21,42,63,84: the 80 in-between cycles are compute
    // stalls; nothing else.
    EXPECT_EQ(s.stallComputeCycles, 80u);
    EXPECT_EQ(s.stallMemCycles, 0u);
    EXPECT_EQ(s.stallMshrCycles, 0u);
    EXPECT_EQ(s.stallSfuCycles, 0u);
}

TEST(StallBreakdown, LoadWaitChargesMemStalls)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000});
    b.compute(pc_add, {r});
    b.finish();

    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // Load at 0, fill 421, add at 422: cycles 1..420 wait on the
    // outstanding load; cycle 421 (fill resolved, issue next cycle)
    // classifies as a latency wait.
    EXPECT_EQ(s.stallMemCycles, 420u);
    EXPECT_EQ(s.stallComputeCycles, 1u);
}

TEST(StallBreakdown, MshrExhaustionChargesMshrStalls)
{
    HardwareConfig config = oneCore();
    config.numMshrs = 1;
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc_ld, {0x10000});
    b.globalLoad(pc_ld, {0x90000});
    b.finish();

    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // Load B is MSHR-blocked from cycle 1 until the fill at 421
    // unblocks it (issues 422): 421 blocked cycles.
    EXPECT_EQ(s.stallMshrCycles, 421u);
    EXPECT_EQ(s.stallMemCycles, 0u);
}

TEST(StallBreakdown, SfuOccupancyChargesSfuStalls)
{
    HardwareConfig config = oneCore();
    config.sfuLanes = 8; // 4-cycle occupancy
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::Sfu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        b.compute(pc);
        b.finish();
    }
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // w0 at cycle 0; w1 is SFU-blocked cycles 1-3, issues at 4.
    EXPECT_EQ(s.stallSfuCycles, 3u);
}

TEST(StallBreakdown, SharesScaleWithInstructions)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000});
    b.compute(pc_add, {r});
    b.finish();

    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    EXPECT_DOUBLE_EQ(s.memStallCpi(), 420.0 / 2.0);
}

TEST(StallBreakdown, BreakdownApproximatesCpi)
{
    // 1 (issue) + stall shares ~ CPI for long-running kernels (the
    // uncharged part is the drain tail and cross-core imbalance).
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const char *name :
         {"micro_stream", "micro_divergent8", "micro_compute_chain"}) {
        KernelTrace kernel = workloadByName(name).generate(config);
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        TimingStats s = sim.run();
        double accounted = 1.0 + s.memStallCpi() +
                           s.computeStallCpi() + s.mshrStallCpi() +
                           s.sfuStallCpi();
        EXPECT_NEAR(accounted, s.cpi(), 0.12 * s.cpi()) << name;
    }
}

TEST(StallBreakdown, DivergentKernelIsMemoryOrMshrBound)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_divergent32").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    double memish = s.memStallCpi() + s.mshrStallCpi();
    EXPECT_GT(memish, 10.0 * s.computeStallCpi());
}

TEST(StallBreakdown, ComputeKernelHasNoMemStalls)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_compute_chain").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    EXPECT_EQ(s.stallMemCycles, 0u);
    EXPECT_EQ(s.stallMshrCycles, 0u);
}

} // namespace
} // namespace gpumech
