/**
 * @file
 * Unit tests for the minimal JSON writer.
 */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace gpumech
{
namespace
{

TEST(Json, EmptyObject)
{
    JsonWriter w;
    EXPECT_EQ(w.finish(), "{}");
}

TEST(Json, ScalarFields)
{
    JsonWriter w;
    w.field("name", "srad");
    w.field("cpi", 2.5);
    w.field("insts", static_cast<std::uint64_t>(42));
    w.field("ok", true);
    EXPECT_EQ(w.finish(),
              "{\"name\":\"srad\",\"cpi\":2.5,\"insts\":42,"
              "\"ok\":true}");
}

TEST(Json, NestedObjects)
{
    JsonWriter w;
    w.field("a", static_cast<std::uint64_t>(1));
    w.beginObject("inner");
    w.field("b", static_cast<std::uint64_t>(2));
    w.endObject();
    w.field("c", static_cast<std::uint64_t>(3));
    EXPECT_EQ(w.finish(), "{\"a\":1,\"inner\":{\"b\":2},\"c\":3}");
}

TEST(Json, EscapesSpecialCharacters)
{
    JsonWriter w;
    w.field("s", "a\"b\\c\nd");
    EXPECT_EQ(w.finish(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, DoubleFormattingIsCompact)
{
    JsonWriter w;
    w.field("x", 0.5);
    w.field("y", 13.2);
    std::string out = w.finish();
    EXPECT_NE(out.find("\"x\":0.5"), std::string::npos);
    EXPECT_NE(out.find("\"y\":13.2"), std::string::npos);
}

TEST(JsonDeath, UnbalancedEndObject)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "no open nested object");
}

TEST(JsonDeath, FinishWithOpenObject)
{
    JsonWriter w;
    w.beginObject("x");
    EXPECT_DEATH(
        { [[maybe_unused]] auto s = w.finish(); },
        "open nested objects");
}

} // namespace
} // namespace gpumech
