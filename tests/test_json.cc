/**
 * @file
 * Unit tests for the minimal JSON writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"
#include "json_check.hh"

namespace gpumech
{
namespace
{

using testing::isValidJson;

TEST(Json, EmptyObject)
{
    JsonWriter w;
    EXPECT_EQ(w.finish(), "{}");
}

TEST(Json, ScalarFields)
{
    JsonWriter w;
    w.field("name", "srad");
    w.field("cpi", 2.5);
    w.field("insts", static_cast<std::uint64_t>(42));
    w.field("ok", true);
    EXPECT_EQ(w.finish(),
              "{\"name\":\"srad\",\"cpi\":2.5,\"insts\":42,"
              "\"ok\":true}");
}

TEST(Json, NestedObjects)
{
    JsonWriter w;
    w.field("a", static_cast<std::uint64_t>(1));
    w.beginObject("inner");
    w.field("b", static_cast<std::uint64_t>(2));
    w.endObject();
    w.field("c", static_cast<std::uint64_t>(3));
    EXPECT_EQ(w.finish(), "{\"a\":1,\"inner\":{\"b\":2},\"c\":3}");
}

TEST(Json, EscapesSpecialCharacters)
{
    JsonWriter w;
    w.field("s", "a\"b\\c\nd");
    EXPECT_EQ(w.finish(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, EscapesAllControlCharacters)
{
    // \n and \t have short escapes; \r, \b, \f and the rest of the
    // C0 range must come out as escapes too — a raw control byte
    // inside a string is invalid JSON and used to leak through.
    JsonWriter w;
    w.field("s", std::string("a\rb\bc\fd\x01" "e\x1f" "f"));
    std::string out = w.finish();
    EXPECT_EQ(out,
              "{\"s\":\"a\\rb\\bc\\fd\\u0001e\\u001ff\"}");
    EXPECT_TRUE(isValidJson(out));
}

TEST(Json, EscapeCoversWholeC0Range)
{
    for (int c = 1; c < 0x20; ++c) {
        JsonWriter w;
        w.field("k", std::string(1, static_cast<char>(c)));
        std::string out = w.finish();
        EXPECT_TRUE(isValidJson(out)) << "control char " << c;
        // No raw control byte may survive into the output.
        for (char byte : out)
            EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
                << "control char " << c;
    }
}

TEST(Json, JsonEscapeIsExposed)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("\r\n"), "\\r\\n");
    EXPECT_EQ(jsonEscape(std::string(1, '\x07')), "\\u0007");
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    // NaN/Inf are not representable in JSON; emitting them raw
    // produced documents every strict parser rejected.
    JsonWriter w;
    w.field("nan", std::nan(""));
    w.field("inf", std::numeric_limits<double>::infinity());
    w.field("ninf", -std::numeric_limits<double>::infinity());
    w.field("fine", 1.5);
    std::string out = w.finish();
    EXPECT_EQ(out,
              "{\"nan\":null,\"inf\":null,\"ninf\":null,"
              "\"fine\":1.5}");
    EXPECT_TRUE(isValidJson(out));
}

TEST(Json, CheckerRejectsMalformedDocuments)
{
    EXPECT_TRUE(isValidJson("{\"a\":[1,2,{\"b\":null}]}"));
    EXPECT_FALSE(isValidJson("{\"a\":nan}"));
    EXPECT_FALSE(isValidJson("{\"a\":1,}"));
    EXPECT_FALSE(isValidJson("{\"a\":\"\x01\"}"));
    EXPECT_FALSE(isValidJson("{\"a\":1} trailing"));
    EXPECT_FALSE(isValidJson("{\"a\":"));
}

TEST(Json, DoubleFormattingIsCompact)
{
    JsonWriter w;
    w.field("x", 0.5);
    w.field("y", 13.2);
    std::string out = w.finish();
    EXPECT_NE(out.find("\"x\":0.5"), std::string::npos);
    EXPECT_NE(out.find("\"y\":13.2"), std::string::npos);
}

TEST(JsonDeath, UnbalancedEndObject)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "no open nested object");
}

TEST(JsonDeath, FinishWithOpenObject)
{
    JsonWriter w;
    w.beginObject("x");
    EXPECT_DEATH(
        { [[maybe_unused]] auto s = w.finish(); },
        "open nested objects");
}

} // namespace
} // namespace gpumech
