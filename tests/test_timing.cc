/**
 * @file
 * Tests for the detailed timing simulator, including exact
 * cycle-count checks on hand-built traces (latencies from Table I:
 * IntAlu 20, L1 hit 25, L2 hit 120, L2 miss 420, DRAM service 2/3
 * cycle per line).
 */

#include <gtest/gtest.h>

#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    return c;
}

TimingStats
run(const KernelTrace &kernel, const HardwareConfig &config,
    SchedulingPolicy policy = SchedulingPolicy::RoundRobin)
{
    GpuTiming sim(kernel, config, policy);
    return sim.run();
}

TEST(Timing, IndependentComputeIssuesEveryCycle)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    for (int i = 0; i < 10; ++i)
        b.compute(pc);
    b.finish();

    TimingStats s = run(kernel, config);
    // Last instruction issues at cycle 9, completes at 9 + 20.
    EXPECT_EQ(s.totalCycles, 29u);
    EXPECT_EQ(s.totalInsts, 10u);
}

TEST(Timing, SerialChainWaitsFullLatency)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    for (int i = 0; i < 4; ++i)
        r = b.compute(pc, {r});
    b.finish();

    TimingStats s = run(kernel, config);
    // inst k issues at k*(20+1); inst 4 completes at 84 + 20.
    EXPECT_EQ(s.totalCycles, 104u);
}

TEST(Timing, FpLatencyDiffersFromInt)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::FpAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    r = b.compute(pc, {r});
    b.finish();
    TimingStats s = run(kernel, config);
    // issue 0 -> done 25; issue 26 -> done 51.
    EXPECT_EQ(s.totalCycles, 51u);
}

TEST(Timing, ColdLoadMissesToDram)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc, {0x10000});
    b.finish();

    TimingStats s = run(kernel, config);
    // Request reaches DRAM at 120, service 2/3, +300 access:
    // fill at ceil(420.67) = 421.
    EXPECT_EQ(s.totalCycles, 421u);
    EXPECT_EQ(s.l1Accesses, 1u);
    EXPECT_EQ(s.l1Hits, 0u);
    EXPECT_EQ(s.l2Accesses, 1u);
    EXPECT_EQ(s.l2Hits, 0u);
    EXPECT_EQ(s.dramReads, 1u);
    EXPECT_EQ(s.mshrAllocs, 1u);
}

TEST(Timing, DependentComputeWaitsForFill)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000});
    b.compute(pc_add, {r});
    b.finish();

    TimingStats s = run(kernel, config);
    // Load fills at 421; compute issues at 422, completes at 442.
    EXPECT_EQ(s.totalCycles, 442u);
}

TEST(Timing, ReloadAfterFillHitsL1)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000});
    Reg c = b.compute(pc_add, {r}); // serializes past the fill
    b.globalLoad(pc_ld, {0x10000}, {c});
    b.finish();

    TimingStats s = run(kernel, config);
    // compute done 442; reload issues 443, L1 hit: done 443 + 25.
    EXPECT_EQ(s.totalCycles, 468u);
    EXPECT_EQ(s.l1Hits, 1u);
}

TEST(Timing, ConcurrentSameLineLoadsMergeInMshr)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc_ld, {0x10000});
    b.globalLoad(pc_ld, {0x10000}); // merges, no second DRAM read
    b.finish();

    TimingStats s = run(kernel, config);
    EXPECT_EQ(s.dramReads, 1u);
    EXPECT_EQ(s.mshrAllocs, 1u);
    EXPECT_EQ(s.mshrMerges, 1u);
    // Both complete at the single fill (421).
    EXPECT_EQ(s.totalCycles, 421u);
}

TEST(Timing, SecondCoreHitsSharedL2)
{
    HardwareConfig config = oneCore();
    config.numCores = 2;
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    {
        TraceBuilder b(kernel, 0, 0, config); // block 0 -> core 0
        b.globalLoad(pc_ld, {0x10000});
        b.finish();
    }
    {
        TraceBuilder b(kernel, 1, 1, config); // block 1 -> core 1
        b.globalLoad(pc_ld, {0x10000});
        b.finish();
    }
    TimingStats s = run(kernel, config);
    // Core 0 misses to DRAM; core 1 (same cycle) hits L2 tags and
    // fills at 120.
    EXPECT_EQ(s.l2Hits, 1u);
    EXPECT_EQ(s.dramReads, 1u);
    EXPECT_EQ(s.totalCycles, 421u);
}

TEST(Timing, StoresAreFireAndForget)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalStore(pc_st, {0x10000});
    b.compute(pc_add);
    b.finish();

    TimingStats s = run(kernel, config);
    // Store occupies cycle 0 only; compute issues at 1, done 21.
    EXPECT_EQ(s.totalCycles, 21u);
    EXPECT_EQ(s.dramWrites, 1u);
    EXPECT_EQ(s.mshrAllocs, 0u);
}

TEST(Timing, DivergentStoreConsumesBandwidthPerLine)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x10000 + static_cast<Addr>(t) * 128);
    b.globalStore(pc_st, addrs);
    b.finish();

    TimingStats s = run(kernel, config);
    EXPECT_EQ(s.dramWrites, 32u);
}

TEST(Timing, WriteBurstDelaysSubsequentLoad)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x10000 + static_cast<Addr>(t) * 128);
    b.globalStore(pc_st, addrs); // 32 writes arrive at cycle 120
    b.globalLoad(pc_ld, {0x90000});
    b.finish();

    TimingStats s = run(kernel, config);
    // Load (issue 1, arrival 121) queues behind 32 writes:
    // service starts at 120 + 32*(2/3) = 141.33, fill at
    // ceil(141.33 + 0.67 + 300) = 442.
    EXPECT_EQ(s.totalCycles, 442u);
    EXPECT_GT(s.avgDramQueueDelay, 0.0);
}

TEST(Timing, MshrExhaustionBlocksNextLoad)
{
    HardwareConfig config = oneCore();
    config.numMshrs = 1;
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc_ld, {0x10000});
    b.globalLoad(pc_ld, {0x90000}); // distinct line, needs the MSHR
    b.finish();

    TimingStats s = run(kernel, config);
    // Load B can only issue after A's fill frees the entry at 421:
    // B issues at 422, fill at ceil(422+120+0.67+300) = 843.
    EXPECT_EQ(s.totalCycles, 843u);
    EXPECT_EQ(s.mshrPeak, 1u);
}

TEST(Timing, DivergentLoadDispatchesInWavesWhenMshrsShort)
{
    HardwareConfig config = oneCore();
    config.numMshrs = 2;
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 4; ++t)
        addrs.push_back(0x10000 + static_cast<Addr>(t) * 128);
    b.globalLoad(pc_ld, addrs); // 4 lines, 2 MSHRs
    b.finish();

    TimingStats s = run(kernel, config);
    // Wave 1 (cycle 0): lines 0,1 -> fills 421, 422.
    // Wave 2 (cycle 422): lines 2,3 -> arrivals 542, service
    // 542+0.67, 542.67+0.67 -> fills 843, 844.
    EXPECT_EQ(s.totalCycles, 844u);
    EXPECT_EQ(s.mshrAllocs, 4u);
    EXPECT_EQ(s.mshrPeak, 2u);
    // The replayed instruction is still one instruction.
    EXPECT_EQ(s.totalInsts, 1u);
}

TEST(Timing, DivergentLoadWiderThanMshrFileCompletes)
{
    HardwareConfig config = oneCore();
    config.numMshrs = 4;
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    std::vector<Addr> addrs;
    for (std::uint32_t t = 0; t < 32; ++t)
        addrs.push_back(0x10000 + static_cast<Addr>(t) * 128);
    Reg r = b.globalLoad(pc_ld, addrs); // 32 lines, 4 MSHRs
    b.compute(pc_add, {r});
    b.finish();

    TimingStats s = run(kernel, config); // must not deadlock
    EXPECT_EQ(s.mshrAllocs, 32u);
    EXPECT_EQ(s.totalInsts, 2u);
    EXPECT_GT(s.totalCycles, 421u * 2);
}

TEST(Timing, RoundRobinInterleavesWarps)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        for (int i = 0; i < 4; ++i)
            b.compute(pc);
        b.finish();
    }
    TimingStats s = run(kernel, config);
    // 8 independent instructions, one per cycle: last at 7, done 27.
    EXPECT_EQ(s.totalCycles, 27u);
    EXPECT_EQ(s.totalInsts, 8u);
}

TEST(Timing, GtoMatchesRrOnSymmetricComputeKernel)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        for (int i = 0; i < 4; ++i)
            b.compute(pc);
        b.finish();
    }
    TimingStats rr = run(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats gto =
        run(kernel, config, SchedulingPolicy::GreedyThenOldest);
    EXPECT_EQ(rr.totalCycles, gto.totalCycles);
}

TEST(Timing, MultithreadingHidesStalls)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    // Each warp alone: 5 chained ops = 104 cycles. Four warps can
    // interleave: issue slots are free during stalls.
    for (std::uint32_t w = 0; w < 4; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        Reg r = b.compute(pc);
        for (int i = 0; i < 4; ++i)
            r = b.compute(pc, {r});
        b.finish();
    }
    TimingStats s = run(kernel, config);
    // All four chains proceed concurrently: still ~104 cycles, not
    // 4x.
    EXPECT_LE(s.totalCycles, 110u);
    EXPECT_GE(s.totalCycles, 104u);
}

TEST(Timing, CpiNeverBelowIssueBound)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const auto &workload : microWorkloads()) {
        KernelTrace kernel = workload.generate(config);
        TimingStats s = run(kernel, config);
        EXPECT_GE(s.cpi(), 1.0) << workload.name;
    }
}

TEST(Timing, Deterministic)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    TimingStats a = run(kernel, config);
    TimingStats b = run(kernel, config);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.mshrAllocs, b.mshrAllocs);
}

TEST(Timing, PerCoreCpiDefinition)
{
    HardwareConfig config = oneCore();
    config.numCores = 2;
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, w, config); // one warp per core
        for (int i = 0; i < 10; ++i)
            b.compute(pc);
        b.finish();
    }
    TimingStats s = run(kernel, config);
    EXPECT_EQ(s.coresUsed, 2u);
    EXPECT_EQ(s.totalCycles, 29u);
    // 10 instructions per core over 29 cycles.
    EXPECT_NEAR(s.cpi(), 2.9, 1e-9);
}

class DivergenceSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DivergenceSweep, MoreDivergenceNeverFaster)
{
    // Property: a kernel identical except for higher memory
    // divergence cannot finish sooner.
    HardwareConfig config = oneCore();
    config.warpsPerCore = 8;
    auto build = [&](std::uint32_t degree) {
        KernelTrace kernel("deg" + std::to_string(degree));
        auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
        auto pc_add = kernel.addStatic(Opcode::IntAlu);
        for (std::uint32_t w = 0; w < 8; ++w) {
            TraceBuilder b(kernel, w, 0, config);
            Addr base = 0x1000000ULL * (w + 1);
            for (int it = 0; it < 20; ++it) {
                std::vector<Addr> addrs;
                for (std::uint32_t t = 0; t < 32; ++t) {
                    addrs.push_back(base + (t % degree) * 128ull);
                }
                base += degree * 128ull;
                Reg r = b.globalLoad(pc_ld, addrs);
                b.compute(pc_add, {r});
            }
            b.finish();
        }
        return kernel;
    };

    std::uint32_t degree = GetParam();
    if (degree == 1)
        return; // nothing to compare against
    KernelTrace lo = build(degree / 2);
    KernelTrace hi = build(degree);
    // Allow a small tolerance: at low degrees the two kernels touch
    // different address streams and can differ by cache-indexing
    // noise; real contention effects are far larger than 5%.
    EXPECT_GE(static_cast<double>(run(hi, config).totalCycles),
              0.95 * static_cast<double>(run(lo, config).totalCycles));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DivergenceSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

class PolicySweep
    : public ::testing::TestWithParam<SchedulingPolicy>
{
};

TEST_P(PolicySweep, AllMicroKernelsComplete)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const auto &workload : microWorkloads()) {
        KernelTrace kernel = workload.generate(config);
        TimingStats s = run(kernel, config, GetParam());
        EXPECT_EQ(s.totalInsts, kernel.totalInsts()) << workload.name;
        EXPECT_GT(s.totalCycles, 0u) << workload.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(SchedulingPolicy::RoundRobin,
                      SchedulingPolicy::GreedyThenOldest));

} // namespace
} // namespace gpumech
