/**
 * @file
 * Tests for the interval algorithm (Section III-B, Eq. 4) and the
 * interval-profile accessors, including a replica of the paper's
 * Figure 6 worked example.
 */

#include <gtest/gtest.h>

#include "core/interval_builder.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    return c;
}

/** Build a profile for a single hand-made warp. */
IntervalProfile
profileOf(const KernelTrace &kernel, const HardwareConfig &config)
{
    CollectorResult inputs = collectInputs(kernel, config);
    return buildIntervalProfile(kernel.warp(0), inputs, config);
}

TEST(Interval, NoStallsIsOneInterval)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    for (int i = 0; i < 8; ++i)
        b.compute(pc);
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_EQ(p.intervals.size(), 1u);
    EXPECT_EQ(p.intervals[0].numInsts, 8u);
    EXPECT_DOUBLE_EQ(p.intervals[0].stallCycles, 0.0);
    EXPECT_EQ(p.intervals[0].cause, StallCause::None);
    EXPECT_EQ(p.totalInsts(), 8u);
}

TEST(Interval, ComputeDependenceStall)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu); // latency 20
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    b.compute(pc, {r});
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_EQ(p.intervals.size(), 2u);
    EXPECT_EQ(p.intervals[0].numInsts, 1u);
    // inst0: issue 0, done 20; inst1 issues at 21 instead of 1:
    // 20 stall cycles.
    EXPECT_DOUBLE_EQ(p.intervals[0].stallCycles, 20.0);
    EXPECT_EQ(p.intervals[0].cause, StallCause::Compute);
    EXPECT_EQ(p.intervals[1].numInsts, 1u);
    EXPECT_DOUBLE_EQ(p.intervals[1].stallCycles, 0.0);
}

TEST(Interval, MemoryDependenceStallUsesAmat)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000}); // cold: AMAT 420
    b.compute(pc_add, {r});
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_EQ(p.intervals.size(), 2u);
    // load: issue 0, done 420; add issues at 421 -> 420 stalls.
    EXPECT_DOUBLE_EQ(p.intervals[0].stallCycles, 420.0);
    EXPECT_EQ(p.intervals[0].cause, StallCause::Memory);
    EXPECT_EQ(p.intervals[0].causePc, pc_ld);
}

TEST(Interval, IndependentInstructionsDoNotStall)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc_ld, {0x10000});
    b.compute(pc_add); // no dep: issues the next cycle
    b.compute(pc_add);
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_EQ(p.intervals.size(), 1u);
    EXPECT_EQ(p.intervals[0].numInsts, 3u);
}

TEST(Interval, Figure6StyleExample)
{
    // A 6-instruction warp shaped like the paper's Figure 6: the
    // first interval's stall is caused by a dependence on its last
    // load; later instructions run stall-free.
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_c = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    b.compute(pc_c);                         // i1
    b.compute(pc_c);                         // i2
    Reg x = b.globalLoad(pc_ld, {0x10000});  // i3 (420-cycle AMAT)
    b.compute(pc_c);                         // i4
    Reg y = b.compute(pc_c, {x});            // i5 depends on i3
    b.compute(pc_c, {y});                    // i6 depends on i5
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_EQ(p.intervals.size(), 3u);
    // Interval 1: i1..i4 (4 insts), stall until the load completes:
    // load issues at 2, done at 422; i5 issues at 423 instead of 4.
    EXPECT_EQ(p.intervals[0].numInsts, 4u);
    EXPECT_DOUBLE_EQ(p.intervals[0].stallCycles, 419.0);
    EXPECT_EQ(p.intervals[0].cause, StallCause::Memory);
    // Interval 2: i5, stalling 20 cycles for the IntAlu chain.
    EXPECT_EQ(p.intervals[1].numInsts, 1u);
    EXPECT_DOUBLE_EQ(p.intervals[1].stallCycles, 20.0);
    EXPECT_EQ(p.intervals[1].cause, StallCause::Compute);
    // Interval 3: i6, end of trace.
    EXPECT_EQ(p.intervals[2].numInsts, 1u);
    EXPECT_EQ(p.intervals[2].cause, StallCause::None);
}

TEST(Interval, AnnotationCountsMemoryWork)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.globalLoad(pc_ld, {0x10000, 0x20000}); // 2 cold misses
    b.globalStore(pc_st, {0x30000, 0x40000, 0x50000});
    b.compute(pc_add, {r});
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    ASSERT_GE(p.intervals.size(), 1u);
    const Interval &iv = p.intervals[0];
    // Loads: 2 requests, all L1 misses and L2 misses.
    EXPECT_DOUBLE_EQ(iv.mshrReqs, 2.0);
    // DRAM-bound: 2 load misses + 3 store requests.
    EXPECT_DOUBLE_EQ(iv.dramReqs, 5.0);
    // One L1-missing load instruction.
    EXPECT_DOUBLE_EQ(iv.memInsts, 1.0);
}

TEST(Interval, ProfileAccessors)
{
    IntervalProfile p;
    p.intervals.push_back(Interval{4, 10.0, StallCause::Compute, 0,
                                   0.0, 0.0, 0.0});
    p.intervals.push_back(Interval{6, 30.0, StallCause::Memory, 1,
                                   0.0, 0.0, 0.0});
    EXPECT_EQ(p.totalInsts(), 10u);
    EXPECT_DOUBLE_EQ(p.totalStallCycles(), 40.0);
    EXPECT_DOUBLE_EQ(p.totalCycles(1.0), 50.0);
    EXPECT_DOUBLE_EQ(p.warpPerf(1.0), 0.2); // Eq. 5
    EXPECT_DOUBLE_EQ(p.avgIntervalInsts(), 5.0); // Eq. 13
}

TEST(Interval, EmptyProfileIsSafe)
{
    IntervalProfile p;
    EXPECT_EQ(p.totalInsts(), 0u);
    EXPECT_DOUBLE_EQ(p.warpPerf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(p.avgIntervalInsts(), 0.0);
}

TEST(Interval, EveryInstructionBelongsToExactlyOneInterval)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    CollectorResult inputs = collectInputs(kernel, config);
    auto profiles = buildAllProfiles(kernel, inputs, config);
    ASSERT_EQ(profiles.size(), kernel.numWarps());
    for (std::uint32_t w = 0; w < profiles.size(); ++w) {
        EXPECT_EQ(profiles[w].totalInsts(), kernel.warp(w).numInsts());
        EXPECT_EQ(profiles[w].warpId, kernel.warp(w).warpId());
    }
}

TEST(Interval, ParallelProfilingMatchesSerial)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_control_divergent").generate(config);
    CollectorResult inputs = collectInputs(kernel, config);
    auto serial = buildAllProfiles(kernel, inputs, config);
    for (unsigned threads : {2u, 3u, 8u}) {
        auto parallel =
            buildAllProfilesParallel(kernel, inputs, config, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t w = 0; w < serial.size(); ++w) {
            ASSERT_EQ(parallel[w].intervals.size(),
                      serial[w].intervals.size())
                << "threads=" << threads << " warp=" << w;
            for (std::size_t i = 0; i < serial[w].intervals.size();
                 ++i) {
                EXPECT_EQ(parallel[w].intervals[i].numInsts,
                          serial[w].intervals[i].numInsts);
                EXPECT_DOUBLE_EQ(parallel[w].intervals[i].stallCycles,
                                 serial[w].intervals[i].stallCycles);
            }
        }
    }
}

TEST(Interval, WarpPerfEqualsSingleWarpTimingIpc)
{
    // The interval algorithm is the analytic twin of the timing
    // simulator for one warp alone: their cycle counts must agree
    // closely on a compute-only kernel (exactly, modulo the final
    // instruction's latency accounting).
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    for (int i = 0; i < 19; ++i)
        r = b.compute(pc, {r});
    b.finish();

    IntervalProfile p = profileOf(kernel, config);
    // Serial chain of 20: issue at k*21; total cycles ~ 20 insts +
    // 19*20 stall = 400.
    EXPECT_DOUBLE_EQ(p.totalCycles(1.0), 400.0);
}

} // namespace
} // namespace gpumech
