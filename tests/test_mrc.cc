/**
 * @file
 * Tests for the MRC evaluation layer: reuse-distance tracking, SHARDS
 * sampling, the balanced-mapping associativity conversion, the
 * exactness contract of deriveCollectorResult() against the functional
 * collector, and the sweep-mode plumbing (including bit-identity of
 * --sweep-mode=rerun with the pre-MRC engine, pinned by a golden CSV).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "collector/input_collector.hh"
#include "collector/mrc_collector.hh"
#include "common/status.hh"
#include "core/gpumech.hh"
#include "harness/sweep.hh"
#include "mem/mrc.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

// ---------------------------------------------------------------------
// ReuseDistanceTracker
// ---------------------------------------------------------------------

TEST(ReuseDistance, ColdAccessesAndBasicDistances)
{
    ReuseDistanceTracker t;
    EXPECT_EQ(t.access(0xa), mrcColdDistance);
    EXPECT_EQ(t.access(0xb), mrcColdDistance);
    // One distinct line (b) touched since a's previous access.
    EXPECT_EQ(t.access(0xa), 1u);
    // Immediate re-reference.
    EXPECT_EQ(t.access(0xa), 0u);
    EXPECT_EQ(t.access(0xb), 1u);
    EXPECT_EQ(t.uniqueLines(), 2u);
    EXPECT_EQ(t.accesses(), 5u);
}

TEST(ReuseDistance, DistanceCountsDistinctLinesNotAccesses)
{
    ReuseDistanceTracker t;
    t.access(0x1);
    // Touch one other line many times: still distance 1.
    for (int i = 0; i < 10; ++i)
        t.access(0x2);
    EXPECT_EQ(t.access(0x1), 1u);
}

TEST(ReuseDistance, SurvivesFenwickGrowth)
{
    // The tree starts at 64 stamps and doubles; 1000 distinct lines
    // crosses several resizes and the root-node live-count fixup.
    ReuseDistanceTracker t;
    for (Addr line = 0; line < 1000; ++line)
        EXPECT_EQ(t.access(line), mrcColdDistance);
    EXPECT_EQ(t.access(0), 999u);
    EXPECT_EQ(t.access(999), 1u);
    EXPECT_EQ(t.uniqueLines(), 1000u);
}

// ---------------------------------------------------------------------
// ShardsSampler
// ---------------------------------------------------------------------

TEST(Shards, RateOneIsExact)
{
    ShardsSampler s(1.0);
    for (Addr line : {0ull, 1ull, 0xdeadbeefull, ~0ull})
        EXPECT_TRUE(s.sampled(line));
    EXPECT_DOUBLE_EQ(s.weight(), 1.0);
    EXPECT_EQ(s.unscale(7), 7u);
    EXPECT_EQ(s.unscale(mrcColdDistance), mrcColdDistance);
}

TEST(Shards, SubsamplingScalesWeightAndDistance)
{
    ShardsSampler s(0.5);
    EXPECT_DOUBLE_EQ(s.weight(), 2.0);
    EXPECT_EQ(s.unscale(7), 14u);
    // Cold stays cold; near-max distances saturate below the sentinel.
    EXPECT_EQ(s.unscale(mrcColdDistance), mrcColdDistance);
    EXPECT_EQ(s.unscale(mrcColdDistance - 1), mrcColdDistance - 1);
}

TEST(Shards, SampledSetIsDeterministicAndRoughlyRateSized)
{
    ShardsSampler s(0.25);
    std::size_t hits = 0;
    for (Addr line = 0; line < 4096; ++line)
        hits += s.sampled(line) ? 1 : 0;
    // splitmix64 is uniform; 4096 draws at p=0.25 stay well within
    // this deterministic band.
    EXPECT_GT(hits, 4096 * 0.2);
    EXPECT_LT(hits, 4096 * 0.3);
    ShardsSampler again(0.25);
    for (Addr line = 0; line < 256; ++line)
        EXPECT_EQ(s.sampled(line), again.sampled(line));
}

// ---------------------------------------------------------------------
// assocHitProbability
// ---------------------------------------------------------------------

TEST(AssocHit, ColdNeverHits)
{
    EXPECT_DOUBLE_EQ(assocHitProbability(mrcColdDistance, 1, 8), 0.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(mrcColdDistance, 64, 8), 0.0);
}

TEST(AssocHit, FullyAssociativeIsExactStackDistance)
{
    EXPECT_DOUBLE_EQ(assocHitProbability(0, 1, 8), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(7, 1, 8), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(8, 1, 8), 0.0);
    // Degenerate single-line cache: only immediate re-reference hits.
    EXPECT_DOUBLE_EQ(assocHitProbability(0, 1, 1), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(1, 1, 1), 0.0);
}

TEST(AssocHit, BalancedMappingThresholdIsCapacity)
{
    // 64 sets x 8 ways: resident iff fewer than 512 distinct lines
    // intervene.
    EXPECT_DOUBLE_EQ(assocHitProbability(0, 64, 8), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(511, 64, 8), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(512, 64, 8), 0.0);
    // Non-power-of-two set count (the Table I L2 shape).
    EXPECT_DOUBLE_EQ(assocHitProbability(768 * 8 - 1, 768, 8), 1.0);
    EXPECT_DOUBLE_EQ(assocHitProbability(768 * 8, 768, 8), 0.0);
}

// ---------------------------------------------------------------------
// deriveCollectorResult: exactness contract
// ---------------------------------------------------------------------

/** Small machine used throughout: cache behaviour visible, fast. */
HardwareConfig
smallMachine()
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    return config;
}

/** Make both levels fully associative (one set) at unchanged sizes. */
HardwareConfig
fullyAssociative(HardwareConfig config)
{
    config.l1Assoc = config.l1SizeBytes / config.l1LineBytes;
    config.l2Assoc = config.l2SizeBytes / config.l2LineBytes;
    return config;
}

void
expectSameCollectorResult(const CollectorResult &derived,
                          const CollectorResult &simulated,
                          const std::string &context)
{
    ASSERT_EQ(derived.pcs.size(), simulated.pcs.size()) << context;
    for (std::size_t pc = 0; pc < derived.pcs.size(); ++pc) {
        const PcProfile &d = derived.pcs[pc];
        const PcProfile &s = simulated.pcs[pc];
        EXPECT_EQ(d.instCount, s.instCount) << context << " pc " << pc;
        EXPECT_EQ(d.instL1Hit, s.instL1Hit) << context << " pc " << pc;
        EXPECT_EQ(d.instL2Hit, s.instL2Hit) << context << " pc " << pc;
        EXPECT_EQ(d.instL2Miss, s.instL2Miss)
            << context << " pc " << pc;
        EXPECT_EQ(d.reqCount, s.reqCount) << context << " pc " << pc;
        EXPECT_EQ(d.reqL1Miss, s.reqL1Miss) << context << " pc " << pc;
        EXPECT_EQ(d.reqL2Miss, s.reqL2Miss) << context << " pc " << pc;
        EXPECT_DOUBLE_EQ(derived.pcLatency[pc], simulated.pcLatency[pc])
            << context << " pc " << pc;
    }
    EXPECT_DOUBLE_EQ(derived.avgMissLatency, simulated.avgMissLatency)
        << context;
    EXPECT_DOUBLE_EQ(derived.l1HitRate, simulated.l1HitRate) << context;
    EXPECT_DOUBLE_EQ(derived.l2HitRate, simulated.l2HitRate) << context;
}

TEST(MrcDerive, ExactOnFullyAssociativeLruUnsampled)
{
    // The contract: rate 1.0 + LRU + fully-associative geometry (with
    // an L2 large enough that only cold lines miss it) reproduces the
    // functional collector bit-for-bit, per PC.
    HardwareConfig config = fullyAssociative(smallMachine());
    for (const Workload &w : microWorkloads()) {
        KernelTrace kernel = w.generate(config);
        MrcProfile profile = collectMrcProfile(kernel, config, 1.0);
        CollectorResult derived =
            deriveCollectorResult(profile, kernel, config);
        CollectorResult simulated = collectInputs(kernel, config);
        expectSameCollectorResult(derived, simulated, w.name);
        EXPECT_TRUE(derived.mrcDerived);
        EXPECT_FALSE(derived.mrcApproximate) << derived.mrcApproximation;
        EXPECT_FALSE(simulated.mrcDerived);
    }
}

TEST(MrcDerive, ExactWithSingleLineL1)
{
    // One-line fully-associative L1 (hit iff immediate re-reference):
    // the harshest L1 filter, still exact because the big L2 turns the
    // union-stream approximation into "only cold misses".
    HardwareConfig config = fullyAssociative(smallMachine());
    config.l1SizeBytes = config.l1LineBytes;
    config.l1Assoc = 1;
    for (const char *name : {"micro_write_burst", "micro_l1_resident",
                             "micro_pointer_chase"}) {
        const Workload &w = workloadByName(name);
        KernelTrace kernel = w.generate(config);
        MrcProfile profile = collectMrcProfile(kernel, config, 1.0);
        CollectorResult derived =
            deriveCollectorResult(profile, kernel, config);
        CollectorResult simulated = collectInputs(kernel, config);
        expectSameCollectorResult(derived, simulated, name);
    }
}

TEST(MrcDerive, ProfileIsGeometryIndependent)
{
    // One profile collected once must serve multiple geometries; the
    // profile object is untouched by derivation.
    HardwareConfig base = smallMachine();
    const Workload &w = workloadByName("micro_l1_resident");
    KernelTrace kernel = w.generate(base);
    MrcProfile profile = collectMrcProfile(kernel, base, 1.0);
    std::uint64_t total = profile.totalLoadLines;

    double last_hit_rate = -1.0;
    bool varied = false;
    for (std::uint32_t kb : {1u, 4u, 32u}) {
        HardwareConfig config = base;
        config.l1SizeBytes = kb * 1024;
        CollectorResult derived =
            deriveCollectorResult(profile, kernel, config);
        if (last_hit_rate >= 0.0 &&
            derived.l1HitRate != last_hit_rate)
            varied = true;
        // Growing the L1 never lowers the derived hit rate.
        EXPECT_GE(derived.l1HitRate, last_hit_rate);
        last_hit_rate = derived.l1HitRate;
    }
    EXPECT_TRUE(varied); // the sweep axis actually moved the answer
    EXPECT_EQ(profile.totalLoadLines, total);
}

TEST(MrcDerive, ApproximationFlagsAndReasons)
{
    HardwareConfig exact_cfg = fullyAssociative(smallMachine());
    const Workload &w = workloadByName("micro_write_burst");
    KernelTrace kernel = w.generate(exact_cfg);
    MrcProfile profile = collectMrcProfile(kernel, exact_cfg, 1.0);

    // Set-associative geometry is flagged.
    HardwareConfig set_assoc = smallMachine();
    CollectorResult d1 =
        deriveCollectorResult(profile, kernel, set_assoc);
    EXPECT_TRUE(d1.mrcApproximate);
    EXPECT_NE(d1.mrcApproximation.find("set-associative"),
              std::string::npos);

    // A sampled profile is flagged.
    MrcProfile sampled = collectMrcProfile(kernel, exact_cfg, 0.5);
    CollectorResult d2 =
        deriveCollectorResult(sampled, kernel, exact_cfg);
    EXPECT_TRUE(d2.mrcApproximate);
    EXPECT_NE(d2.mrcApproximation.find("sampled"), std::string::npos);

    // Non-LRU replacement is flagged.
    HardwareConfig arc_cfg = exact_cfg;
    arc_cfg.replacementPolicy = 3;
    CollectorResult d3 = deriveCollectorResult(profile, kernel, arc_cfg);
    EXPECT_TRUE(d3.mrcApproximate);
    EXPECT_NE(d3.mrcApproximation.find("non-LRU"), std::string::npos);
}

TEST(MrcDerive, LineSizeMismatchThrows)
{
    HardwareConfig config = smallMachine();
    const Workload &w = workloadByName("micro_stream");
    KernelTrace kernel = w.generate(config);
    MrcProfile profile = collectMrcProfile(kernel, config, 1.0);

    HardwareConfig other_line = config;
    other_line.l1LineBytes = 64;
    other_line.l2LineBytes = 64;
    try {
        deriveCollectorResult(profile, kernel, other_line);
        FAIL() << "line-size mismatch must throw";
    } catch (const StatusException &e) {
        EXPECT_EQ(e.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("--sweep-mode=rerun"),
                  std::string::npos);
    }
}

TEST(MrcDerive, PcCountMismatchThrows)
{
    HardwareConfig config = smallMachine();
    const Workload &w = workloadByName("micro_stream");
    KernelTrace kernel = w.generate(config);
    MrcProfile profile = collectMrcProfile(kernel, config, 1.0);
    profile.pcs.pop_back();
    EXPECT_THROW(deriveCollectorResult(profile, kernel, config),
                 StatusException);
}

TEST(MrcDerive, SamplingDriftIsBounded)
{
    // Sampling is hash-based and deterministic; the rate-0.5 aggregate
    // hit rates measured on the micro suite sit within 0.025 of exact,
    // so 0.05 is a stable regression band (not a statistical test).
    HardwareConfig config = smallMachine();
    for (const Workload &w : microWorkloads()) {
        KernelTrace kernel = w.generate(config);
        MrcProfile full = collectMrcProfile(kernel, config, 1.0);
        MrcProfile half = collectMrcProfile(kernel, config, 0.5);
        CollectorResult df = deriveCollectorResult(full, kernel, config);
        CollectorResult dh = deriveCollectorResult(half, kernel, config);
        EXPECT_NEAR(dh.l1HitRate, df.l1HitRate, 0.05) << w.name;
        EXPECT_NEAR(dh.l2HitRate, df.l2HitRate, 0.05) << w.name;
        // Exact totals are carried unsampled.
        EXPECT_EQ(half.totalLoadLines, full.totalLoadLines) << w.name;
        EXPECT_LE(half.sampledLoadLines, full.sampledLoadLines)
            << w.name;
    }
}

// ---------------------------------------------------------------------
// Model-level drift: MRC path vs rerun path
// ---------------------------------------------------------------------

TEST(MrcSweep, ModelCpiDriftWithinTwoPercentOfRerun)
{
    // The PR's accuracy gate, in miniature: across a cache-geometry
    // subgrid, the unsampled MRC path's model CPI stays within 2% of
    // per-cell functional re-simulation for every micro kernel.
    HardwareConfig base = smallMachine();
    struct Cell
    {
        std::uint32_t l1Kb;
        std::uint32_t l2Kb;
    };
    const Cell cells[] = {{1, 16}, {2, 6}, {4, 48}, {16, 192}};
    for (const Workload &w : microWorkloads()) {
        KernelTrace kernel = w.generate(base);
        GpuMechProfiler rerun(kernel, base);
        auto profile = std::make_shared<const MrcProfile>(
            collectMrcProfile(kernel, base, 1.0));
        GpuMechProfiler mrc(kernel, base, RepSelection::Clustering, 2,
                            1, nullptr, profile);
        for (const Cell &cell : cells) {
            HardwareConfig config = base;
            config.l1SizeBytes = cell.l1Kb * 1024;
            config.l2SizeBytes = cell.l2Kb * 1024;
            double want =
                rerun
                    .evaluateAt(config, SchedulingPolicy::RoundRobin)
                    .cpi;
            double got =
                mrc.evaluateAt(config, SchedulingPolicy::RoundRobin)
                    .cpi;
            ASSERT_GT(want, 0.0);
            EXPECT_LE(std::abs(got - want) / want, 0.02)
                << w.name << " at l1 " << cell.l1Kb << "KB / l2 "
                << cell.l2Kb << "KB (rerun " << want << ", mrc " << got
                << ")";
        }
    }
}

// ---------------------------------------------------------------------
// Sweep plumbing: golden bit-identity of rerun mode, mode parsing
// ---------------------------------------------------------------------

/**
 * Captured from the pre-MRC engine (commit 25f8889) by running exactly
 * the sweep reconstructed below; also stored at
 * tests/golden/sweep_cachegeom_rerun.csv. --sweep-mode=rerun must
 * keep reproducing it byte-for-byte. The MT_MSHR_BAND row was
 * re-captured when the bandwidth queue gained its continuity clamp at
 * kBandwidthRhoClamp (the only model whose numbers moved).
 */
const char *const sweepGoldenCsv =
    "model,l1-1kb,l1-2kb,l1-4kb,l2-4kb,l2-16kb\n"
    "Naive_Interval,0.092766,0.118674,0.153197,0.161636,0.174839\n"
    "Markov_Chain,0.071879,0.097554,0.128118,0.135884,0.147205\n"
    "MT,0.091762,0.117320,0.151579,0.159949,0.173040\n"
    "MT_MSHR,0.091762,0.117320,0.151579,0.159949,0.173040\n"
    "MT_MSHR_BAND,0.076617,0.088507,0.086207,0.085991,0.086426\n";

std::vector<Workload>
goldenSweepKernels()
{
    std::vector<Workload> kernels;
    for (const Workload &w : microWorkloads()) {
        if (w.name == "micro_stream" || w.name == "micro_l1_resident" ||
            w.name == "micro_write_burst" ||
            w.name == "micro_pointer_chase")
            kernels.push_back(w);
    }
    return kernels;
}

std::vector<SweepPoint>
goldenSweepPoints()
{
    std::vector<SweepPoint> points;
    for (std::uint32_t kb : {1u, 2u, 4u}) {
        HardwareConfig config;
        config.numCores = 2;
        config.warpsPerCore = 4;
        config.l1SizeBytes = kb * 1024;
        points.push_back({"l1-" + std::to_string(kb) + "kb", config});
    }
    for (std::uint32_t kb : {4u, 16u}) {
        HardwareConfig config;
        config.numCores = 2;
        config.warpsPerCore = 4;
        config.l2SizeBytes = kb * 1024;
        points.push_back({"l2-" + std::to_string(kb) + "kb", config});
    }
    return points;
}

TEST(MrcSweep, RerunModeIsBitIdenticalToGolden)
{
    SweepResult result =
        runSweep(goldenSweepKernels(), goldenSweepPoints(),
                 SchedulingPolicy::RoundRobin, false, 1);
    ASSERT_TRUE(result.complete());
    std::ostringstream csv;
    printSweepCsv(csv, result);
    EXPECT_EQ(csv.str(), sweepGoldenCsv);
}

TEST(MrcSweep, MrcModeCompletesAndStaysClose)
{
    // Same sweep through the MRC path: every cell must evaluate, and
    // the per-model average errors (vs the timing oracle) must land
    // near the rerun numbers — the model inputs changed by at most the
    // derivation approximations.
    SweepOptions options;
    options.mode = SweepMode::Mrc;
    SweepResult rerun =
        runSweep(goldenSweepKernels(), goldenSweepPoints(),
                 SchedulingPolicy::RoundRobin, false, 1);
    SweepResult mrc =
        runSweep(goldenSweepKernels(), goldenSweepPoints(),
                 SchedulingPolicy::RoundRobin, false, 1, nullptr, {},
                 options);
    ASSERT_TRUE(mrc.complete());
    ASSERT_EQ(mrc.labels, rerun.labels);
    for (const auto &[model, averages] : rerun.averages) {
        const auto it = mrc.averages.find(model);
        ASSERT_NE(it, mrc.averages.end());
        for (std::size_t i = 0; i < averages.size(); ++i) {
            EXPECT_NEAR(it->second[i], averages[i], 0.02)
                << toString(model) << " at " << rerun.labels[i];
        }
    }
}

TEST(MrcSweep, ParseSweepMode)
{
    SweepMode mode = SweepMode::Mrc;
    EXPECT_TRUE(parseSweepMode("rerun", mode));
    EXPECT_EQ(mode, SweepMode::Rerun);
    EXPECT_TRUE(parseSweepMode("mrc", mode));
    EXPECT_EQ(mode, SweepMode::Mrc);
    SweepMode untouched = SweepMode::Rerun;
    EXPECT_FALSE(parseSweepMode("bogus", untouched));
    EXPECT_EQ(untouched, SweepMode::Rerun);
    EXPECT_EQ(toString(SweepMode::Rerun), "rerun");
    EXPECT_EQ(toString(SweepMode::Mrc), "mrc");
}

} // namespace
} // namespace gpumech
