/**
 * @file
 * Unit tests for the common library: statistics helpers, RNG
 * determinism, table rendering, and the hardware configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace gpumech
{
namespace
{

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 100.0), 10.0);
}

TEST(Stats, RelativeError)
{
    EXPECT_NEAR(relativeError(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(relativeError(0.9, 1.0), 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(relativeError(0.0, 0.0), 0.0);
    EXPECT_TRUE(std::isinf(relativeError(1.0, 0.0)));
}

TEST(Stats, SignedRelativeError)
{
    EXPECT_DOUBLE_EQ(signedRelativeError(0.5, 1.0), -0.5);
    EXPECT_DOUBLE_EQ(signedRelativeError(2.0, 1.0), 1.0);
}

TEST(Stats, FractionBelow)
{
    EXPECT_DOUBLE_EQ(fractionBelow({0.1, 0.3, 0.5, 0.7}, 0.4), 0.5);
    EXPECT_DOUBLE_EQ(fractionBelow({}, 0.4), 0.0);
}

TEST(Stats, SummaryTracksMinMaxMean)
{
    Summary s;
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, FromStringDiffersByName)
{
    Rng a = Rng::fromString("kernel_a");
    Rng b = Rng::fromString("kernel_b");
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.132, 1), "13.2%");
}

TEST(Table, BarChartScalesToMax)
{
    std::ostringstream os;
    printBarChart(os, "title", {"a", "b"}, {1.0, 2.0}, 10);
    std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    // b gets the full width, a half of it.
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("##### 1.000"), std::string::npos);
}

TEST(Table, BarChartHandlesAllZeroValues)
{
    std::ostringstream os;
    printBarChart(os, "zeros", {"a"}, {0.0}, 10);
    EXPECT_NE(os.str().find("0.000"), std::string::npos);
}

TEST(Table, GroupedBarChartRendersAllSeries)
{
    std::ostringstream os;
    printGroupedBarChart(os, "grouped", {"g1", "g2"}, {"s1", "s2"},
                         {{1.0, 2.0}, {3.0, 4.0}}, 8);
    std::string out = os.str();
    for (const char *needle : {"g1", "g2", "s1", "s2"})
        EXPECT_NE(out.find(needle), std::string::npos);
}

TEST(Logging, MsgConcatenatesPieces)
{
    EXPECT_EQ(msg("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(msg(), "");
}

TEST(Config, BaselineMatchesTableI)
{
    HardwareConfig c = HardwareConfig::baseline();
    EXPECT_EQ(c.numCores, 16u);
    EXPECT_EQ(c.warpsPerCore, 32u);
    EXPECT_EQ(c.warpSize, 32u);
    EXPECT_EQ(c.l1SizeBytes, 32u * 1024);
    EXPECT_EQ(c.numMshrs, 32u);
    EXPECT_EQ(c.l2SizeBytes, 768u * 1024);
    EXPECT_EQ(c.l1HitLatency, 25u);
    EXPECT_EQ(c.l2HitLatency, 120u);
    EXPECT_EQ(c.dramAccessLatency, 300u);
    EXPECT_DOUBLE_EQ(c.dramBandwidthGBs, 192.0);
    EXPECT_EQ(c.latency.fpAlu, 25u);
}

TEST(Config, DerivedLatencies)
{
    HardwareConfig c = HardwareConfig::baseline();
    EXPECT_EQ(c.l2MissLatency(), 420u);
    EXPECT_NEAR(c.dramServiceCycles(), 128.0 / 192.0, 1e-12);
}

TEST(Config, DramServiceScalesWithBandwidth)
{
    HardwareConfig c = HardwareConfig::baseline();
    double base = c.dramServiceCycles();
    c.dramBandwidthGBs = 96.0;
    EXPECT_NEAR(c.dramServiceCycles(), base * 2.0, 1e-12);
}

TEST(Config, PolicyNames)
{
    EXPECT_EQ(toString(SchedulingPolicy::RoundRobin), "RR");
    EXPECT_EQ(toString(SchedulingPolicy::GreedyThenOldest), "GTO");
}

TEST(Config, SummaryMentionsKeyParameters)
{
    std::string s = HardwareConfig::baseline().summary();
    EXPECT_NE(s.find("16 cores"), std::string::npos);
    EXPECT_NE(s.find("192"), std::string::npos);
}

} // namespace
} // namespace gpumech
