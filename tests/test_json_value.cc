/**
 * @file
 * JSON parser (common/json_value) unit tests: grammar acceptance,
 * strictness (trailing garbage, control characters, depth cap),
 * escape decoding, and the typed convenience lookups the request
 * parser is built on. A writer→parser round trip pins the two sides
 * of the JSON layer to each other.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/json_value.hh"

using namespace gpumech;

namespace
{

JsonValue
mustParse(const std::string &text)
{
    Result<JsonValue> r = parseJson(text);
    EXPECT_TRUE(r.ok()) << r.status().toString() << " for: " << text;
    return r.ok() ? std::move(r).value() : JsonValue();
}

StatusCode
parseCode(const std::string &text)
{
    Result<JsonValue> r = parseJson(text);
    return r.ok() ? StatusCode::Ok : r.status().code();
}

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(mustParse("null").isNull());
    EXPECT_TRUE(mustParse("true").boolean());
    EXPECT_FALSE(mustParse("false").boolean());
    EXPECT_DOUBLE_EQ(mustParse("42").number(), 42.0);
    EXPECT_DOUBLE_EQ(mustParse("-1.5e2").number(), -150.0);
    EXPECT_DOUBLE_EQ(mustParse("0").number(), 0.0);
    EXPECT_EQ(mustParse("\"hi\"").string(), "hi");
}

TEST(JsonValue, ParsesContainers)
{
    JsonValue v = mustParse(
        R"({"a":[1,2,3],"b":{"c":"d"},"e":null})");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members().size(), 3u);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[1].number(), 2.0);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(b->find("c"), nullptr);
    EXPECT_EQ(b->find("c")->string(), "d");
    EXPECT_TRUE(v.find("e")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, EmptyContainersAndWhitespace)
{
    EXPECT_EQ(mustParse(" [ ] ").items().size(), 0u);
    EXPECT_EQ(mustParse("\t{ }\n").members().size(), 0u);
}

TEST(JsonValue, DecodesEscapes)
{
    JsonValue v = mustParse(R"("a\"b\\c\n\tA")");
    EXPECT_EQ(v.string(), "a\"b\\c\n\tA");
}

TEST(JsonValue, DecodesSurrogatePairToUtf8)
{
    // U+1F600 as a surrogate pair -> 4-byte UTF-8.
    JsonValue v = mustParse(R"("😀")");
    EXPECT_EQ(v.string(), "\xF0\x9F\x98\x80");
}

TEST(JsonValue, RejectsUnpairedSurrogates)
{
    EXPECT_EQ(parseCode(R"("\uD83D")"), StatusCode::ParseError);
    EXPECT_EQ(parseCode(R"("\uDE00")"), StatusCode::ParseError);
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    EXPECT_EQ(parseCode(""), StatusCode::ParseError);
    EXPECT_EQ(parseCode("{"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("[1,]"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("{\"a\":}"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("{\"a\" 1}"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("{a:1}"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("tru"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("01"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("1."), StatusCode::ParseError);
    EXPECT_EQ(parseCode("1e"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("-"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("\"unterminated"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("\"bad\x01ctl\""), StatusCode::ParseError);
    EXPECT_EQ(parseCode(R"("\q")"), StatusCode::ParseError);
}

TEST(JsonValue, RejectsTrailingGarbage)
{
    EXPECT_EQ(parseCode("{} extra"), StatusCode::ParseError);
    EXPECT_EQ(parseCode("1 2"), StatusCode::ParseError);
}

TEST(JsonValue, ErrorsCarryByteOffset)
{
    Result<JsonValue> r = parseJson("[1, x]");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("json offset 4"),
              std::string::npos)
        << r.status().message();
}

TEST(JsonValue, EnforcesDepthCap)
{
    std::string deep(jsonMaxDepth + 8, '[');
    deep += std::string(jsonMaxDepth + 8, ']');
    EXPECT_EQ(parseCode(deep), StatusCode::ParseError);

    // At the cap itself, the document still parses.
    std::string ok(jsonMaxDepth, '[');
    ok += std::string(jsonMaxDepth, ']');
    EXPECT_EQ(parseCode(ok), StatusCode::Ok);
}

TEST(JsonValue, DuplicateKeysResolveToFirst)
{
    JsonValue v = mustParse(R"({"k":1,"k":2})");
    EXPECT_DOUBLE_EQ(v.find("k")->number(), 1.0);
}

TEST(JsonValue, TypedLookups)
{
    JsonValue v = mustParse(
        R"({"s":"str","n":3.5,"b":true,"nil":null})");

    auto s = v.getString("s");
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value(), "str");
    auto n = v.getNumber("n", 0.0);
    ASSERT_TRUE(n.ok());
    EXPECT_DOUBLE_EQ(n.value(), 3.5);
    auto b = v.getBool("b", false);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(b.value());

    // Absent and null members fall back.
    EXPECT_EQ(v.getString("missing", "fb").value(), "fb");
    EXPECT_DOUBLE_EQ(v.getNumber("nil", 7.0).value(), 7.0);

    // Kind mismatches are InvalidArgument naming the field.
    auto bad = v.getString("n");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(bad.status().message().find("'n'"), std::string::npos);
    EXPECT_FALSE(v.getNumber("s", 0.0).ok());
    EXPECT_FALSE(v.getBool("s", false).ok());
}

TEST(JsonValue, RoundTripsJsonWriterOutput)
{
    JsonWriter w;
    w.field("name", "kernel \"x\"\n");
    w.field("cpi", 1.5);
    w.field("count", std::uint64_t{42});
    w.field("flag", true);
    w.beginObject("nested");
    w.field("inner", "v");
    w.endObject();
    JsonValue v = mustParse(w.finish());
    EXPECT_EQ(v.find("name")->string(), "kernel \"x\"\n");
    EXPECT_DOUBLE_EQ(v.find("cpi")->number(), 1.5);
    EXPECT_DOUBLE_EQ(v.find("count")->number(), 42.0);
    EXPECT_TRUE(v.find("flag")->boolean());
    EXPECT_EQ(v.find("nested")->find("inner")->string(), "v");
}

} // namespace
