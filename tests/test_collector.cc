/**
 * @file
 * Tests for the input collector (Section V): per-PC miss-event
 * distributions, request-level miss rates, AMAT latencies (including
 * the paper's worked example), and avg_miss_latency.
 */

#include <gtest/gtest.h>

#include "collector/input_collector.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    return c;
}

TEST(Collector, ComputePcGetsFixedLatency)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_i = kernel.addStatic(Opcode::IntAlu);
    auto pc_f = kernel.addStatic(Opcode::FpAlu);
    auto pc_s = kernel.addStatic(Opcode::Sfu);
    TraceBuilder b(kernel, 0, 0, config);
    b.compute(pc_i);
    b.compute(pc_f);
    b.compute(pc_s);
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    EXPECT_DOUBLE_EQ(r.latencyOf(pc_i), 20.0);
    EXPECT_DOUBLE_EQ(r.latencyOf(pc_f), 25.0);
    EXPECT_DOUBLE_EQ(r.latencyOf(pc_s), 40.0);
}

TEST(Collector, ColdStreamingLoadIsAllL2Miss)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    for (int i = 0; i < 10; ++i)
        b.globalLoad(pc_ld, {0x10000 + i * 128ull});
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    const PcProfile &p = r.pcs[pc_ld];
    EXPECT_EQ(p.instCount, 10u);
    EXPECT_DOUBLE_EQ(p.fracL2Miss(), 1.0);
    EXPECT_DOUBLE_EQ(p.reqL1MissRate(), 1.0);
    EXPECT_DOUBLE_EQ(p.reqL2MissRate(), 1.0);
    // AMAT = l2MissLatency = 420.
    EXPECT_DOUBLE_EQ(r.latencyOf(pc_ld), 420.0);
    EXPECT_DOUBLE_EQ(r.avgMissLatency, 420.0);
}

TEST(Collector, RepeatedLineBecomesL1Hit)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    for (int i = 0; i < 10; ++i)
        b.globalLoad(pc_ld, {0x10000});
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    const PcProfile &p = r.pcs[pc_ld];
    EXPECT_DOUBLE_EQ(p.fracL1Hit(), 0.9); // 1 cold miss, 9 hits
    EXPECT_DOUBLE_EQ(p.fracL2Miss(), 0.1);
}

TEST(Collector, PaperAmatExample)
{
    // Section V-B: 90% L2 hits (120) + 10% L2 misses (420) -> 150.
    PcProfile p;
    p.op = Opcode::GlobalLoad;
    p.instL2Hit = 90;
    p.instL2Miss = 10;
    EXPECT_DOUBLE_EQ(p.amat(HardwareConfig::baseline()), 150.0);
}

TEST(Collector, DivergentInstClassifiedByWorstRequest)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_warm = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_mixed = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalLoad(pc_warm, {0x10000});          // warm line A
    b.globalLoad(pc_mixed, {0x10000, 0x90000}); // A hits L1, B misses
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    const PcProfile &p = r.pcs[pc_mixed];
    // Instruction-level event: the slowest request (L2 miss).
    EXPECT_DOUBLE_EQ(p.fracL2Miss(), 1.0);
    // Request-level: one of two requests missed L1.
    EXPECT_DOUBLE_EQ(p.reqL1MissRate(), 0.5);
}

TEST(Collector, StoresAreAllDramBoundAndDoNotTouchCaches)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_st = kernel.addStatic(Opcode::GlobalStore);
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    TraceBuilder b(kernel, 0, 0, config);
    b.globalStore(pc_st, {0x10000});
    b.globalLoad(pc_ld, {0x10000}); // store must not have filled it
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    EXPECT_DOUBLE_EQ(r.pcs[pc_st].reqL2MissRate(), 1.0);
    EXPECT_DOUBLE_EQ(r.pcs[pc_st].reqL1MissRate(), 1.0);
    EXPECT_DOUBLE_EQ(r.pcs[pc_ld].fracL2Miss(), 1.0);
    // Stores never stall dependents: unit latency.
    EXPECT_DOUBLE_EQ(r.latencyOf(pc_st), 1.0);
}

TEST(Collector, AvgMissLatencyMixesL2AndDram)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_a = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_b = kernel.addStatic(Opcode::GlobalLoad);
    // Warp 0 warms L2 (via L1 of core 0)... single core: use lines
    // that conflict in L1 but fit in L2: L1 is 32KB (256 lines,
    // 32 sets x 8 ways); 16 lines mapping to one set thrash L1 but
    // stay L2-resident.
    TraceBuilder b(kernel, 0, 0, config);
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 16; ++i) {
            Addr line = 0x10000 + i * (32ull * 128); // same L1 set
            b.globalLoad(rep == 0 ? pc_a : pc_b, {line});
        }
    }
    b.finish();

    CollectorResult r = collectInputs(kernel, config);
    // Second pass misses L1 (thrashed set) but hits L2.
    EXPECT_GT(r.pcs[pc_b].fracL2Hit(), 0.5);
    // avg_miss_latency therefore sits between L2 hit and miss
    // latency.
    EXPECT_GT(r.avgMissLatency, 120.0);
    EXPECT_LT(r.avgMissLatency, 420.0);
}

TEST(Collector, NoL1MissesFallsBackToL2Latency)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    b.compute(pc);
    b.finish();
    CollectorResult r = collectInputs(kernel, config);
    EXPECT_DOUBLE_EQ(r.avgMissLatency, 120.0);
}

TEST(Collector, InstCountsCoverAllOpcodes)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_c = kernel.addStatic(Opcode::IntAlu);
    auto pc_l = kernel.addStatic(Opcode::GlobalLoad);
    for (std::uint32_t w = 0; w < 3; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        b.compute(pc_c);
        b.compute(pc_c);
        b.globalLoad(pc_l, {0x1000 + w * 4096ull});
        b.finish();
    }
    CollectorResult r = collectInputs(kernel, config);
    EXPECT_EQ(r.pcs[pc_c].instCount, 6u);
    EXPECT_EQ(r.pcs[pc_l].instCount, 3u);
    EXPECT_EQ(r.pcs[pc_l].reqCount, 3u);
}

TEST(Collector, RoundRobinInterleavingSharesL1AcrossWarps)
{
    // Two warps on the same core loading the same line: the collector
    // interleaves them, so the second warp's access hits L1.
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::GlobalLoad);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        b.globalLoad(pc, {0x10000});
        b.finish();
    }
    CollectorResult r = collectInputs(kernel, config);
    EXPECT_EQ(r.pcs[pc].instL1Hit, 1u);
    EXPECT_EQ(r.pcs[pc].instL2Miss, 1u);
}

TEST(Collector, Deterministic)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    CollectorResult a = collectInputs(kernel, config);
    CollectorResult b = collectInputs(kernel, config);
    ASSERT_EQ(a.pcLatency.size(), b.pcLatency.size());
    for (std::size_t i = 0; i < a.pcLatency.size(); ++i)
        EXPECT_DOUBLE_EQ(a.pcLatency[i], b.pcLatency[i]);
    EXPECT_DOUBLE_EQ(a.avgMissLatency, b.avgMissLatency);
}

TEST(Collector, HitRatesReported)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    KernelTrace kernel =
        workloadByName("micro_l1_resident").generate(config);
    CollectorResult r = collectInputs(kernel, config);
    EXPECT_GT(r.l1HitRate, 0.8); // hot 2KB set: nearly all hits
}

} // namespace
} // namespace gpumech
