/**
 * @file
 * Error-path tests for the trace text format: malformed inputs must
 * fail loudly (fatal), never parse garbage silently.
 */

#include <gtest/gtest.h>

#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"

namespace gpumech
{
namespace
{

std::string
goodTrace()
{
    HardwareConfig config = HardwareConfig::baseline();
    KernelTrace kernel("good");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad, "in");
    auto pc_add = kernel.addStatic(Opcode::FpAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg x = b.globalLoad(pc_ld, {0x1000});
    b.compute(pc_add, {x});
    b.finish();
    return traceToString(kernel);
}

TEST(TraceIoErrors, GoodTraceParses)
{
    KernelTrace kernel = traceFromString(goodTrace());
    EXPECT_EQ(kernel.name(), "good");
    EXPECT_EQ(kernel.numWarps(), 1u);
}

TEST(TraceIoErrorsDeath, EmptyInput)
{
    EXPECT_DEATH(traceFromString(""), "unexpected end of input");
}

TEST(TraceIoErrorsDeath, MissingKernelHeader)
{
    EXPECT_DEATH(traceFromString("bogus stuff"), "missing 'kernel'");
}

TEST(TraceIoErrorsDeath, UnknownOpcodeMnemonic)
{
    std::string text = goodTrace();
    auto pos = text.find("ld.global");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 9, "ld.bogus1");
    EXPECT_DEATH(traceFromString(text), "unknown opcode");
}

TEST(TraceIoErrorsDeath, TruncatedAfterHeader)
{
    std::string text = goodTrace();
    EXPECT_DEATH(traceFromString(text.substr(0, text.size() / 2)),
                 "unexpected end of input");
}

TEST(TraceIoErrorsDeath, MissingEndTrailer)
{
    std::string text = goodTrace();
    auto pos = text.rfind("end");
    ASSERT_NE(pos, std::string::npos);
    text = text.substr(0, pos);
    EXPECT_DEATH(traceFromString(text), "unexpected end of input");
}

TEST(TraceIoErrorsDeath, PcOutOfRange)
{
    // Corrupt the first instruction's pc to 99 (static count is 2).
    std::string text = goodTrace();
    auto pos = text.find("warp 0 0 2\n");
    ASSERT_NE(pos, std::string::npos);
    pos += std::string("warp 0 0 2\n").size();
    text.replace(pos, 1, "9"); // pc "0..." -> "9..."
    EXPECT_DEATH(traceFromString(text), "");
}

TEST(TraceIoErrorsDeath, NonNumericWarpCount)
{
    std::string text = goodTrace();
    auto pos = text.find("warps 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "warps x");
    EXPECT_DEATH(traceFromString(text), "expected number");
}

TEST(TraceIoErrorsDeath, NonSequentialStaticPcs)
{
    std::string text =
        "kernel t\nstatic 2\n0 ialu -\n5 falu -\nwarps 0\nend\n";
    EXPECT_DEATH(traceFromString(text), "sequential");
}

} // namespace
} // namespace gpumech
