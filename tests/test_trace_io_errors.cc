/**
 * @file
 * Error-path tests for the trace text format. parseTrace returns a
 * Status instead of dying: each malformed-input class maps to a
 * distinct StatusCode and the message carries the 1-based line the
 * parser stopped at, so a batch service can log exactly what broke
 * where. The fatal wrappers (traceFromString) stay covered by the
 * death tests at the bottom.
 */

#include <gtest/gtest.h>

#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"

namespace gpumech
{
namespace
{

std::string
goodTrace()
{
    HardwareConfig config = HardwareConfig::baseline();
    KernelTrace kernel("good");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad, "in");
    auto pc_add = kernel.addStatic(Opcode::FpAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg x = b.globalLoad(pc_ld, {0x1000});
    b.compute(pc_add, {x});
    b.finish();
    return traceToString(kernel);
}

/** Expect a parse failure with @p code and @p needle in the message. */
void
expectFailure(const std::string &text, StatusCode code,
              const std::string &needle)
{
    Result<KernelTrace> result = parseTraceString(text);
    ASSERT_FALSE(result.ok()) << "input unexpectedly parsed";
    EXPECT_EQ(result.status().code(), code)
        << result.status().toString();
    EXPECT_NE(result.status().message().find(needle),
              std::string::npos)
        << result.status().toString();
}

TEST(TraceIoErrors, GoodTraceParses)
{
    Result<KernelTrace> result = parseTraceString(goodTrace());
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(result.value().name(), "good");
    EXPECT_EQ(result.value().numWarps(), 1u);
}

TEST(TraceIoErrors, RoundTripPreservesEverything)
{
    KernelTrace kernel =
        std::move(parseTraceString(goodTrace())).value();
    EXPECT_EQ(traceToString(kernel), goodTrace());
}

TEST(TraceIoErrors, EmptyInputIsTruncated)
{
    expectFailure("", StatusCode::TruncatedInput,
                  "unexpected end of input");
}

TEST(TraceIoErrors, MissingKernelHeader)
{
    expectFailure("bogus stuff", StatusCode::ParseError,
                  "missing 'kernel' header");
}

TEST(TraceIoErrors, UnknownOpcodeMnemonic)
{
    std::string text = goodTrace();
    auto pos = text.find("ld.global");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 9, "ld.bogus1");
    expectFailure(text, StatusCode::NotFound, "unknown opcode");
}

TEST(TraceIoErrors, TruncatedMidRecord)
{
    std::string text = goodTrace();
    expectFailure(text.substr(0, text.size() / 2),
                  StatusCode::TruncatedInput,
                  "unexpected end of input");
}

TEST(TraceIoErrors, MissingEndTrailer)
{
    std::string text = goodTrace();
    auto pos = text.rfind("end");
    ASSERT_NE(pos, std::string::npos);
    expectFailure(text.substr(0, pos), StatusCode::TruncatedInput,
                  "trailer");
}

TEST(TraceIoErrors, PcOutOfRange)
{
    // Corrupt the first instruction's pc to 9 (static count is 2).
    std::string text = goodTrace();
    std::string header = "warp 0 0 2\n";
    auto pos = text.find(header);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + header.size(), 1, "9");
    expectFailure(text, StatusCode::OutOfRange, "out of range");
}

TEST(TraceIoErrors, NonNumericWarpCount)
{
    std::string text = goodTrace();
    auto pos = text.find("warps 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "warps x");
    expectFailure(text, StatusCode::ParseError, "expected number");
}

TEST(TraceIoErrors, NonSequentialStaticPcs)
{
    expectFailure(
        "kernel t\nstatic 2\n0 ialu -\n5 falu -\nwarps 1\nend\n",
        StatusCode::OutOfRange, "sequential");
}

TEST(TraceIoErrors, NegativeCountIsOutOfRange)
{
    expectFailure("kernel t\nstatic -3\n", StatusCode::OutOfRange,
                  "non-negative");
}

TEST(TraceIoErrors, ZeroWarpCountIsOutOfRange)
{
    expectFailure("kernel t\nstatic 1\n0 ialu -\nwarps 0\nend\n",
                  StatusCode::OutOfRange,
                  "warp count must be positive");
}

TEST(TraceIoErrors, ZeroInstCountIsOutOfRange)
{
    expectFailure(
        "kernel t\nstatic 1\n0 ialu -\nwarps 1\nwarp 0 0 0\nend\n",
        StatusCode::OutOfRange, "instruction count must be positive");
}

TEST(TraceIoErrors, HugeCountIsOverflow)
{
    // A count beyond the record cap must be rejected before any
    // allocation is attempted.
    expectFailure("kernel t\nstatic 1\n0 ialu -\nwarps 1\n"
                  "warp 0 0 99999999999999999999\n",
                  StatusCode::Overflow, "overflows");
}

TEST(TraceIoErrors, CountAboveRecordCapIsOverflow)
{
    // Fits in uint64 but exceeds the sanity cap: same class.
    expectFailure("kernel t\nstatic 1\n0 ialu -\nwarps 1\n"
                  "warp 0 0 1099511627776\n",
                  StatusCode::Overflow, "overflows");
}

TEST(TraceIoErrors, DuplicateKernelHeader)
{
    expectFailure("kernel t\nstatic 1\n0 ialu -\nkernel u\n",
                  StatusCode::DuplicateHeader, "duplicate 'kernel'");
}

TEST(TraceIoErrors, ErrorsCarryLineNumbers)
{
    // The unknown opcode sits on line 4 of this input.
    Result<KernelTrace> result = parseTraceString(
        "kernel t\nstatic 2\n0 ialu -\n1 bogus -\nwarps 1\nend\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("trace line 4"),
              std::string::npos)
        << result.status().toString();
}

// The fatal() wrappers remain for the CLI; pin that they still die
// with a useful message instead of silently parsing garbage.
TEST(TraceIoErrorsDeath, FatalWrapperDiesOnMalformedInput)
{
    EXPECT_DEATH(traceFromString(""), "unexpected end of input");
    EXPECT_DEATH(traceFromString("bogus stuff"), "missing 'kernel'");
}

} // namespace
} // namespace gpumech
