/**
 * @file
 * Tests for representative-warp selection (Section III-C): the Eq. 6
 * feature vectors and the MAX/MIN/Clustering selectors of Figure 7.
 */

#include <gtest/gtest.h>

#include "core/representative.hh"

namespace gpumech
{
namespace
{

/** A profile with one interval of the given shape. */
IntervalProfile
makeProfile(std::uint32_t warp_id, std::uint64_t insts, double stalls)
{
    IntervalProfile p;
    p.warpId = warp_id;
    p.intervals.push_back(
        Interval{insts, stalls, StallCause::Compute, 0, 0, 0, 0});
    return p;
}

TEST(Representative, FeatureVectorsNormalizedByAverages)
{
    HardwareConfig config = HardwareConfig::baseline();
    std::vector<IntervalProfile> profiles = {
        makeProfile(0, 10, 10.0), // perf 0.5
        makeProfile(1, 10, 30.0), // perf 0.25
    };
    auto features = warpFeatures(profiles, config);
    ASSERT_EQ(features.size(), 2u);
    // Average perf 0.375, average insts 10.
    EXPECT_NEAR(features[0][0], 0.5 / 0.375, 1e-12);
    EXPECT_NEAR(features[1][0], 0.25 / 0.375, 1e-12);
    EXPECT_DOUBLE_EQ(features[0][1], 1.0);
    EXPECT_DOUBLE_EQ(features[1][1], 1.0);
}

TEST(Representative, MaxAndMinSelectors)
{
    HardwareConfig config = HardwareConfig::baseline();
    std::vector<IntervalProfile> profiles = {
        makeProfile(0, 10, 10.0), // perf 0.50
        makeProfile(1, 10, 90.0), // perf 0.10
        makeProfile(2, 10, 40.0), // perf 0.20
    };
    EXPECT_EQ(selectRepresentative(profiles, config,
                                   RepSelection::MaxPerf),
              0u);
    EXPECT_EQ(selectRepresentative(profiles, config,
                                   RepSelection::MinPerf),
              1u);
}

TEST(Representative, ClusteringPicksFromMajorityGroup)
{
    HardwareConfig config = HardwareConfig::baseline();
    // Five near-identical warps and two outliers: the representative
    // must come from the majority.
    std::vector<IntervalProfile> profiles;
    for (std::uint32_t w = 0; w < 5; ++w)
        profiles.push_back(makeProfile(w, 100, 100.0 + w));
    profiles.push_back(makeProfile(5, 10, 900.0));
    profiles.push_back(makeProfile(6, 12, 880.0));

    std::uint32_t rep = selectRepresentative(profiles, config,
                                             RepSelection::Clustering);
    EXPECT_LT(rep, 5u);
}

TEST(Representative, SingleWarpTrivial)
{
    HardwareConfig config = HardwareConfig::baseline();
    std::vector<IntervalProfile> profiles = {makeProfile(0, 10, 5.0)};
    for (auto sel : {RepSelection::Clustering, RepSelection::MaxPerf,
                     RepSelection::MinPerf}) {
        EXPECT_EQ(selectRepresentative(profiles, config, sel), 0u);
    }
}

TEST(Representative, HomogeneousWarpsAnyChoiceIsFine)
{
    HardwareConfig config = HardwareConfig::baseline();
    std::vector<IntervalProfile> profiles;
    for (std::uint32_t w = 0; w < 8; ++w)
        profiles.push_back(makeProfile(w, 50, 25.0));
    std::uint32_t rep = selectRepresentative(profiles, config);
    EXPECT_LT(rep, 8u);
    // All profiles identical: the selected one has the common perf.
    EXPECT_DOUBLE_EQ(profiles[rep].warpPerf(config.issueRate),
                     profiles[0].warpPerf(config.issueRate));
}

TEST(Representative, InstructionCountDisambiguates)
{
    // Warps with equal performance but different lengths (the paper's
    // motivation for the second feature dimension): the majority
    // (short) group must win.
    HardwareConfig config = HardwareConfig::baseline();
    std::vector<IntervalProfile> profiles;
    for (std::uint32_t w = 0; w < 6; ++w)
        profiles.push_back(makeProfile(w, 100, 100.0)); // perf 0.5
    for (std::uint32_t w = 6; w < 9; ++w)
        profiles.push_back(makeProfile(w, 400, 400.0)); // perf 0.5
    std::uint32_t rep = selectRepresentative(profiles, config);
    EXPECT_LT(rep, 6u);
}

TEST(Representative, SelectionNames)
{
    EXPECT_EQ(toString(RepSelection::Clustering), "Clustering");
    EXPECT_EQ(toString(RepSelection::MaxPerf), "MAX");
    EXPECT_EQ(toString(RepSelection::MinPerf), "MIN");
}

} // namespace
} // namespace gpumech
