/**
 * @file
 * Unit tests for the MSHR file: allocation, secondary-miss merging,
 * retirement, capacity accounting and statistics.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace gpumech
{
namespace
{

TEST(Mshr, StartsEmpty)
{
    MshrFile m(4);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.freeEntries(), 4u);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.numEntries(), 4u);
}

TEST(Mshr, AllocateTracksOutstanding)
{
    MshrFile m(4);
    m.allocate(0x100, MshrWaiter{0, 0});
    EXPECT_TRUE(m.outstanding(0x100));
    EXPECT_FALSE(m.outstanding(0x200));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.freeEntries(), 3u);
}

TEST(Mshr, FullAtCapacity)
{
    MshrFile m(2);
    m.allocate(0x100, MshrWaiter{0, 0});
    m.allocate(0x200, MshrWaiter{0, 1});
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.freeEntries(), 0u);
}

TEST(Mshr, MergeDoesNotConsumeEntry)
{
    MshrFile m(2);
    m.allocate(0x100, MshrWaiter{0, 0});
    m.merge(0x100, MshrWaiter{1, 5});
    m.merge(0x100, MshrWaiter{2, 7});
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.merges(), 2u);
    EXPECT_EQ(m.allocations(), 1u);
}

TEST(Mshr, RetireReturnsAllWaitersInOrder)
{
    MshrFile m(2);
    m.allocate(0x100, MshrWaiter{0, 0});
    m.merge(0x100, MshrWaiter{1, 5});
    auto waiters = m.retire(0x100);
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0].warpSlot, 0u);
    EXPECT_EQ(waiters[0].instIdx, 0u);
    EXPECT_EQ(waiters[1].warpSlot, 1u);
    EXPECT_EQ(waiters[1].instIdx, 5u);
    EXPECT_FALSE(m.outstanding(0x100));
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, ReallocateAfterRetire)
{
    MshrFile m(1);
    m.allocate(0x100, MshrWaiter{0, 0});
    m.retire(0x100);
    m.allocate(0x100, MshrWaiter{0, 1});
    EXPECT_TRUE(m.outstanding(0x100));
}

TEST(Mshr, FreshMissCountIgnoresOutstanding)
{
    MshrFile m(4);
    m.allocate(0x100, MshrWaiter{0, 0});
    std::vector<Addr> lines{0x100, 0x200, 0x300};
    EXPECT_EQ(m.freshMissCount(lines), 2u);
    EXPECT_EQ(m.freshMissCount({0x100}), 0u);
    EXPECT_EQ(m.freshMissCount({}), 0u);
}

TEST(Mshr, PeakOccupancyTracksHighWater)
{
    MshrFile m(4);
    m.allocate(0x100, MshrWaiter{0, 0});
    m.allocate(0x200, MshrWaiter{0, 1});
    m.retire(0x100);
    m.allocate(0x300, MshrWaiter{0, 2});
    EXPECT_EQ(m.peakOccupancy(), 2u);
}

TEST(MshrDeath, AllocateWhenFullPanics)
{
    MshrFile m(1);
    m.allocate(0x100, MshrWaiter{0, 0});
    EXPECT_DEATH(m.allocate(0x200, MshrWaiter{0, 1}), "full");
}

TEST(MshrDeath, DoubleAllocatePanics)
{
    MshrFile m(2);
    m.allocate(0x100, MshrWaiter{0, 0});
    EXPECT_DEATH(m.allocate(0x100, MshrWaiter{0, 1}),
                 "already-outstanding");
}

TEST(MshrDeath, MergeWithoutEntryPanics)
{
    MshrFile m(2);
    EXPECT_DEATH(m.merge(0x100, MshrWaiter{0, 0}), "no entry");
}

TEST(MshrDeath, RetireWithoutEntryPanics)
{
    MshrFile m(2);
    EXPECT_DEATH(m.retire(0x100), "no entry");
}

} // namespace
} // namespace gpumech
