/**
 * @file
 * Unit tests for the metrics registry (common/metrics.hh) and the
 * stage-tracing layer (common/trace_span.hh): handle correctness,
 * thread-shard merge determinism, span nesting, the zero-cost
 * disabled path, and Chrome-trace / metrics JSON validity via the
 * independent validator in json_check.hh.
 *
 * Metrics state is process-global, so every test starts from a clean
 * slate via the MetricsTest fixture (enable + reset) and restores the
 * disabled default on teardown to keep other suites unaffected.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "json_check.hh"

namespace gpumech
{
namespace
{

using testing::isValidJson;

class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Metrics::enable(true);
        Metrics::reset();
        TraceLog::clear();
    }

    void
    TearDown() override
    {
        Metrics::enable(false);
        TraceLog::enable(false);
        Metrics::reset();
        TraceLog::clear();
    }
};

/** Snapshot entry by name; fails the test when absent. */
MetricSnapshot
find(const std::string &name)
{
    for (const MetricSnapshot &m : Metrics::snapshot()) {
        if (m.name == name)
            return m;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return MetricSnapshot{};
}

TEST_F(MetricsTest, CounterAccumulates)
{
    Counter c("test.counter");
    c.add();
    c.add(41);
    MetricSnapshot snap = find("test.counter");
    EXPECT_EQ(snap.kind, MetricKind::Counter);
    EXPECT_EQ(snap.value, 42.0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    Gauge g("test.gauge");
    g.set(3.0);
    g.set(7.5);
    MetricSnapshot snap = find("test.gauge");
    EXPECT_EQ(snap.kind, MetricKind::Gauge);
    EXPECT_EQ(snap.value, 7.5);
}

TEST_F(MetricsTest, HistogramStats)
{
    Histogram h("test.hist");
    for (double v : {1.0, 2.0, 4.0, 8.0})
        h.observe(v);
    MetricSnapshot snap = find("test.hist");
    EXPECT_EQ(snap.kind, MetricKind::Histogram);
    EXPECT_EQ(snap.hist.count, 4u);
    EXPECT_DOUBLE_EQ(snap.hist.sum, 15.0);
    EXPECT_DOUBLE_EQ(snap.hist.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.hist.max, 8.0);
    EXPECT_DOUBLE_EQ(snap.hist.mean(), 3.75);
    // Quantiles are bucket estimates clamped to [min, max].
    EXPECT_GE(snap.hist.quantile(0.0), 1.0);
    EXPECT_LE(snap.hist.quantile(1.0), 8.0);
    EXPECT_LE(snap.hist.quantile(0.5), snap.hist.quantile(0.95));
}

TEST_F(MetricsTest, ReregisteringSameNameSharesState)
{
    Counter a("test.shared");
    Counter b("test.shared");
    a.add(2);
    b.add(3);
    EXPECT_EQ(find("test.shared").value, 5.0);
}

TEST_F(MetricsTest, DisabledPathRecordsNothing)
{
    Counter c("test.off");
    Histogram h("test.off_hist");
    Metrics::enable(false);
    c.add(100);
    h.observe(1.0);
    Metrics::enable(true);
    EXPECT_EQ(find("test.off").value, 0.0);
    EXPECT_EQ(find("test.off_hist").hist.count, 0u);
}

TEST_F(MetricsTest, ResetClearsValuesKeepsRegistrations)
{
    Counter c("test.reset");
    c.add(9);
    Metrics::reset();
    EXPECT_EQ(find("test.reset").value, 0.0);
    c.add(1);
    EXPECT_EQ(find("test.reset").value, 1.0);
}

TEST_F(MetricsTest, ShardMergeIsDeterministicAcrossThreadCounts)
{
    // N increments distributed over a parallel loop must total N at
    // any job count — the tentpole determinism claim.
    constexpr std::size_t n = 10000;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        Metrics::reset();
        Counter c("test.parallel");
        Histogram h("test.parallel_hist");
        parallelFor(
            n,
            [&](std::size_t i) {
                c.add();
                h.observe(static_cast<double>(i % 7));
            },
            1, jobs);
        EXPECT_EQ(find("test.parallel").value, static_cast<double>(n))
            << "jobs=" << jobs;
        EXPECT_EQ(find("test.parallel_hist").hist.count, n)
            << "jobs=" << jobs;
    }
    setDefaultJobs(0);
}

TEST_F(MetricsTest, CountsSurviveThreadExit)
{
    // A worker thread's shard must merge into the totals when the
    // thread exits before the snapshot is taken.
    Counter c("test.exited");
    std::thread t([&] { c.add(17); });
    t.join();
    EXPECT_EQ(find("test.exited").value, 17.0);
}

TEST_F(MetricsTest, ScopedTimerObserves)
{
    Histogram h("test.timer.ms");
    {
        ScopedTimerMs timer(h);
    }
    MetricSnapshot snap = find("test.timer.ms");
    EXPECT_EQ(snap.hist.count, 1u);
    EXPECT_GE(snap.hist.min, 0.0);
}

TEST_F(MetricsTest, MetricsJsonIsValid)
{
    Counter c("test.json\"quoted");
    c.add(3);
    Histogram h("test.json_hist");
    h.observe(2.5);
    std::string json = metricsToJson();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("test.json_hist"), std::string::npos);
}

TEST_F(MetricsTest, SummaryPrintsRecordedMetrics)
{
    Counter c("test.summary");
    c.add(5);
    std::ostringstream os;
    printMetricsSummary(os);
    EXPECT_NE(os.str().find("test.summary"), std::string::npos);
    EXPECT_NE(os.str().find("5"), std::string::npos);
}

TEST_F(MetricsTest, SpanFeedsStageHistogram)
{
    {
        Span span("unittest", "kernel_a");
    }
    MetricSnapshot snap = find("stage.unittest.ms");
    EXPECT_EQ(snap.kind, MetricKind::Histogram);
    EXPECT_EQ(snap.hist.count, 1u);
}

TEST_F(MetricsTest, SpanNestingRecordsBothEvents)
{
    TraceLog::enable(true);
    {
        Span outer("outer_stage", "kern");
        Span inner("inner_stage", "kern");
    }
    std::vector<TraceEvent> events = TraceLog::collect();
    ASSERT_EQ(events.size(), 2u);
    // Same thread, sorted by start: outer opened first and fully
    // contains inner.
    EXPECT_EQ(events[0].name, "outer_stage");
    EXPECT_EQ(events[1].name, "inner_stage");
    EXPECT_EQ(events[0].tid, events[1].tid);
    EXPECT_LE(events[0].startNs, events[1].startNs);
    EXPECT_GE(events[0].startNs + events[0].durNs,
              events[1].startNs + events[1].durNs);
}

TEST_F(MetricsTest, SpansDisabledBufferNothing)
{
    Metrics::enable(false);
    {
        Span span("ignored", "kern");
    }
    EXPECT_TRUE(TraceLog::collect().empty());
}

TEST_F(MetricsTest, ChromeTraceJsonIsValid)
{
    TraceLog::enable(true);
    {
        // Details with quotes, backslashes and newlines must survive
        // the hand-rolled array writer.
        Span span("stage_x", "detail \"quoted\" \\ line\nbreak");
    }
    {
        Span span("stage_y", "plain");
    }
    std::ostringstream os;
    TraceLog::writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("stage_x"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(MetricsTest, ChromeTraceEmptyIsValid)
{
    std::ostringstream os;
    TraceLog::writeChromeTrace(os);
    EXPECT_TRUE(isValidJson(os.str())) << os.str();
}

TEST(Logging, ParallelLinesDoNotInterleave)
{
    // Redirect stderr to a file, hammer inform() from several threads,
    // and verify every line comes back whole. Pre-fix, concurrent
    // fprintf calls could interleave fragments mid-line.
    std::string path = ::testing::TempDir() + "log_interleave.txt";
    std::fflush(stderr);
    int saved = dup(fileno(stderr));
    ASSERT_GE(saved, 0);
    int fd = open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_GE(dup2(fd, fileno(stderr)), 0);
    close(fd);

    constexpr int threads = 8;
    constexpr int lines_per_thread = 200;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([t] {
            for (int i = 0; i < lines_per_thread; ++i)
                inform(msg("thread ", t, " line ", i, " end"));
        });
    }
    for (std::thread &t : pool)
        t.join();

    std::fflush(stderr);
    ASSERT_GE(dup2(saved, fileno(stderr)), 0);
    close(saved);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int count = 0;
    while (std::getline(in, line)) {
        ++count;
        EXPECT_EQ(line.rfind("info: thread ", 0), 0u) << line;
        EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
    }
    EXPECT_EQ(count, threads * lines_per_thread);
    std::remove(path.c_str());
}

} // namespace
} // namespace gpumech
