/**
 * @file
 * Tests for the CPI stack construction (Section VII, Table III).
 */

#include <gtest/gtest.h>

#include "core/cpi_stack.hh"
#include "core/gpumech.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    return c;
}

TEST(CpiStack, CategoryNamesMatchTableIII)
{
    EXPECT_EQ(toString(StallType::Base), "BASE");
    EXPECT_EQ(toString(StallType::Dep), "DEP");
    EXPECT_EQ(toString(StallType::L1), "L1");
    EXPECT_EQ(toString(StallType::L2), "L2");
    EXPECT_EQ(toString(StallType::Dram), "DRAM");
    EXPECT_EQ(toString(StallType::Mshr), "MSHR");
    EXPECT_EQ(toString(StallType::Queue), "QUEUE");
}

TEST(StackDelta, AttributesTheMostRelievedComponent)
{
    CpiStack from, to;
    from[StallType::Base] = 1.0;
    from[StallType::Mshr] = 2.0;
    from[StallType::Queue] = 0.8;
    to[StallType::Base] = 1.0;
    to[StallType::Mshr] = 0.5;  // -1.5: the big winner
    to[StallType::Queue] = 1.0; // +0.2: got worse

    StackDelta d = stackDelta(from, to);
    EXPECT_EQ(d.mostRelieved, StallType::Mshr);
    EXPECT_DOUBLE_EQ(d.relief, -1.5);
    EXPECT_DOUBLE_EQ(d.totalDelta, -1.3);
    EXPECT_DOUBLE_EQ(d.delta[static_cast<int>(StallType::Queue)], 0.2);
    EXPECT_DOUBLE_EQ(d.delta[static_cast<int>(StallType::Base)], 0.0);
}

TEST(StackDelta, TiesBreakTowardTheLowestIndex)
{
    CpiStack from, to;
    from[StallType::Dep] = 1.0;  // index 1
    from[StallType::Dram] = 1.0; // index 4
    // Both drop by exactly 1.0: DEP (lower index) must win, so the
    // attribution is deterministic.
    StackDelta d = stackDelta(from, to);
    EXPECT_EQ(d.mostRelieved, StallType::Dep);
    EXPECT_DOUBLE_EQ(d.relief, -1.0);
}

TEST(StackDelta, DescribeReliefCoversBothDirections)
{
    CpiStack from, to;
    from[StallType::Queue] = 1.0;
    to[StallType::Queue] = 0.588;
    StackDelta relieved = stackDelta(from, to);
    EXPECT_EQ(describeRelief(relieved),
              "relieves QUEUE by 0.412 CPI (total -0.412)");

    // A pure regression relieves nothing.
    StackDelta worse = stackDelta(to, from);
    EXPECT_EQ(describeRelief(worse),
              "no component relieved (total +0.412 CPI)");

    // No change at all still reads as "no component relieved".
    StackDelta flat = stackDelta(from, from);
    EXPECT_EQ(describeRelief(flat),
              "no component relieved (total +0.000 CPI)");
}

TEST(StackDelta, DominantComponentIsTheArgmax)
{
    CpiStack s;
    s[StallType::Base] = 1.0;
    s[StallType::Dram] = 2.5;
    s[StallType::Queue] = 2.0;
    EXPECT_EQ(dominantComponent(s), StallType::Dram);

    // Ties break toward the lowest index (BASE before DRAM).
    CpiStack tied;
    tied[StallType::Base] = 2.5;
    tied[StallType::Dram] = 2.5;
    EXPECT_EQ(dominantComponent(tied), StallType::Base);
}

TEST(CpiStack, TotalSumsCategories)
{
    CpiStack s;
    s[StallType::Base] = 1.0;
    s[StallType::Dep] = 0.5;
    s[StallType::Queue] = 2.0;
    EXPECT_DOUBLE_EQ(s.total(), 3.5);
}

TEST(CpiStack, ToLineContainsAllCategories)
{
    CpiStack s;
    std::string line = s.toLine();
    for (std::size_t i = 0; i < numStallTypes; ++i) {
        EXPECT_NE(line.find(toString(static_cast<StallType>(i))),
                  std::string::npos);
    }
}

TEST(CpiStack, SingleWarpComputeKernelIsBasePlusDep)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    r = b.compute(pc, {r});
    b.finish();

    CollectorResult inputs = collectInputs(kernel, config);
    IntervalProfile p =
        buildIntervalProfile(kernel.warp(0), inputs, config);
    CpiStack s = buildSingleWarpStack(p, inputs, config);

    EXPECT_DOUBLE_EQ(s[StallType::Base], 1.0);
    // One 20-cycle stall over 2 instructions.
    EXPECT_DOUBLE_EQ(s[StallType::Dep], 10.0);
    EXPECT_DOUBLE_EQ(s[StallType::L1], 0.0);
    EXPECT_DOUBLE_EQ(s[StallType::Dram], 0.0);
    // The single-warp stack totals the single-warp CPI.
    EXPECT_DOUBLE_EQ(s.total(),
                     p.totalCycles(1.0) /
                         static_cast<double>(p.totalInsts()));
}

TEST(CpiStack, MemoryStallSplitsByMissDistribution)
{
    HardwareConfig config = oneCore();
    KernelTrace kernel("t");
    auto pc_ld = kernel.addStatic(Opcode::GlobalLoad);
    auto pc_add = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    // Execute the same load PC 4 times on one line: 1 cold L2 miss +
    // 3 L1 hits -> distribution 75% L1 / 25% L2 miss. Serialize with
    // dependent adds so every load stalls its consumer.
    Reg r = regNone;
    for (int i = 0; i < 4; ++i) {
        std::vector<Reg> srcs;
        if (r != regNone)
            srcs.push_back(r);
        Reg v = b.globalLoad(pc_ld, {0x10000}, srcs);
        r = b.compute(pc_add, {v});
    }
    b.finish();

    CollectorResult inputs = collectInputs(kernel, config);
    IntervalProfile p =
        buildIntervalProfile(kernel.warp(0), inputs, config);
    CpiStack s = buildSingleWarpStack(p, inputs, config);

    // All memory stall cycles split 0.75 / 0.25 between L1 and DRAM.
    EXPECT_GT(s[StallType::L1], 0.0);
    EXPECT_GT(s[StallType::Dram], 0.0);
    EXPECT_DOUBLE_EQ(s[StallType::L2], 0.0);
    EXPECT_NEAR(s[StallType::L1] / (s[StallType::L1] +
                                    s[StallType::Dram]),
                0.75, 1e-9);
}

TEST(CpiStack, MultithreadedStackTotalsEqualFinalCpi)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const char *name :
         {"micro_stream", "micro_divergent8", "micro_compute_chain",
          "micro_write_burst"}) {
        KernelTrace kernel = workloadByName(name).generate(config);
        GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
        EXPECT_NEAR(r.stack.total(), r.cpi, 1e-6) << name;
    }
}

TEST(CpiStack, BaseStaysConstantUnderMultithreading)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_DOUBLE_EQ(r.stack[StallType::Base],
                     1.0 / config.issueRate);
}

TEST(CpiStack, AllCategoriesNonNegative)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const auto &workload : microWorkloads()) {
        KernelTrace kernel = workload.generate(config);
        GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
        for (std::size_t i = 0; i < numStallTypes; ++i) {
            EXPECT_GE(r.stack.cpi[i], 0.0)
                << workload.name << " "
                << toString(static_cast<StallType>(i));
        }
    }
}

TEST(CpiStack, WriteBurstKernelIsQueueDominated)
{
    // The kmeans_invert_mapping story (Section VII): divergent writes
    // load the QUEUE category, not DRAM.
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_write_burst").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_GT(r.stack[StallType::Queue], r.stack[StallType::Dram]);
    EXPECT_GT(r.stack[StallType::Queue], 1.0);
}

TEST(CpiStack, ComputeChainKernelIsBaseOnlyWhenSaturated)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 32;
    KernelTrace kernel =
        workloadByName("micro_compute_chain").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    // 32 warps fully hide 20-25 cycle compute stalls.
    EXPECT_NEAR(r.stack.total(), 1.0, 0.05);
    EXPECT_LT(r.stack[StallType::Dep], 0.05);
}

} // namespace
} // namespace gpumech
