/**
 * @file
 * Tests for the Status / Result<T> error layer: code/message plumbing,
 * context chaining, the propagation macros, and the StatusException
 * carrier the containment boundaries rely on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/status.hh"

namespace gpumech
{
namespace
{

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, CarriesCodeAndMessage)
{
    Status s(StatusCode::ParseError, "bad token");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::ParseError);
    EXPECT_EQ(s.message(), "bad token");
    EXPECT_EQ(s.toString(), "parse_error: bad token");
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_EQ(toString(StatusCode::Ok), "ok");
    EXPECT_EQ(toString(StatusCode::InvalidArgument),
              "invalid_argument");
    EXPECT_EQ(toString(StatusCode::NotFound), "not_found");
    EXPECT_EQ(toString(StatusCode::ParseError), "parse_error");
    EXPECT_EQ(toString(StatusCode::TruncatedInput), "truncated_input");
    EXPECT_EQ(toString(StatusCode::Overflow), "overflow");
    EXPECT_EQ(toString(StatusCode::OutOfRange), "out_of_range");
    EXPECT_EQ(toString(StatusCode::DuplicateHeader),
              "duplicate_header");
    EXPECT_EQ(toString(StatusCode::FailedValidation),
              "failed_validation");
    EXPECT_EQ(toString(StatusCode::DeadlineExceeded),
              "deadline_exceeded");
    EXPECT_EQ(toString(StatusCode::FaultInjected), "fault_injected");
    EXPECT_EQ(toString(StatusCode::Internal), "internal");
}

TEST(Status, WithContextPrependsOutermostFirst)
{
    Status s(StatusCode::NotFound, "no such opcode");
    Status wrapped =
        s.withContext("parsing trace").withContext("kernel k1");
    EXPECT_EQ(wrapped.code(), StatusCode::NotFound);
    EXPECT_EQ(wrapped.message(),
              "kernel k1: parsing trace: no such opcode");
}

TEST(Status, WithContextIsNoOpOnOk)
{
    Status s = Status().withContext("should vanish");
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.message(), "");
}

TEST(ResultT, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
}

TEST(ResultT, HoldsError)
{
    Result<int> r(Status(StatusCode::Overflow, "too big"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Overflow);
}

TEST(ResultT, MoveOnlyValueWorks)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> v = std::move(r).value();
    EXPECT_EQ(*v, 7);
}

namespace macros
{

Status
failAt(int depth)
{
    if (depth <= 0)
        return Status(StatusCode::OutOfRange, "bottom");
    GPUMECH_TRY(failAt(depth - 1));
    return Status();
}

Result<int>
half(int v)
{
    if (v % 2 != 0)
        return Status(StatusCode::InvalidArgument, "odd");
    return v / 2;
}

Status
quarter(int v, int &out)
{
    GPUMECH_ASSIGN_OR_RETURN(int h, half(v));
    GPUMECH_ASSIGN_OR_RETURN(out, half(h));
    return Status();
}

} // namespace macros

TEST(StatusMacros, TryPropagatesFirstError)
{
    EXPECT_TRUE(macros::failAt(0).ok() == false);
    Status deep = macros::failAt(3);
    EXPECT_EQ(deep.code(), StatusCode::OutOfRange);
    EXPECT_EQ(deep.message(), "bottom");
}

TEST(StatusMacros, AssignOrReturnUnwrapsAndPropagates)
{
    int out = 0;
    EXPECT_TRUE(macros::quarter(8, out).ok());
    EXPECT_EQ(out, 2);
    EXPECT_EQ(macros::quarter(7, out).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(macros::quarter(6, out).code(),
              StatusCode::InvalidArgument); // fails at second step
}

TEST(StatusException, CarriesStatusAndRendersWhat)
{
    StatusException e(Status(StatusCode::DeadlineExceeded, "kernel x"));
    EXPECT_EQ(e.status().code(), StatusCode::DeadlineExceeded);
    EXPECT_STREQ(e.what(), "deadline_exceeded: kernel x");
}

TEST(StatusException, CatchableAsStdException)
{
    try {
        throw StatusException(Status(StatusCode::Internal, "boom"));
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
        return;
    }
    FAIL() << "not caught";
}

TEST(StatusDeath, OrDieIsFatalWithCodeAndMessage)
{
    EXPECT_DEATH(Status(StatusCode::ParseError, "bad input").orDie(),
                 "parse_error: bad input");
    Status().orDie(); // Ok must be a no-op
}

} // namespace
} // namespace gpumech
