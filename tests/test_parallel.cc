/**
 * @file
 * Tests for the parallel evaluation engine: the shared thread pool,
 * parallel per-warp profiling, parallel suite/sweep evaluation, the
 * keyed input cache, and the configuration cache-key contracts.
 *
 * The engine's central guarantee is that parallelism and caching are
 * pure performance features: every result must be bit-identical to
 * the serial, uncached path at any thread count. These tests compare
 * doubles with EXPECT_EQ deliberately — approximate equality would
 * hide scheduling-dependent results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "common/status.hh"
#include "common/thread_pool.hh"
#include "core/interval_builder.hh"
#include "harness/sweep.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 2;
    c.warpsPerCore = 4;
    return c;
}

// ---- thread pool -----------------------------------------------------

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.concurrency(), 4u);

    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](std::size_t i) { counts[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ConcurrencyOneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);

    // The pool must stay usable after a failed job.
    std::atomic<int> ran{0};
    pool.parallelFor(10, [&](std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ExceptionTypeAndMessageSurviveRethrow)
{
    // The containment boundary in the harness catches StatusException
    // by type to recover the Status; the pool must rethrow the
    // original exception object, not flatten it to std::exception.
    ThreadPool pool(4);
    try {
        pool.parallelFor(64, [](std::size_t i) {
            if (i == 21) {
                throw StatusException(Status(StatusCode::FaultInjected,
                                             "planted at 21"));
            }
        });
        FAIL() << "exception was swallowed";
    } catch (const StatusException &e) {
        EXPECT_EQ(e.status().code(), StatusCode::FaultInjected);
        EXPECT_EQ(e.status().message(), "planted at 21");
    }
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown)
{
    // Every iteration throws; exactly one exception must surface and
    // the pool must not terminate on the discarded ones.
    ThreadPool pool(4);
    std::atomic<int> attempts{0};
    try {
        pool.parallelFor(100, [&](std::size_t) {
            attempts++;
            throw std::runtime_error("each");
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "each");
    }
    EXPECT_GE(attempts.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPropagatesAndStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelMap<int>(32,
                                       [](std::size_t i) -> int {
                                           if (i == 7)
                                               throw std::logic_error(
                                                   "map");
                                           return static_cast<int>(i);
                                       }),
                 std::logic_error);
    auto out =
        pool.parallelMap<int>(8, [](std::size_t i) {
            return static_cast<int>(i) * 2;
        });
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(ThreadPoolTest, InnerExceptionEscapesNestedParallelFor)
{
    // A throw inside a nested loop must unwind through both levels
    // without deadlocking the pool.
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](std::size_t) {
                             pool.parallelFor(8, [](std::size_t j) {
                                 if (j == 3)
                                     throw std::runtime_error("inner");
                             });
                         }),
        std::runtime_error);

    std::atomic<int> ran{0};
    pool.parallelFor(16, [&](std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, SerialInlinePathPropagatesExceptions)
{
    // jobs == 1 bypasses the pool entirely; the error contract must
    // not differ between the inline and pooled paths.
    EXPECT_THROW(parallelFor(
                     4,
                     [](std::size_t i) {
                         if (i == 2)
                             throw std::runtime_error("serial");
                     },
                     1, 1),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    auto out = pool.parallelMap<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock)
{
    // The submitting thread drains its own job, so inner loops make
    // progress even when every worker is busy with outer iterations.
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t) { total++; });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, DefaultJobsOverride)
{
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    EXPECT_EQ(globalPool().concurrency(), 3u);
    setDefaultJobs(0);
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(ThreadPoolTest, FreeFunctionRoutesJobCounts)
{
    // jobs == 1 must run serially inline on the calling thread.
    std::vector<int> order;
    parallelFor(
        4, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
        1, 1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));

    auto out = parallelMap<int>(
        64, [](std::size_t i) { return static_cast<int>(i) + 1; }, 1, 2);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

// ---- parallel per-warp profiling ------------------------------------

void
expectProfilesIdentical(const std::vector<IntervalProfile> &a,
                        const std::vector<IntervalProfile> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        EXPECT_EQ(a[w].warpId, b[w].warpId);
        ASSERT_EQ(a[w].intervals.size(), b[w].intervals.size())
            << "warp " << w;
        for (std::size_t i = 0; i < a[w].intervals.size(); ++i) {
            const Interval &x = a[w].intervals[i];
            const Interval &y = b[w].intervals[i];
            EXPECT_EQ(x.numInsts, y.numInsts);
            EXPECT_EQ(x.stallCycles, y.stallCycles);
            EXPECT_EQ(x.cause, y.cause);
            EXPECT_EQ(x.causePc, y.causePc);
            EXPECT_EQ(x.mshrReqs, y.mshrReqs);
            EXPECT_EQ(x.dramReqs, y.dramReqs);
            EXPECT_EQ(x.memInsts, y.memInsts);
            EXPECT_EQ(x.sfuInsts, y.sfuInsts);
        }
    }
}

TEST(ParallelProfiling, ManyWarpKernelMatchesSerialAtAllThreadCounts)
{
    HardwareConfig config = HardwareConfig::baseline();
    KernelTrace kernel = workloadByName("srad_kernel1").generate(config);
    ASSERT_GE(kernel.numWarps(), parallelWarpThreshold)
        << "kernel too small to exercise the parallel path";
    CollectorResult inputs = collectInputs(kernel, config);

    auto serial = buildAllProfiles(kernel, inputs, config);
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        auto parallel =
            buildAllProfilesParallel(kernel, inputs, config, threads);
        expectProfilesIdentical(serial, parallel);
    }
}

TEST(ParallelProfiling, SmallKernelTakesSerialFallback)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 1;
    config.warpsPerCore = 1;
    KernelTrace kernel = workloadByName("vectorAdd").generate(config);
    ASSERT_GE(kernel.numWarps(), 1u);
    CollectorResult inputs = collectInputs(kernel, config);

    auto serial = buildAllProfiles(kernel, inputs, config);
    for (unsigned threads : {2u, 8u}) {
        auto parallel =
            buildAllProfilesParallel(kernel, inputs, config, threads);
        expectProfilesIdentical(serial, parallel);
    }
}

TEST(ParallelProfiling, EmptyKernelYieldsNoProfiles)
{
    KernelTrace kernel("empty");
    CollectorResult inputs;
    HardwareConfig config = HardwareConfig::baseline();
    EXPECT_TRUE(buildAllProfiles(kernel, inputs, config).empty());
    EXPECT_TRUE(
        buildAllProfilesParallel(kernel, inputs, config, 4).empty());
}

// ---- parallel suite / sweep evaluation ------------------------------

std::vector<Workload>
testSuite()
{
    return {workloadByName("vectorAdd"), workloadByName("srad_kernel1"),
            workloadByName("micro_stream")};
}

void
expectEvaluationsIdentical(const std::vector<KernelEvaluation> &a,
                           const std::vector<KernelEvaluation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kernel, b[i].kernel);
        EXPECT_EQ(a[i].oracleCpi, b[i].oracleCpi);
        EXPECT_EQ(a[i].oracleIpc, b[i].oracleIpc);
        ASSERT_EQ(a[i].predictedIpc.size(), b[i].predictedIpc.size());
        for (const auto &[kind, ipc] : a[i].predictedIpc)
            EXPECT_EQ(ipc, b[i].predictedIpc.at(kind))
                << a[i].kernel << " " << toString(kind);
    }
}

TEST(ParallelSuite, ParallelAndCachedMatchSerial)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    auto serial = evaluateSuite(suite, config,
                                SchedulingPolicy::RoundRobin,
                                allModels(), false, 1);

    for (unsigned jobs : {2u, 4u}) {
        auto parallel = evaluateSuite(suite, config,
                                      SchedulingPolicy::RoundRobin,
                                      allModels(), false, jobs);
        expectEvaluationsIdentical(serial, parallel);
    }

    InputCache cache;
    auto cached = evaluateSuite(suite, config,
                                SchedulingPolicy::RoundRobin,
                                allModels(), false, 2, &cache);
    expectEvaluationsIdentical(serial, cached);
    EXPECT_EQ(cache.profilerMisses(), suite.size());
}

TEST(ParallelSuite, SweepMatchesAcrossJobCountsAndSharedCache)
{
    auto suite = testSuite();
    std::vector<SweepPoint> points;
    for (std::uint32_t mshrs : {8u, 32u}) {
        HardwareConfig c = smallConfig();
        c.numMshrs = mshrs;
        points.push_back(SweepPoint{std::to_string(mshrs), c});
    }

    auto serial = runSweep(suite, points, SchedulingPolicy::RoundRobin,
                           false, 1);
    InputCache shared;
    auto parallel = runSweep(suite, points,
                             SchedulingPolicy::RoundRobin, false, 4,
                             &shared);

    ASSERT_EQ(serial.labels, parallel.labels);
    for (ModelKind kind : allModels()) {
        ASSERT_EQ(serial.averages.at(kind).size(),
                  parallel.averages.at(kind).size());
        for (std::size_t p = 0; p < serial.averages.at(kind).size();
             ++p) {
            EXPECT_EQ(serial.averages.at(kind)[p],
                      parallel.averages.at(kind)[p])
                << toString(kind) << " point " << p;
        }
    }

    // Both points share trace/collector/profiler work: the MSHR count
    // is not part of any cache key.
    EXPECT_EQ(shared.traceMisses(), suite.size());
    EXPECT_EQ(shared.collectorMisses(), suite.size());
    EXPECT_EQ(shared.profilerMisses(), suite.size());
    EXPECT_GE(shared.profilerHits(), suite.size());
}

TEST(ParallelSuite, PredictSuiteMatchesPerKernelRuns)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    GpuMechOptions options;

    std::vector<GpuMechResult> expected;
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(config);
        expected.push_back(runGpuMech(kernel, config, options));
    }

    InputCache cache;
    for (unsigned jobs : {1u, 4u}) {
        for (InputCache *c : {static_cast<InputCache *>(nullptr),
                              &cache}) {
            auto got = predictSuite(suite, config, options, jobs, c);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                ASSERT_TRUE(got[i].ok()) << got[i].status.toString();
                EXPECT_EQ(got[i].kernel, suite[i].name);
                EXPECT_EQ(got[i].result.cpi, expected[i].cpi);
                EXPECT_EQ(got[i].result.ipc, expected[i].ipc);
                EXPECT_EQ(got[i].result.repWarpIndex,
                          expected[i].repWarpIndex);
            }
        }
    }
}

// ---- input cache ----------------------------------------------------

TEST(InputCacheTest, CachedInputsMatchFreshCollectorRun)
{
    HardwareConfig config = smallConfig();
    const Workload &w = workloadByName("vectorAdd");
    KernelTrace kernel = w.generate(config);
    CollectorResult fresh = collectInputs(kernel, config);

    InputCache cache;
    auto cached = cache.inputs(w, config);
    EXPECT_EQ(cache.collectorMisses(), 1u);
    EXPECT_EQ(cache.collectorHits(), 0u);

    ASSERT_EQ(cached->pcLatency, fresh.pcLatency);
    EXPECT_EQ(cached->avgMissLatency, fresh.avgMissLatency);
    EXPECT_EQ(cached->l1HitRate, fresh.l1HitRate);
    EXPECT_EQ(cached->l2HitRate, fresh.l2HitRate);
    ASSERT_EQ(cached->pcs.size(), fresh.pcs.size());
    for (std::size_t pc = 0; pc < fresh.pcs.size(); ++pc) {
        EXPECT_EQ(cached->pcs[pc].instCount, fresh.pcs[pc].instCount);
        EXPECT_EQ(cached->pcs[pc].reqL1Miss, fresh.pcs[pc].reqL1Miss);
        EXPECT_EQ(cached->pcs[pc].reqL2Miss, fresh.pcs[pc].reqL2Miss);
    }

    // Second lookup is a hit and returns the same object.
    auto again = cache.inputs(w, config);
    EXPECT_EQ(cache.collectorHits(), 1u);
    EXPECT_EQ(again.get(), cached.get());
}

TEST(InputCacheTest, ProfilerIsSharedAcrossKeyEqualConfigs)
{
    const Workload &w = workloadByName("vectorAdd");
    HardwareConfig a = smallConfig();
    HardwareConfig b = a;
    b.numMshrs = a.numMshrs * 2;
    b.dramBandwidthGBs = a.dramBandwidthGBs * 2.0;

    InputCache cache;
    ProfiledKernel pa = cache.profiler(w, a);
    ProfiledKernel pb = cache.profiler(w, b);
    EXPECT_EQ(pa.profiler.get(), pb.profiler.get());
    EXPECT_EQ(cache.profilerMisses(), 1u);
    EXPECT_EQ(cache.profilerHits(), 1u);

    // A trace-key change forces a rebuild.
    HardwareConfig c = a;
    c.warpsPerCore = a.warpsPerCore * 2;
    ProfiledKernel pc = cache.profiler(w, c);
    EXPECT_NE(pa.profiler.get(), pc.profiler.get());
}

TEST(InputCacheTest, EvaluateAtMemoizesRepeatedConfigs)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel = workloadByName("vectorAdd").generate(config);
    GpuMechProfiler profiler(kernel, config);

    std::size_t hits0 = profiler.collectorCacheHits();
    GpuMechResult r1 = profiler.evaluateAt(
        config, SchedulingPolicy::RoundRobin);
    GpuMechResult r2 = profiler.evaluateAt(
        config, SchedulingPolicy::RoundRobin);
    EXPECT_EQ(r1.cpi, r2.cpi);
    EXPECT_EQ(r1.ipc, r2.ipc);
    // The construction config's collector result is seeded into the
    // memo, so both evaluateAt calls must be hits — collection never
    // reruns for the profiling configuration.
    EXPECT_EQ(profiler.collectorCacheHits(), hits0 + 2);

    // And evaluateAt at the construction config equals evaluate().
    GpuMechResult direct =
        profiler.evaluate(SchedulingPolicy::RoundRobin);
    EXPECT_EQ(direct.cpi, r1.cpi);
    EXPECT_EQ(direct.ipc, r1.ipc);
}

// ---- cache-key contracts --------------------------------------------

TEST(CacheKeys, ModelOnlyParametersAreExcluded)
{
    HardwareConfig a = HardwareConfig::baseline();
    HardwareConfig b = a;
    b.numMshrs = 64;
    b.dramBandwidthGBs = 999.0;
    EXPECT_EQ(a.traceKey(), b.traceKey());
    EXPECT_EQ(a.collectorKey(), b.collectorKey());
}

TEST(CacheKeys, TraceAndCollectorInputsAreIncluded)
{
    HardwareConfig base = HardwareConfig::baseline();

    HardwareConfig warps = base;
    warps.warpsPerCore = base.warpsPerCore * 2;
    EXPECT_NE(base.traceKey(), warps.traceKey());
    EXPECT_NE(base.collectorKey(), warps.collectorKey());

    HardwareConfig l1 = base;
    l1.l1SizeBytes = base.l1SizeBytes * 2;
    EXPECT_EQ(base.traceKey(), l1.traceKey());
    EXPECT_NE(base.collectorKey(), l1.collectorKey());
}

TEST(CacheKeys, CollectorOutputInvariantUnderExcludedFields)
{
    // The contract behind excluding MSHR count and DRAM bandwidth from
    // collectorKey: the functional cache simulation must not read
    // them. If collectInputs ever starts depending on either field,
    // this test catches the stale-cache bug before the sweep does.
    HardwareConfig a = smallConfig();
    HardwareConfig b = a;
    b.numMshrs = a.numMshrs * 4;
    b.dramBandwidthGBs = a.dramBandwidthGBs / 2.0;

    const Workload &w = workloadByName("micro_stream");
    KernelTrace kernel = w.generate(a);
    CollectorResult ra = collectInputs(kernel, a);
    CollectorResult rb = collectInputs(kernel, b);

    ASSERT_EQ(ra.pcLatency, rb.pcLatency);
    EXPECT_EQ(ra.avgMissLatency, rb.avgMissLatency);
    EXPECT_EQ(ra.l1HitRate, rb.l1HitRate);
    EXPECT_EQ(ra.l2HitRate, rb.l2HitRate);
}

} // namespace
} // namespace gpumech
