/**
 * @file
 * Tests for the resource-contention model (Section IV-B): the Eq. 19
 * expected MSHR queuing delay (validated against a brute-force sum),
 * the Eq. 21 M/D/1 waiting time with its cap, and the steady-state
 * aggregation over a profile.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/contention.hh"

namespace gpumech
{
namespace
{

/** Brute-force Eq. 19 for integer request counts. */
double
bruteForceMshrDelay(std::uint64_t n, std::uint32_t m, double miss)
{
    if (n == 0)
        return 0.0;
    double total = 0.0;
    for (std::uint64_t j = 1; j <= n; ++j)
        total += miss * std::ceil(static_cast<double>(j) / m);
    return std::max(total / static_cast<double>(n) - miss, 0.0);
}

TEST(Contention, MshrDelayMatchesBruteForce)
{
    for (std::uint64_t n : {1ull, 31ull, 32ull, 33ull, 64ull, 100ull,
                            512ull, 1000ull}) {
        for (std::uint32_t m : {1u, 8u, 32u, 64u}) {
            EXPECT_NEAR(expectedMshrQueuingDelay(
                            static_cast<double>(n), m, 420.0),
                        bruteForceMshrDelay(n, m, 420.0), 1e-6)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(Contention, MshrDelayZeroWithinCapacity)
{
    // Requests that fit in one batch have no queuing delay.
    EXPECT_DOUBLE_EQ(expectedMshrQueuingDelay(32.0, 32, 420.0), 0.0);
    EXPECT_DOUBLE_EQ(expectedMshrQueuingDelay(0.0, 32, 420.0), 0.0);
}

TEST(Contention, MshrDelayPaperExampleShape)
{
    // Figure 9: 6 MSHRs, 8 requests -> the last two wait one full
    // miss latency; expected delay = (2/8) * miss.
    double d = expectedMshrQueuingDelay(8.0, 6, 400.0);
    EXPECT_NEAR(d, 2.0 / 8.0 * 400.0, 1e-9);
}

TEST(Contention, MshrDelayGrowsWithRequests)
{
    double prev = 0.0;
    for (double n : {32.0, 64.0, 128.0, 512.0, 1024.0}) {
        double d = expectedMshrQueuingDelay(n, 32, 420.0);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(Contention, MshrDelayShrinksWithMoreEntries)
{
    double prev = 1e100;
    for (std::uint32_t m : {8u, 16u, 32u, 64u, 128u}) {
        double d = expectedMshrQueuingDelay(256.0, m, 420.0);
        EXPECT_LE(d, prev);
        prev = d;
    }
}

TEST(Contention, MD1WaitingTimeFormula)
{
    // rho = 0.5: Wq = lambda s^2 / (2 (1 - rho)).
    double s = 2.0 / 3.0;
    double lambda = 0.75; // rho = 0.5
    double wq = bandwidthQueuingDelay(lambda, s, 1e9);
    EXPECT_NEAR(wq, lambda * s * s / (2.0 * 0.5), 1e-12);
}

TEST(Contention, MD1WqGrowsWithUtilization)
{
    double s = 0.5;
    double prev = 0.0;
    for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
        double wq = bandwidthQueuingDelay(rho / s, s, 1e12);
        EXPECT_GT(wq, prev);
        prev = wq;
    }
}

TEST(Contention, MD1CappedAtHalfQueue)
{
    // With few requests in flight the Eq. 21 cap (s * total / 2)
    // binds before the rho clamp does.
    double s = 0.5;
    double total = 4.0;
    double wq = bandwidthQueuingDelay(0.9999 / s, s, total);
    EXPECT_NEAR(wq, s * total / 2.0, 1e-9);
}

TEST(Contention, QueueingTermContinuousAcrossSaturation)
{
    // The waiting time plateaus at the clamped utilization instead of
    // branching at rho = 1: values just below, at, and beyond
    // saturation are identical (the deficit past rho = 1 is charged
    // by modelContention, not here).
    double s = 0.5;
    double total = 1e9;
    double plateau =
        bandwidthQueuingDelay(kBandwidthRhoClamp / s, s, total);
    EXPECT_GT(plateau, 0.0);
    for (double rho : {0.96, 0.9999, 1.0, 1.0001, 2.0, 10.0}) {
        EXPECT_DOUBLE_EQ(bandwidthQueuingDelay(rho / s, s, total),
                         plateau)
            << "rho=" << rho;
    }
    // Below the clamp the pure M/D/1 formula still applies.
    double below = bandwidthQueuingDelay(0.5 / s, s, total);
    EXPECT_NEAR(below, 0.5 * s / (2.0 * 0.5), 1e-12);
    EXPECT_LT(below, plateau);
}

TEST(Contention, ZeroForNoRequests)
{
    EXPECT_DOUBLE_EQ(bandwidthQueuingDelay(0.0, 0.5, 0.0), 0.0);
}

// --- profile-level model ---

IntervalProfile
profileWith(std::uint64_t insts, double stalls, double mshr_reqs,
            double dram_reqs, double mem_insts)
{
    IntervalProfile p;
    p.intervals.push_back(Interval{insts, stalls, StallCause::Memory, 0,
                                   mshr_reqs, dram_reqs, mem_insts});
    return p;
}

MultithreadingResult
mtWith(double cpi, std::uint64_t total_insts)
{
    MultithreadingResult r;
    r.cpi = cpi;
    r.ipc = 1.0 / cpi;
    (void)total_insts;
    return r;
}

TEST(Contention, ComputeOnlyProfileHasNoContention)
{
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(100, 50.0, 0.0, 0.0, 0.0);
    ContentionResult r = modelContention(p, mtWith(1.0, 100), inputs,
                                         config, true, true);
    EXPECT_DOUBLE_EQ(r.cpi, 0.0);
    EXPECT_DOUBLE_EQ(r.mshrDelay, 0.0);
    EXPECT_DOUBLE_EQ(r.bandwidthDelay, 0.0);
}

TEST(Contention, MshrSteadyStateDeficit)
{
    // 16 L1-missing requests per warp, 32 warps -> 512 requests per
    // core; MSHR drain time = 512 * 420 / 32 = 6720 cycles vs a
    // multithreaded span of 16 insts * 32 warps * CPI 1 = 512 cycles.
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(16, 420.0, 16.0, 0.0, 2.0);
    ContentionResult r = modelContention(p, mtWith(1.0, 16), inputs,
                                         config, true, false);
    EXPECT_NEAR(r.mshrServiceNeeded, 6720.0, 1e-9);
    EXPECT_NEAR(r.mshrDelay, 6720.0 - 512.0, 1e-9);
    EXPECT_NEAR(r.mshrCpi, (6720.0 - 512.0) / 512.0, 1e-9);
}

TEST(Contention, MshrNotChargedWhenDemandFitsSpan)
{
    // A slow kernel (high MT CPI) drains its misses within its own
    // span: no deficit.
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(16, 420.0, 1.0, 0.0, 1.0);
    // needed = 1*32*420/32 = 420 < span = 16*32*10 = 5120.
    ContentionResult r = modelContention(p, mtWith(10.0, 16), inputs,
                                         config, true, false);
    EXPECT_DOUBLE_EQ(r.mshrDelay, 0.0);
}

TEST(Contention, BandwidthSaturationDeficit)
{
    // 32 store requests per warp-interval, 32 warps, 16 cores:
    // 16384 requests * (2/3) = 10922.7 DRAM cycles vs a span of
    // 10 insts * 32 * CPI 1 = 320 cycles. Deep in saturation the
    // delay is the service deficit plus the plateaued queuing term.
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(10, 25.0, 0.0, 32.0, 0.0);
    ContentionResult r = modelContention(p, mtWith(1.0, 10), inputs,
                                         config, false, true);
    EXPECT_GT(r.dramUtilization, 1.0);
    double s = config.dramServiceCycles();
    double deficit = 16384.0 * s - 320.0;
    double plateau = bandwidthQueuingDelay(1.0 / s, s, 16384.0);
    EXPECT_NEAR(r.bandwidthDelay, deficit + plateau, 1e-6);
    EXPECT_GE(r.bandwidthDelay, deficit);
}

/** Bandwidth delay for a fixed demand evaluated at utilization rho. */
double
delayAtRho(double rho)
{
    // One memory interval, 1 DRAM request per warp, baseline machine:
    // gpu_reqs and service are fixed, and the multithreaded span is
    // chosen so the channel lands exactly at the requested rho.
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    const std::uint64_t insts = 100;
    IntervalProfile p = profileWith(insts, 420.0, 0.0, 1.0, 1.0);
    double gpu_reqs = 1.0 * config.warpsPerCore * config.numCores;
    double needed = gpu_reqs * config.dramServiceCycles();
    double core_insts =
        static_cast<double>(insts) * config.warpsPerCore;
    double span = needed / rho;
    ContentionResult r = modelContention(
        p, mtWith(span / core_insts, insts), inputs, config, false,
        true);
    EXPECT_NEAR(r.dramUtilization, rho, 1e-9);
    return r.bandwidthDelay;
}

TEST(Contention, QueueDelayMonotoneAcrossSaturation)
{
    // Regression for the Eq. 21-23 regime-boundary cliff: sweeping a
    // fixed demand's utilization through rho = 1 must never decrease
    // the charged queue delay. The old branch dropped from the capped
    // M/D/1 value to a zero deficit exactly at saturation, so a
    // sub-percent input shift could swing the predicted CPI.
    double prev = -1.0;
    for (double rho : {0.5, 0.8, 0.9, 0.94, 0.96, 0.99, 0.999, 1.0,
                       1.001, 1.01, 1.1, 1.5, 2.0, 4.0}) {
        double d = delayAtRho(rho);
        EXPECT_GE(d, prev - 1e-9) << "rho=" << rho;
        prev = d;
    }
}

TEST(Contention, QueueDelayContinuousAcrossSaturation)
{
    // The two sides of rho = 1 meet: stepping epsilon across the
    // boundary moves the delay proportionally to epsilon, not by a
    // branch-sized jump.
    double below = delayAtRho(1.0 - 1e-6);
    double at = delayAtRho(1.0);
    double above = delayAtRho(1.0 + 1e-6);
    EXPECT_NEAR(below, at, 1e-2 * std::max(at, 1.0));
    EXPECT_NEAR(above, at, 1e-2 * std::max(at, 1.0));
}

TEST(Contention, BandwidthSubSaturationUsesWq)
{
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    // 1 DRAM request per warp-interval: 512 GPU requests over a span
    // of 100*32*2 = 6400 cycles -> rho = 512*(2/3)/6400 = 0.053.
    IntervalProfile p = profileWith(100, 420.0, 0.0, 1.0, 1.0);
    ContentionResult r = modelContention(p, mtWith(2.0, 100), inputs,
                                         config, false, true);
    EXPECT_LT(r.dramUtilization, 1.0);
    EXPECT_GT(r.bandwidthDelay, 0.0);
    EXPECT_LT(r.queueCpi, 0.1); // negligible, as it should be
}

TEST(Contention, DisablingModelsZeroesTheirTerms)
{
    HardwareConfig config = HardwareConfig::baseline();
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(16, 420.0, 16.0, 24.0, 2.0);
    ContentionResult none = modelContention(p, mtWith(1.0, 16), inputs,
                                            config, false, false);
    EXPECT_DOUBLE_EQ(none.cpi, 0.0);
    ContentionResult only_mshr = modelContention(
        p, mtWith(1.0, 16), inputs, config, true, false);
    EXPECT_GT(only_mshr.mshrDelay, 0.0);
    EXPECT_DOUBLE_EQ(only_mshr.bandwidthDelay, 0.0);
}

TEST(Contention, MoreBandwidthNeverIncreasesQueueCpi)
{
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(10, 25.0, 0.0, 16.0, 0.0);
    double prev = 1e100;
    for (double bw : {64.0, 128.0, 192.0, 256.0, 512.0}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.dramBandwidthGBs = bw;
        ContentionResult r = modelContention(p, mtWith(1.0, 10), inputs,
                                             config, false, true);
        EXPECT_LE(r.queueCpi, prev + 1e-9) << bw;
        prev = r.queueCpi;
    }
}

TEST(Contention, MoreMshrsNeverIncreaseMshrCpi)
{
    CollectorResult inputs;
    inputs.avgMissLatency = 420.0;
    IntervalProfile p = profileWith(16, 420.0, 16.0, 0.0, 2.0);
    double prev = 1e100;
    for (std::uint32_t m : {16u, 32u, 64u, 128u, 256u}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.numMshrs = m;
        ContentionResult r = modelContention(p, mtWith(1.0, 16), inputs,
                                             config, true, false);
        EXPECT_LE(r.mshrCpi, prev + 1e-9) << m;
        prev = r.mshrCpi;
    }
}

} // namespace
} // namespace gpumech
