/**
 * @file
 * Fault-isolation tests: the per-kernel containment boundary, the
 * deterministic fault-injection harness, and the deadline watchdog.
 *
 * The load-bearing properties pinned here:
 *  - a fault injected at any pipeline site fails exactly the targeted
 *    kernel with the injected site's code, and the suite completes;
 *  - surviving kernels' results are bit-identical to a clean run, at
 *    1, 2 and 8 threads;
 *  - a stalled kernel under a deadline degrades to DeadlineExceeded
 *    instead of hanging the suite;
 *  - runSweep records per-cell failures and still aggregates the
 *    surviving grid.
 */

#include <gtest/gtest.h>

#include "common/isolation.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    return config;
}

std::vector<Workload>
testSuite()
{
    return {workloadByName("vectorAdd"),
            workloadByName("srad_kernel1"),
            workloadByName("micro_stream")};
}

// ---- primitives -----------------------------------------------------

TEST(CancelToken, DefaultNeverExpires)
{
    CancelToken token;
    EXPECT_FALSE(token.active());
    EXPECT_FALSE(token.expired());
    EXPECT_FALSE(CancelToken::withTimeoutMs(0).active());
}

TEST(CancelToken, ExpiresAfterDeadline)
{
    CancelToken token = CancelToken::withTimeoutMs(1);
    EXPECT_TRUE(token.active());
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(20);
    while (std::chrono::steady_clock::now() < until) {
    }
    EXPECT_TRUE(token.expired());
}

TEST(FaultSiteNames, RoundTrip)
{
    for (FaultSite site : {FaultSite::Parse, FaultSite::Collect,
                           FaultSite::Profile, FaultSite::Cache}) {
        auto parsed = faultSiteFromString(toString(site));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), site);
    }
    EXPECT_EQ(faultSiteFromString("bogus").status().code(),
              StatusCode::NotFound);
}

TEST(ScopedContext, InstallsAndRestoresNested)
{
    EXPECT_EQ(currentEvalContext(), nullptr);
    {
        ScopedEvalContext outer("a", CancelToken(), nullptr);
        ASSERT_NE(currentEvalContext(), nullptr);
        EXPECT_EQ(currentEvalContext()->kernel, "a");
        {
            ScopedEvalContext inner("b", CancelToken(), nullptr);
            EXPECT_EQ(currentEvalContext()->kernel, "b");
        }
        EXPECT_EQ(currentEvalContext()->kernel, "a");
    }
    EXPECT_EQ(currentEvalContext(), nullptr);
}

TEST(Checkpoints, NoOpWithoutContext)
{
    // Library users who never configure isolation must pay nothing.
    evalCheckpoint(FaultSite::Parse);
    deadlineCheckpoint();
}

TEST(Checkpoints, DeadlineThrowsOnceExpired)
{
    ScopedEvalContext scope("slow_kernel",
                            CancelToken::withTimeoutMs(1), nullptr);
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(20);
    while (std::chrono::steady_clock::now() < until) {
    }
    try {
        deadlineCheckpoint();
        FAIL() << "deadline did not fire";
    } catch (const StatusException &e) {
        EXPECT_EQ(e.status().code(), StatusCode::DeadlineExceeded);
        EXPECT_NE(e.status().message().find("slow_kernel"),
                  std::string::npos);
    }
}

TEST(FaultPlan, FiresOnMatchingKernelSiteAndAttempt)
{
    FaultPlan plan;
    FaultInjection injection;
    injection.kernel = "k";
    injection.site = FaultSite::Collect;
    injection.attempt = 2;
    plan.add(injection);

    // Wrong kernel / wrong site / first attempt: no fire.
    plan.onCheckpoint("other", FaultSite::Collect);
    plan.onCheckpoint("k", FaultSite::Parse);
    plan.onCheckpoint("k", FaultSite::Collect); // hit 1 of 2
    try {
        plan.onCheckpoint("k", FaultSite::Collect); // hit 2: fires
        FAIL() << "injection did not fire";
    } catch (const StatusException &e) {
        EXPECT_EQ(e.status().code(), StatusCode::FaultInjected);
        EXPECT_NE(e.status().message().find("collect"),
                  std::string::npos);
    }
    // Fired exactly once; later hits pass.
    plan.onCheckpoint("k", FaultSite::Collect);
}

TEST(FaultPlan, ResetReArms)
{
    FaultPlan plan;
    plan.add(FaultInjection{"k", FaultSite::Parse, 1, 0});
    EXPECT_THROW(plan.onCheckpoint("k", FaultSite::Parse),
                 StatusException);
    plan.onCheckpoint("k", FaultSite::Parse); // spent
    plan.reset();
    EXPECT_THROW(plan.onCheckpoint("k", FaultSite::Parse),
                 StatusException);
}

TEST(FaultPlan, RandomizedIsDeterministic)
{
    std::vector<std::string> kernels = {"a", "b", "c", "d"};
    FaultPlan p1 = FaultPlan::randomized(42, kernels);
    FaultPlan p2 = FaultPlan::randomized(42, kernels);
    ASSERT_EQ(p1.injections().size(), kernels.size());
    ASSERT_EQ(p2.injections().size(), kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        EXPECT_EQ(p1.injections()[i].kernel, kernels[i]);
        EXPECT_EQ(p1.injections()[i].site, p2.injections()[i].site);
    }
}

// ---- per-kernel containment -----------------------------------------

/** Clean-run baseline for survivor comparison. */
std::vector<KernelEvaluation>
cleanRun(const std::vector<Workload> &suite,
         const HardwareConfig &config)
{
    InputCache cache;
    return evaluateSuite(suite, config,
                         SchedulingPolicy::RoundRobin, allModels(),
                         false, 1, &cache);
}

TEST(FaultContainment, EverySiteFailsOnlyTheTargetedKernel)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    auto clean = cleanRun(suite, config);

    for (FaultSite site : {FaultSite::Parse, FaultSite::Collect,
                           FaultSite::Profile, FaultSite::Cache}) {
        FaultPlan plan;
        plan.add(FaultInjection{"srad_kernel1", site, 1, 0});
        IsolationOptions iso;
        iso.faultPlan = &plan;

        InputCache cache;
        auto evals = evaluateSuite(suite, config,
                                   SchedulingPolicy::RoundRobin,
                                   allModels(), false, 1, &cache,
                                   iso);
        ASSERT_EQ(evals.size(), suite.size());
        EXPECT_EQ(countFailures(evals), 1u)
            << "site " << toString(site) << ": "
            << failureSummary(evals);
        for (std::size_t i = 0; i < evals.size(); ++i) {
            if (evals[i].kernel == "srad_kernel1") {
                ASSERT_FALSE(evals[i].ok());
                EXPECT_EQ(evals[i].status.code(),
                          StatusCode::FaultInjected)
                    << evals[i].status.toString();
                EXPECT_NE(evals[i].status.message().find(
                              toString(site)),
                          std::string::npos)
                    << evals[i].status.toString();
            } else {
                ASSERT_TRUE(evals[i].ok())
                    << evals[i].status.toString();
                // Survivors bit-identical to the clean run.
                EXPECT_EQ(evals[i].oracleCpi, clean[i].oracleCpi);
                EXPECT_EQ(evals[i].predictedIpc,
                          clean[i].predictedIpc);
            }
        }
        EXPECT_NE(failureSummary(evals).find("srad_kernel1"),
                  std::string::npos);
    }
}

TEST(FaultContainment, SurvivorsBitIdenticalAcrossThreadCounts)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    auto clean = cleanRun(suite, config);

    for (unsigned jobs : {1u, 2u, 8u}) {
        FaultPlan plan;
        plan.add(
            FaultInjection{"vectorAdd", FaultSite::Collect, 1, 0});
        IsolationOptions iso;
        iso.faultPlan = &plan;

        InputCache cache;
        auto evals = evaluateSuite(suite, config,
                                   SchedulingPolicy::RoundRobin,
                                   allModels(), false, jobs, &cache,
                                   iso);
        ASSERT_EQ(evals.size(), suite.size());
        ASSERT_EQ(countFailures(evals), 1u)
            << jobs << " jobs: " << failureSummary(evals);
        for (std::size_t i = 0; i < evals.size(); ++i) {
            if (evals[i].kernel == "vectorAdd") {
                EXPECT_EQ(evals[i].status.code(),
                          StatusCode::FaultInjected);
                continue;
            }
            ASSERT_TRUE(evals[i].ok());
            EXPECT_EQ(evals[i].oracleCpi, clean[i].oracleCpi);
            EXPECT_EQ(evals[i].oracleIpc, clean[i].oracleIpc);
            EXPECT_EQ(evals[i].predictedIpc, clean[i].predictedIpc);
        }
    }
}

TEST(FaultContainment, PredictSuiteContainsFailures)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();

    InputCache clean_cache;
    auto clean = predictSuite(suite, config, GpuMechOptions{}, 1,
                              &clean_cache);
    ASSERT_EQ(countFailures(clean), 0u) << failureSummary(clean);

    FaultPlan plan;
    plan.add(FaultInjection{"micro_stream", FaultSite::Profile, 1, 0});
    IsolationOptions iso;
    iso.faultPlan = &plan;
    InputCache cache;
    auto preds = predictSuite(suite, config, GpuMechOptions{}, 2,
                              &cache, iso);
    ASSERT_EQ(preds.size(), suite.size());
    EXPECT_EQ(countFailures(preds), 1u) << failureSummary(preds);
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i].kernel == "micro_stream") {
            EXPECT_EQ(preds[i].status.code(),
                      StatusCode::FaultInjected);
        } else {
            ASSERT_TRUE(preds[i].ok());
            EXPECT_EQ(preds[i].result.cpi, clean[i].result.cpi);
            EXPECT_EQ(preds[i].result.ipc, clean[i].result.ipc);
            // Full CPI stack, component by component.
            EXPECT_EQ(preds[i].result.stack.cpi,
                      clean[i].result.stack.cpi);
        }
    }
}

TEST(FaultContainment, UncachedPathIsAlsoContained)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    FaultPlan plan;
    plan.add(FaultInjection{"srad_kernel1", FaultSite::Parse, 1, 0});
    IsolationOptions iso;
    iso.faultPlan = &plan;
    auto evals = evaluateSuite(suite, config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 1, nullptr, iso);
    EXPECT_EQ(countFailures(evals), 1u) << failureSummary(evals);
}

TEST(FaultContainment, FailedCacheComputeDoesNotPoisonRetry)
{
    // A fault thrown inside a cache compute must not cache a partial
    // artifact: re-running the same kernel without the plan succeeds.
    HardwareConfig config = smallConfig();
    const Workload &w = workloadByName("vectorAdd");
    InputCache cache;

    FaultPlan plan;
    plan.add(FaultInjection{"vectorAdd", FaultSite::Parse, 1, 0});
    IsolationOptions iso;
    iso.faultPlan = &plan;
    auto first = evaluateSuite({w}, config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 1, &cache, iso);
    ASSERT_EQ(countFailures(first), 1u);

    auto retry = evaluateSuite({w}, config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 1, &cache);
    ASSERT_EQ(countFailures(retry), 0u) << failureSummary(retry);

    auto clean = cleanRun({w}, config);
    EXPECT_EQ(retry[0].oracleCpi, clean[0].oracleCpi);
    EXPECT_EQ(retry[0].predictedIpc, clean[0].predictedIpc);
}

TEST(FaultContainment, AggregatorsSkipFailedKernels)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();
    auto clean = cleanRun(suite, config);

    FaultPlan plan;
    plan.add(FaultInjection{"micro_stream", FaultSite::Collect, 1, 0});
    IsolationOptions iso;
    iso.faultPlan = &plan;
    InputCache cache;
    auto evals = evaluateSuite(suite, config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 1, &cache, iso);
    ASSERT_EQ(countFailures(evals), 1u);

    // Means over the two survivors, not a panic and not zero-filled.
    std::vector<KernelEvaluation> survivors;
    for (const auto &e : clean) {
        if (e.kernel != "micro_stream")
            survivors.push_back(e);
    }
    for (ModelKind kind : allModels()) {
        EXPECT_DOUBLE_EQ(averageError(evals, kind),
                         averageError(survivors, kind));
        EXPECT_DOUBLE_EQ(fractionWithin(evals, kind, 0.3),
                         fractionWithin(survivors, kind, 0.3));
    }
}

// ---- deadline watchdog ----------------------------------------------

TEST(DeadlineWatchdog, StalledKernelDegradesToDeadlineExceeded)
{
    HardwareConfig config = smallConfig();
    auto suite = testSuite();

    // Deterministic: the injected stall (2s) dwarfs the deadline
    // (200ms), so the stalled kernel must trip the watchdog at the
    // next checkpoint regardless of machine speed; the suite itself
    // must complete rather than hang.
    FaultPlan plan;
    plan.add(
        FaultInjection{"srad_kernel1", FaultSite::Collect, 1, 2000});
    IsolationOptions iso;
    iso.kernelTimeoutMs = 200;
    iso.faultPlan = &plan;

    InputCache cache;
    auto evals = evaluateSuite(suite, config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 2, &cache, iso);
    ASSERT_EQ(evals.size(), suite.size());
    for (const auto &eval : evals) {
        if (eval.kernel == "srad_kernel1") {
            ASSERT_FALSE(eval.ok());
            EXPECT_EQ(eval.status.code(),
                      StatusCode::DeadlineExceeded)
                << eval.status.toString();
        }
    }
}

TEST(DeadlineWatchdog, ZeroTimeoutDisablesWatchdog)
{
    HardwareConfig config = smallConfig();
    IsolationOptions iso; // kernelTimeoutMs = 0
    InputCache cache;
    auto evals = evaluateSuite(testSuite(), config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), false, 1, &cache, iso);
    EXPECT_EQ(countFailures(evals), 0u) << failureSummary(evals);
}

// ---- sweep containment ----------------------------------------------

TEST(SweepContainment, FailingCellIsRecordedAndGridCompletes)
{
    HardwareConfig base = smallConfig();
    auto suite = testSuite();
    std::vector<SweepPoint> points;
    for (std::uint32_t mshrs : {8u, 32u}) {
        HardwareConfig p = base;
        p.numMshrs = mshrs;
        points.push_back({msg("mshrs", mshrs), p});
    }

    SweepResult clean = runSweep(suite, points,
                                 SchedulingPolicy::RoundRobin);
    ASSERT_TRUE(clean.complete());

    // The collector is keyed independently of MSHR count, so the
    // injected collect fault fires on whichever grid cell touches the
    // kernel's collector first; attempt 1 fails exactly one cell.
    FaultPlan plan;
    plan.add(FaultInjection{"vectorAdd", FaultSite::Collect, 1, 0});
    IsolationOptions iso;
    iso.faultPlan = &plan;
    SweepResult swept = runSweep(suite, points,
                                 SchedulingPolicy::RoundRobin, false,
                                 1, nullptr, iso);
    ASSERT_EQ(swept.failures.size(), 1u);
    EXPECT_FALSE(swept.complete());
    EXPECT_EQ(swept.failures[0].kernel, "vectorAdd");
    EXPECT_EQ(swept.failures[0].status.code(),
              StatusCode::FaultInjected);
    EXPECT_EQ(swept.labels, clean.labels);
    // The unaffected point's averages match the clean sweep exactly.
    for (ModelKind kind : allModels()) {
        const auto &clean_avg = clean.averages.at(kind);
        const auto &swept_avg = swept.averages.at(kind);
        ASSERT_EQ(swept_avg.size(), clean_avg.size());
        std::size_t failed_point = 0;
        for (std::size_t p = 0; p < points.size(); ++p) {
            if (points[p].label == swept.failures[0].point)
                failed_point = p;
        }
        for (std::size_t p = 0; p < points.size(); ++p) {
            if (p != failed_point)
                EXPECT_EQ(swept_avg[p], clean_avg[p]);
        }
    }
}

// ---- workload lookup ------------------------------------------------

TEST(WorkloadLookup, FindWorkloadIsNullableNotFatal)
{
    EXPECT_NE(findWorkload("vectorAdd"), nullptr);
    EXPECT_EQ(findWorkload("no_such_kernel"), nullptr);
}

TEST(WorkloadLookup, SuiteByNameReportsKnownSuites)
{
    auto micro = suiteByName("micro");
    ASSERT_TRUE(micro.ok());
    EXPECT_FALSE(micro.value().empty());

    auto bad = suiteByName("bogus_suite");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
    EXPECT_NE(bad.status().message().find("micro"),
              std::string::npos)
        << bad.status().toString();
}

} // namespace
} // namespace gpumech
